//! Integration tests tying the analytical model of `pgrid-partition` to the
//! discrete simulation and to the whole-system construction: the theory of
//! Section 3 must predict what the implementations do.

use pgrid::partition::discrete::{simulate_split, Knowledge, SplitConfig, Strategy};
use pgrid::partition::model::{fluid_outcome, mva_outcome};
use pgrid::partition::probabilities::{alpha_of_p, q_of_p, P_CRITICAL};
use pgrid::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn discrete_simulation_matches_the_fluid_model() {
    // The mean outcome of the discrete AEP simulation with exact knowledge
    // must match the mean-value model within Monte-Carlo error.
    for &p in &[0.15, 0.3, 0.4, 0.5] {
        let config = SplitConfig {
            n_peers: 2000,
            p,
            knowledge: Knowledge::Exact,
            strategy: Strategy::Aep,
        };
        let reps = 20;
        let mut fraction_sum = 0.0;
        let mut interactions_sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = simulate_split(&config, &mut rng);
            fraction_sum += out.fraction0();
            interactions_sum += out.interactions as f64 / config.n_peers as f64;
        }
        let mean_fraction = fraction_sum / reps as f64;
        let mean_interactions = interactions_sum / reps as f64;
        let model = mva_outcome(p);
        assert!(
            (mean_fraction - model.minority_fraction).abs() < 0.02,
            "p = {p}: discrete {mean_fraction:.3} vs model {:.3}",
            model.minority_fraction
        );
        assert!(
            (mean_interactions - model.interactions_per_peer).abs()
                < 0.35 * model.interactions_per_peer,
            "p = {p}: discrete {mean_interactions:.3} interactions/peer vs model {:.3}",
            model.interactions_per_peer
        );
    }
}

#[test]
fn interactions_are_flat_above_the_critical_ratio_and_rise_below() {
    // The paper's key property of AEP (below Eq. 1): the number of
    // interactions does not depend on the skew as long as p >= 1 - ln 2, and
    // grows once balanced splits have to be suppressed.
    let cost = |p: f64| mva_outcome(p).interactions_per_peer;
    let at_half = cost(0.5);
    assert!((cost(0.35) - at_half).abs() < 0.01);
    assert!((cost(0.45) - at_half).abs() < 0.01);
    assert!(cost(0.15) > 1.3 * at_half);
    assert!(cost(0.05) > cost(0.15));
}

#[test]
fn whole_system_construction_inherits_the_theory() {
    // For a uniform workload every bisection is a p = 1/2 split; the number
    // of interactions per peer of the whole construction therefore grows
    // with the trie depth (the log^2 complexity argument of Section 4.3),
    // not with the network size directly.
    let overlay_small = construct(&SimConfig {
        n_peers: 64,
        seed: 2,
        ..SimConfig::default()
    });
    let overlay_large = construct(&SimConfig {
        n_peers: 256,
        seed: 2,
        ..SimConfig::default()
    });
    let per_peer_small = overlay_small.metrics.interactions_per_peer();
    let per_peer_large = overlay_large.metrics.interactions_per_peer();
    // 4x the peers -> 2 more trie levels -> per-peer cost grows, but far
    // less than proportionally to the network size.
    assert!(per_peer_large > per_peer_small * 0.8);
    assert!(
        per_peer_large < per_peer_small * 3.0,
        "per-peer interactions should not explode: {per_peer_small:.1} -> {per_peer_large:.1}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_probability_functions_partition_the_ratio_domain(p in 0.01f64..0.5) {
        let alpha = alpha_of_p(p);
        let q = q_of_p(p);
        prop_assert!(alpha > 0.0 && alpha <= 1.0);
        prop_assert!((0.0..=1.0).contains(&q));
        if p < P_CRITICAL {
            prop_assert!(q == 0.0, "below the critical ratio only alpha is reduced");
        } else {
            prop_assert!((alpha - 1.0).abs() < 1e-9, "above the critical ratio alpha stays 1");
        }
        // plugging the probabilities into the fluid model recovers p
        let out = fluid_outcome(alpha.max(1e-6), q);
        prop_assert!((out.minority_fraction - p).abs() < 5e-3);
    }

    #[test]
    fn prop_discrete_split_always_decides_everyone(p in 0.05f64..0.95, seed in 0u64..50) {
        let config = SplitConfig {
            n_peers: 300,
            p,
            knowledge: Knowledge::Sampled(10),
            strategy: Strategy::Aep,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let out = simulate_split(&config, &mut rng);
        prop_assert_eq!(out.n0 + out.n1, 300);
        prop_assert!(out.referential_integrity);
    }
}
