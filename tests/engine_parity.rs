//! Cross-engine parity: the whole-system simulator (`pgrid-sim`) and the
//! message-level deployment runtime (`pgrid-net`) must run the *same*
//! construction protocol.
//!
//! Since the exchange-engine refactor both delegate every
//! assess/probability/decision step to `pgrid_core::exchange`; these tests
//! lock that in from the outside:
//!
//! 1. on a scripted encounter trace, an engine configured the simulator's
//!    way (from a [`SimConfig`]) and one configured the runtime's way
//!    (from a [`NetConfig`]) produce *identical* [`ExchangeDecision`]
//!    sequences for the same random seed.  This pins the engine's
//!    decision surface and the two crates' *configuration* paths into it
//!    (equal parameters, equal strategy, seed-stable decisions); whether
//!    each runtime actually routes its interactions through the engine is
//!    enforced structurally (the duplicated logic is deleted — neither
//!    crate defines an assessment any more) and behaviorally by test 2;
//! 2. full constructions under both execution models — each through its
//!    own public entry point (`construct` / `run_deployment`) — converge
//!    to balance deviations within a fixed tolerance of each other.

use pgrid::core::exchange::ExchangeDecision;
use pgrid::core::key::{DataEntry, DataId};
use pgrid::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A key at relative position `f in [0, 1)` inside `partition`.
fn key_in(partition: &Path, f: f64) -> Key {
    let lo = partition.lower_key().as_fraction();
    let width = 1.0 / (1u64 << partition.len()) as f64;
    Key::from_fraction(lo + f * width)
}

/// A store of `count` keys inside `partition`, with ids drawn from
/// `0..id_space` so two stores over the same partition overlap partially
/// (what the capture–recapture estimator feeds on).
fn scripted_store<R: Rng + ?Sized>(
    partition: &Path,
    count: usize,
    id_space: u64,
    rng: &mut R,
) -> KeyStore {
    KeyStore::from_entries((0..count).map(|_| {
        let id = rng.gen_range(0..id_space);
        // Key position derived from the id so equal ids mean equal entries.
        let f = (id as f64 + 0.5) / id_space as f64;
        DataEntry::new(key_in(partition, f), DataId(id))
    }))
}

/// One scripted encounter: the two peers' paths plus their
/// partition-restricted stores.
struct Encounter {
    lagging_path: Path,
    ahead_path: Path,
    store_a: KeyStore,
    store_b: KeyStore,
}

/// A deterministic trace covering all encounter shapes: same-level meetings
/// over balanced and skewed partitions (small and large), catch-up meetings
/// and diverging-path referrals.
fn scripted_trace(seed: u64, length: usize) -> Vec<Encounter> {
    let mut rng = StdRng::seed_from_u64(seed);
    let partitions = ["", "0", "1", "01", "10", "110"];
    (0..length)
        .map(|i| {
            let partition = Path::parse(partitions[i % partitions.len()]);
            let (lagging_path, ahead_path) = match i % 4 {
                // Two undecided peers of the same partition.
                0 | 1 => (partition, partition),
                // A lagging peer meeting one that already decided here.
                2 => (partition, partition.child(rng.gen_bool(0.5))),
                // Diverging paths: referral.
                _ => (partition.child(false), partition.child(true)),
            };
            // Alternate between clearly overloaded (big stores, shared id
            // space) and clearly underloaded encounters, with varying skew.
            let count = if i % 3 == 0 { 4 } else { 60 + (i % 5) * 17 };
            let id_space = (count as u64 * 3) / 2;
            let store_a = scripted_store(&partition, count, id_space, &mut rng);
            let store_b = scripted_store(&partition, count, id_space, &mut rng);
            Encounter {
                lagging_path,
                ahead_path,
                store_a,
                store_b,
            }
        })
        .collect()
}

fn decision_kind(decision: &ExchangeDecision) -> &'static str {
    match decision {
        ExchangeDecision::Split { balanced: true, .. } => "split-balanced",
        ExchangeDecision::Split {
            balanced: false, ..
        } => "split-catch-up",
        ExchangeDecision::Replicate => "replicate",
        ExchangeDecision::Refer { .. } => "refer",
        ExchangeDecision::Nothing => "nothing",
    }
}

#[test]
fn both_engine_configurations_make_identical_decisions_on_a_scripted_trace() {
    // The engine as the simulator builds it …
    let sim_config = SimConfig {
        keys_per_peer: 10,
        n_min: 5,
        ..SimConfig::default()
    };
    let sim_engine =
        ExchangeEngine::with_strategy(sim_config.balance_params(), sim_config.strategy);
    // … and as the deployment runtime builds it (AEP strategy), from a
    // NetConfig with the same balance parameters.
    let net_config = NetConfig {
        keys_per_peer: 10,
        n_min: 5,
        ..NetConfig::default()
    };
    let net_engine = ExchangeEngine::new(net_config.balance_params());
    assert_eq!(sim_engine.params(), net_engine.params());
    assert_eq!(sim_engine.strategy(), net_engine.strategy());

    let trace = scripted_trace(0xA11CE, 240);
    let mut rng_sim = StdRng::seed_from_u64(7);
    let mut rng_net = StdRng::seed_from_u64(7);
    let mut sim_distribution: HashMap<&'static str, usize> = HashMap::new();
    let mut net_distribution: HashMap<&'static str, usize> = HashMap::new();

    for (i, encounter) in trace.iter().enumerate() {
        let assessment_sim = sim_engine.assess(
            &encounter.store_a,
            &encounter.store_b,
            &encounter.lagging_path,
        );
        let assessment_net = net_engine.assess(
            &encounter.store_a,
            &encounter.store_b,
            &encounter.lagging_path,
        );
        assert_eq!(
            assessment_sim, assessment_net,
            "assessment diverged at encounter {i}"
        );

        let decision_sim = sim_engine.decide(
            encounter.lagging_path,
            encounter.ahead_path,
            &assessment_sim,
            &mut rng_sim,
        );
        let decision_net = net_engine.decide(
            encounter.lagging_path,
            encounter.ahead_path,
            &assessment_net,
            &mut rng_net,
        );
        assert_eq!(
            decision_sim, decision_net,
            "decision diverged at encounter {i}"
        );
        *sim_distribution
            .entry(decision_kind(&decision_sim))
            .or_default() += 1;
        *net_distribution
            .entry(decision_kind(&decision_net))
            .or_default() += 1;
    }

    assert_eq!(sim_distribution, net_distribution);
    // The trace must actually exercise the whole decision surface.
    for kind in [
        "split-balanced",
        "split-catch-up",
        "replicate",
        "refer",
        "nothing",
    ] {
        assert!(
            sim_distribution.get(kind).copied().unwrap_or(0) > 0,
            "scripted trace never produced a {kind} decision: {sim_distribution:?}"
        );
    }
}

#[test]
fn simulator_and_deployment_converge_to_comparable_balance() {
    let n_peers = 64;
    let seed = 31;

    let overlay = construct(&SimConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed,
        ..SimConfig::default()
    });
    let keys: Vec<Key> = overlay.original_entries.iter().map(|e| e.key).collect();
    let reference = ReferencePartitioning::compute(&keys, n_peers, overlay.params);
    let sim_deviation = compare_to_reference(&reference, &overlay.peer_paths()).deviation;

    let report = run_deployment(
        &NetConfig {
            n_peers,
            keys_per_peer: 10,
            n_min: 5,
            distribution: Distribution::Uniform,
            seed,
            ..NetConfig::default()
        },
        &Timeline::default(),
    );
    let net_deviation = report.balance_deviation;

    assert!(sim_deviation < 1.5, "simulator deviation {sim_deviation}");
    assert!(net_deviation < 1.5, "deployment deviation {net_deviation}");
    assert!(
        (sim_deviation - net_deviation).abs() < 0.75,
        "engines disagree on balance: simulator {sim_deviation:.3} vs deployment {net_deviation:.3}"
    );
}
