//! Integration tests for the message-level deployment runtime
//! (`pgrid-net`): the protocol must build the same kind of overlay as the
//! direct simulator, survive message loss and churn, and its codec must be
//! loss-free for arbitrary messages.

use pgrid::net::message::{ExchangeOutcome, Message};
use pgrid::prelude::*;
use proptest::prelude::*;

#[test]
fn deployment_and_simulator_agree_on_overlay_shape() {
    // Same parameters, two very different execution models: direct state
    // manipulation (pgrid-sim) versus message passing over a lossy network
    // (pgrid-net).  Both must converge to tries of comparable depth and
    // balance.
    let sim_overlay = construct(&SimConfig {
        n_peers: 64,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 31,
        ..SimConfig::default()
    });
    let report = run_deployment(
        &NetConfig {
            n_peers: 64,
            keys_per_peer: 10,
            n_min: 5,
            distribution: Distribution::Uniform,
            seed: 31,
            ..NetConfig::default()
        },
        &Timeline::default(),
    );
    let sim_depth = sim_overlay.mean_depth();
    let net_depth = report.mean_path_length;
    assert!(
        (sim_depth - net_depth).abs() < 2.0,
        "simulator depth {sim_depth:.2} vs deployment depth {net_depth:.2}"
    );
    assert!(report.balance_deviation < 1.5);
    assert!(report.query_success_rate > 0.8);
}

#[test]
fn deployment_keeps_replication_and_hops_in_the_papers_ballpark() {
    let report = run_deployment(
        &NetConfig {
            n_peers: 80,
            seed: 17,
            ..NetConfig::default()
        },
        &Timeline::default(),
    );
    // Section 5.2: hops ≈ half the mean path length, replication ≈ n_min.
    assert!(report.mean_query_hops < report.mean_path_length);
    assert!(report.mean_replication >= 1.5);
    // bandwidth accounting must have recorded both traffic classes
    assert!(report.total_maintenance_bytes > 0);
    assert!(report.total_query_bytes > 0);
}

#[test]
fn deployment_range_window_resolves_every_range() {
    // A timeline with the optional range window enabled: every range query
    // issued between construction and the lookup load must resolve with
    // full interval coverage (stalled walks are retried by the origin).
    let report = run_deployment(
        &NetConfig {
            n_peers: 48,
            seed: 23,
            ..NetConfig::default()
        },
        &Timeline {
            join_end_min: 5,
            replicate_end_min: 8,
            construct_end_min: 25,
            range_end_min: 28,
            query_end_min: 32,
            end_min: 36,
        },
    );
    assert!(report.ranges_issued > 0, "range window issued nothing");
    assert_eq!(
        report.ranges_complete, report.ranges_issued,
        "{}/{} ranges complete",
        report.ranges_complete, report.ranges_issued
    );
    assert!(report.query_success_rate > 0.8);
}

#[test]
fn construction_survives_heavy_message_loss() {
    let report = run_deployment(
        &NetConfig {
            n_peers: 48,
            loss_probability: 0.15,
            seed: 5,
            ..NetConfig::default()
        },
        &Timeline::default(),
    );
    // With 15% message loss the overlay must still form and most queries
    // must still succeed (redundant references and replicas absorb the loss).
    assert!(report.mean_path_length > 1.0);
    assert!(
        report.query_success_rate > 0.6,
        "success rate {} under heavy loss",
        report.query_success_rate
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_message_codec_roundtrips(
        peer in 0u64..1_000_000,
        key_bits in any::<u64>(),
        hops in 0u32..200,
        n_entries in 0usize..64,
        path_bits in any::<u64>(),
        path_len in 0usize..16,
    ) {
        let path = {
            let mut p = Path::root();
            for i in 0..path_len {
                p = p.child((path_bits >> i) & 1 == 1);
            }
            p
        };
        let entries: Vec<DataEntry> = (0..n_entries)
            .map(|i| DataEntry::new(Key(key_bits.wrapping_add(i as u64)), DataId(i as u64)))
            .collect();
        let messages = vec![
            Message::Join { peer: PeerId(peer) },
            Message::Replicate { entries: entries.clone() },
            Message::Exchange { from: PeerId(peer), path, entries: entries.clone() },
            Message::ExchangeReply {
                from: PeerId(peer),
                path,
                outcome: ExchangeOutcome::Split {
                    partition: path,
                    initiator_bit: hops % 2 == 0,
                    entries: entries.clone(),
                    complement: Some((PeerId(peer ^ 7), path)),
                },
            },
            Message::Query { origin: PeerId(peer), id: key_bits, key: Key(key_bits), hops },
            Message::QueryResponse { id: key_bits, entries, hops, found: hops % 3 == 0 },
        ];
        for message in messages {
            let decoded = Message::decode(message.encode());
            prop_assert_eq!(decoded, Some(message));
        }
    }

    #[test]
    fn prop_codec_rejects_or_parses_garbage_without_panicking(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must never panic; it may either fail or
        // happen to parse into some message.
        let _ = Message::decode(bytes::Bytes::from(data));
    }
}
