//! Thread-count parity of the parallel sharded constructor.
//!
//! The construction rounds are executed as conflict-free interaction
//! batches spread across `SimConfig::n_threads` workers, with every
//! interaction drawing from private counter-derived RNG streams.  That
//! design promises *bit-identical* results for every thread count — these
//! tests pin that promise (and the seed-sensitivity the per-peer streams
//! must preserve) against the umbrella crate, and CI runs them on every
//! push.

use pgrid::prelude::*;

fn config(n_peers: usize, seed: u64, n_threads: usize) -> SimConfig {
    SimConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        seed,
        n_threads,
        ..SimConfig::default()
    }
}

#[test]
fn thread_counts_1_2_8_yield_identical_overlays_and_metrics() {
    for (n_peers, seed) in [(192usize, 42u64), (256, 0xC0FFEE)] {
        let single = construct(&config(n_peers, seed, 1));
        for n_threads in [2usize, 8] {
            let multi = construct(&config(n_peers, seed, n_threads));
            assert_eq!(
                single.peer_paths(),
                multi.peer_paths(),
                "peer paths diverged at n_peers={n_peers} seed={seed} threads={n_threads}"
            );
            assert_eq!(
                single.metrics, multi.metrics,
                "metrics diverged at n_peers={n_peers} seed={seed} threads={n_threads}"
            );
            assert_eq!(
                single.responsible_loads(),
                multi.responsible_loads(),
                "stores diverged at n_peers={n_peers} seed={seed} threads={n_threads}"
            );
            for (a, b) in single.peers.iter().zip(&multi.peers) {
                assert_eq!(a.replicas, b.replicas, "replica lists diverged");
                for level in 0..a.path.len() {
                    assert_eq!(
                        a.routing.level(level),
                        b.routing.level(level),
                        "routing tables diverged at level {level}"
                    );
                }
            }
        }
    }
}

#[test]
fn auto_thread_detection_matches_pinned_single_thread() {
    // `n_threads = 0` resolves to the machine's parallelism; whatever that
    // is, the overlay must equal the single-threaded one.
    let auto = construct(&config(192, 7, 0));
    let single = construct(&config(192, 7, 1));
    assert_eq!(auto.peer_paths(), single.peer_paths());
    assert_eq!(auto.metrics, single.metrics);
}

#[test]
fn per_peer_rng_streams_keep_seed_sensitivity() {
    // Regression guard for the counter-derived per-peer streams: different
    // seeds must still drive the construction down different trajectories
    // (the `different_seeds_differ` behaviour of the sequential
    // implementation), at every thread count.
    for n_threads in [1usize, 4] {
        let a = construct(&config(128, 7, n_threads));
        let b = construct(&config(128, 8, n_threads));
        assert_ne!(
            a.metrics.interactions, b.metrics.interactions,
            "seeds 7 and 8 produced identical interaction counts ({n_threads} threads)"
        );
        assert_ne!(
            a.peer_paths(),
            b.peer_paths(),
            "seeds 7 and 8 produced identical placements ({n_threads} threads)"
        );
    }
}
