//! End-to-end transport parity: a full construction run over the real TCP
//! backend must converge to the same balance/decision statistics as the
//! deterministic loopback backend.
//!
//! The two backends carry identical frame bytes (the batched exchange
//! framing of `pgrid-transport`), but loopback delivers them in seeded
//! virtual time while TCP pushes them through real sockets with threaded
//! acceptors.  The protocol — engine decisions included — must not care.

use pgrid::prelude::*;

fn config(seed: u64) -> NetConfig {
    NetConfig {
        n_peers: 36,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed,
        ..NetConfig::default()
    }
}

/// A compressed Section 5 timeline: enough construction ticks to converge,
/// short enough for a socket-backed run in a test suite.
fn short_timeline() -> Timeline {
    Timeline {
        join_end_min: 5,
        replicate_end_min: 8,
        construct_end_min: 28,
        range_end_min: 0,
        query_end_min: 34,
        end_min: 38,
    }
}

#[test]
fn tcp_and_loopback_deployments_converge_to_comparable_overlays() {
    let config = config(21);
    let timeline = short_timeline();

    let loopback = run_deployment(&config, &timeline);
    let tcp = run_deployment_with(&config, &timeline, TcpTransport::new())
        .expect("tcp endpoints must register");

    // Both runs must produce a balanced overlay at all ...
    assert!(
        loopback.balance_deviation < 1.5,
        "loopback deviation {}",
        loopback.balance_deviation
    );
    assert!(
        tcp.balance_deviation < 1.5,
        "tcp deviation {}",
        tcp.balance_deviation
    );
    // ... and must agree with each other on the balance statistics.
    assert!(
        (loopback.balance_deviation - tcp.balance_deviation).abs() < 0.75,
        "backends disagree on balance: loopback {:.3} vs tcp {:.3}",
        loopback.balance_deviation,
        tcp.balance_deviation
    );
    assert!(
        (loopback.mean_path_length - tcp.mean_path_length).abs() < 1.5,
        "backends disagree on trie depth: loopback {:.2} vs tcp {:.2}",
        loopback.mean_path_length,
        tcp.mean_path_length
    );

    // Queries are answered over real sockets too.
    assert!(
        tcp.query_success_rate > 0.8,
        "tcp query success rate {}",
        tcp.query_success_rate
    );

    // The socket path was actually exercised: frames travelled and came
    // back, and (nearly) everything sent was delivered — TCP does not lose
    // frames, only the emulated per-frame loss drops messages.
    assert!(tcp.transport.frames_sent > 500, "{:?}", tcp.transport);
    assert!(
        tcp.transport.frames_delivered >= tcp.transport.frames_sent * 9 / 10,
        "{:?}",
        tcp.transport
    );
    assert!(tcp.transport.bytes_sent > 0);
}

#[test]
fn reactor_tcp_and_loopback_deployments_agree() {
    // Three backends, one seed: the deterministic loopback, the threaded
    // TCP backend (one listener per peer), and the epoll reactor (every
    // peer behind one multiplexed listener).  The protocol statistics must
    // not care which one carried the frames.
    if !pgrid::reactor::supported() {
        eprintln!("skipping: the reactor transport needs Linux epoll");
        return;
    }
    let config = config(21);
    let timeline = short_timeline();

    let loopback = run_deployment(&config, &timeline);
    let tcp = run_deployment_with(&config, &timeline, TcpTransport::new())
        .expect("tcp endpoints must register");
    let reactor = run_deployment_with(&config, &timeline, ReactorTransport::new())
        .expect("reactor endpoints must register");

    for (name, report) in [
        ("loopback", &loopback),
        ("tcp", &tcp),
        ("reactor", &reactor),
    ] {
        assert!(
            report.balance_deviation < 1.5,
            "{name} deviation {}",
            report.balance_deviation
        );
    }
    for (name, report) in [("tcp", &tcp), ("reactor", &reactor)] {
        assert!(
            (loopback.balance_deviation - report.balance_deviation).abs() < 0.75,
            "{name} disagrees on balance: loopback {:.3} vs {name} {:.3}",
            loopback.balance_deviation,
            report.balance_deviation
        );
        assert!(
            (loopback.mean_path_length - report.mean_path_length).abs() < 1.5,
            "{name} disagrees on trie depth: loopback {:.2} vs {name} {:.2}",
            loopback.mean_path_length,
            report.mean_path_length
        );
        assert!(
            report.query_success_rate > 0.8,
            "{name} query success rate {}",
            report.query_success_rate
        );
    }

    // The reactor actually moved the frames (single-process, so they ride
    // the local fast path) and hosted the whole population on a handful of
    // descriptors.
    assert!(
        reactor.transport.frames_sent > 500,
        "{:?}",
        reactor.transport
    );
    assert_eq!(
        reactor.transport.frames_delivered, reactor.transport.frames_sent,
        "local reactor delivery is lossless: {:?}",
        reactor.transport
    );
    let stats = reactor
        .transport
        .reactor
        .expect("reactor runs report reactor stats");
    assert_eq!(stats.registered_peers, config.n_peers as u64);
    assert!(
        stats.registered_fds < 16,
        "fds must not scale with peers: {stats:?}"
    );
}

#[test]
fn per_tick_batching_packs_messages_into_shared_frames() {
    // The two runs follow different random trajectories (loss is drawn per
    // frame), so total frame counts are not directly comparable; what the
    // batching knob guarantees is the frame *shape*: multi-message frames
    // exist exactly when batching is on.
    let run = |batch_per_tick| {
        let mut rt = Runtime::new(NetConfig {
            batch_per_tick,
            ..config(33)
        });
        for peer in 0..36 {
            rt.join_peer(peer, 4);
        }
        rt.replication_phase();
        rt.run_until(30_000);
        rt.start_construction();
        rt.run_until(600_000);
        rt
    };
    let batched = run(true);
    let unbatched = run(false);

    assert!(
        batched.metrics.multi_message_frames > 0,
        "batching on but every frame carried a single message"
    );
    assert_eq!(
        unbatched.metrics.multi_message_frames, 0,
        "batching off must mean one message per frame"
    );
    // Batching strictly packs: fewer frames than messages on the wire.
    let batched_stats = batched.transport_stats();
    assert!(
        (batched_stats.frames_delivered as usize)
            < batched.metrics.messages_delivered + batched.metrics.messages_to_offline,
        "{batched_stats:?} vs {} delivered messages",
        batched.metrics.messages_delivered
    );
    // Construction converges either way.
    for rt in [&batched, &unbatched] {
        let max_depth = rt.nodes.iter().map(|n| n.state.path.len()).max().unwrap();
        assert!(max_depth >= 2, "max depth {max_depth}");
    }
}
