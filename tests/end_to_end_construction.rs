//! Integration tests spanning `pgrid-workload`, `pgrid-sim` and
//! `pgrid-core`: the decentralized construction must produce an overlay
//! that is consistent, balanced and queryable for every workload of the
//! paper's evaluation.

use pgrid::prelude::*;
use pgrid::workload::queries::{generate_queries, QueryWorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(dist: Distribution, n_peers: usize, seed: u64) -> ConstructedOverlay {
    construct(&SimConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: dist,
        seed,
        ..SimConfig::default()
    })
}

#[test]
fn every_paper_workload_yields_a_consistent_queryable_overlay() {
    for dist in Distribution::paper_suite() {
        let overlay = build(dist, 96, 11);
        // structural consistency
        for peer in &overlay.peers {
            assert!(peer.invariants_hold(), "{dist}: inconsistent routing table");
            for level in 0..peer.path.len() {
                assert!(
                    !peer.routing.level(level).is_empty(),
                    "{dist}: missing reference at level {level}"
                );
            }
        }
        // the overlay must actually partition the key space
        assert!(
            overlay.max_depth() >= 2,
            "{dist}: overlay did not specialise"
        );
        // load balance within a loose factor of the optimum
        let keys: Vec<Key> = overlay.original_entries.iter().map(|e| e.key).collect();
        let reference = ReferencePartitioning::compute(&keys, 96, overlay.params);
        let report = compare_to_reference(&reference, &overlay.peer_paths());
        assert!(
            report.deviation < 1.5,
            "{dist}: deviation {}",
            report.deviation
        );
        // queries on existing keys succeed
        let mut rng = StdRng::seed_from_u64(5);
        let queries = generate_queries(
            &QueryWorkloadConfig {
                count: 150,
                range_fraction: 0.1,
                existing_fraction: 1.0,
                ..QueryWorkloadConfig::default()
            },
            &keys,
            &mut rng,
        );
        let stats = run_queries(&overlay, &queries, &mut rng);
        assert!(
            stats.success_rate() > 0.9,
            "{dist}: query success rate {}",
            stats.success_rate()
        );
    }
}

#[test]
fn deviation_is_stable_across_population_sizes() {
    // Figure 6a's main observation: the quality of load balancing does not
    // degrade with the population size.
    let small = build(Distribution::Pareto { shape: 1.0 }, 64, 3);
    let large = build(Distribution::Pareto { shape: 1.0 }, 256, 3);
    let dev = |overlay: &ConstructedOverlay, n: usize| {
        let keys: Vec<Key> = overlay.original_entries.iter().map(|e| e.key).collect();
        let reference = ReferencePartitioning::compute(&keys, n, overlay.params);
        compare_to_reference(&reference, &overlay.peer_paths()).deviation
    };
    let d_small = dev(&small, 64);
    let d_large = dev(&large, 256);
    assert!(
        (d_small - d_large).abs() < 0.6,
        "deviation should not explode with population size: {d_small} vs {d_large}"
    );
}

#[test]
fn parallel_construction_has_sublinear_latency_in_rounds() {
    // Section 4.3: the parallel construction needs O(log^2) rounds while the
    // sequential model needs O(N) serialised joins.
    let config = |n| SimConfig {
        n_peers: n,
        distribution: Distribution::Uniform,
        seed: 9,
        ..SimConfig::default()
    };
    let parallel_small = construct(&config(64));
    let parallel_large = construct(&config(256));
    // Quadrupling the network size should not quadruple the parallel rounds.
    assert!(
        (parallel_large.metrics.rounds as f64) < 2.5 * parallel_small.metrics.rounds as f64,
        "parallel rounds should grow sub-linearly: {} -> {}",
        parallel_small.metrics.rounds,
        parallel_large.metrics.rounds
    );
    let sequential_small = construct_sequentially(&config(64));
    let sequential_large = construct_sequentially(&config(256));
    assert!(
        sequential_large.latency > 3 * sequential_small.latency,
        "sequential latency should grow ~linearly: {} -> {}",
        sequential_small.latency,
        sequential_large.latency
    );
    // and for the larger network the parallel construction must be far faster
    assert!(
        parallel_large.metrics.rounds * 10 < sequential_large.latency,
        "parallel ({} rounds) should beat sequential ({} steps) by a wide margin",
        parallel_large.metrics.rounds,
        sequential_large.latency
    );
}

#[test]
fn range_queries_return_exactly_the_keys_in_range() {
    let overlay = build(Distribution::Uniform, 96, 21);
    let mut rng = StdRng::seed_from_u64(2);
    let lo = Key::from_fraction(0.30);
    let hi = Key::from_fraction(0.45);
    let result = range_query(&overlay, PeerId(1), lo, hi, &mut rng);
    assert!(result.complete);
    // every returned entry is in range
    assert!(result.entries.iter().all(|e| e.key >= lo && e.key <= hi));
    // and (almost) every original entry in range is returned: entries still
    // "in transit" at non-responsible peers may be missed, everything else
    // must be found.
    let expected: Vec<_> = overlay
        .original_entries
        .iter()
        .filter(|e| e.key >= lo && e.key <= hi)
        .collect();
    assert!(
        result.entries.len() * 100 >= expected.len() * 90,
        "range query returned {} of {} expected entries",
        result.entries.len(),
        expected.len()
    );
}

#[test]
fn replication_factors_track_n_min() {
    let overlay = build(Distribution::Uniform, 256, 5);
    let factors = overlay.replication_factors();
    let mean = factors.iter().sum::<usize>() as f64 / factors.len() as f64;
    // Section 2.2: with proper parameters every partition ends up with
    // between n_min and about 2 n_min peers.
    assert!(
        mean >= 2.5 && mean <= 4.0 * overlay.params.n_min as f64,
        "mean replication {mean} outside the expected band (n_min = {})",
        overlay.params.n_min
    );
}
