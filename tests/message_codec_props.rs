//! Property tests for the wire codec and the transport framing: every
//! message variant must survive encode → frame → (split) → deframe →
//! decode, and malformed/truncated bytes must be rejected without panics.

use bytes::Bytes;
use pgrid::core::key::{DataEntry, DataId, Key};
use pgrid::core::path::Path;
use pgrid::core::routing::PeerId;
use pgrid::net::message::{ExchangeOutcome, Message};
use pgrid::transport::frame::{decode_frame, encode_frame, FrameReader};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arbitrary_path(rng: &mut StdRng) -> Path {
    let len = rng.gen_range(0..=12);
    let mut path = Path::root();
    for _ in 0..len {
        path = path.child(rng.gen_bool(0.5));
    }
    path
}

fn arbitrary_entries(rng: &mut StdRng) -> Vec<DataEntry> {
    (0..rng.gen_range(0..20))
        .map(|_| DataEntry::new(Key(rng.gen()), DataId(rng.gen())))
        .collect()
}

fn arbitrary_outcome(rng: &mut StdRng) -> ExchangeOutcome {
    match rng.gen_range(0..4) {
        0 => ExchangeOutcome::Split {
            partition: arbitrary_path(rng),
            initiator_bit: rng.gen_bool(0.5),
            entries: arbitrary_entries(rng),
            complement: rng
                .gen_bool(0.5)
                .then(|| (PeerId(rng.gen()), arbitrary_path(rng))),
        },
        1 => ExchangeOutcome::Replicate {
            entries: arbitrary_entries(rng),
        },
        2 => ExchangeOutcome::Refer {
            peer: PeerId(rng.gen()),
            path: arbitrary_path(rng),
        },
        _ => ExchangeOutcome::Nothing,
    }
}

/// One random message; `variant` cycles so every shape is exercised no
/// matter what the seed draws.
fn arbitrary_message(variant: u8, rng: &mut StdRng) -> Message {
    match variant % 7 {
        0 => Message::Join {
            peer: PeerId(rng.gen()),
        },
        1 => Message::JoinAck {
            neighbours: (0..rng.gen_range(0..16))
                .map(|_| PeerId(rng.gen()))
                .collect(),
        },
        2 => Message::Replicate {
            entries: arbitrary_entries(rng),
        },
        3 => Message::Exchange {
            from: PeerId(rng.gen()),
            path: arbitrary_path(rng),
            entries: arbitrary_entries(rng),
        },
        4 => Message::ExchangeReply {
            from: PeerId(rng.gen()),
            path: arbitrary_path(rng),
            outcome: arbitrary_outcome(rng),
        },
        5 => Message::Query {
            origin: PeerId(rng.gen()),
            id: rng.gen(),
            key: Key(rng.gen()),
            hops: rng.gen_range(0..64),
        },
        _ => Message::QueryResponse {
            id: rng.gen(),
            entries: arbitrary_entries(rng),
            hops: rng.gen_range(0..64),
            found: rng.gen_bool(0.5),
        },
    }
}

fn arbitrary_batch(seed: u64, count: usize) -> Vec<Message> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| arbitrary_message(i as u8, &mut rng))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_message_variant_roundtrips(seed in any::<u64>(), variant in 0u8..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let message = arbitrary_message(variant, &mut rng);
        let decoded = Message::decode(message.encode());
        prop_assert_eq!(decoded.as_ref(), Some(&message));
    }

    #[test]
    fn multi_message_batches_roundtrip_through_frames(seed in any::<u64>(), count in 0usize..12) {
        let batch = arbitrary_batch(seed, count);
        let payloads: Vec<Bytes> = batch.iter().map(Message::encode).collect();
        let frame = encode_frame(&payloads);
        let recovered = decode_frame(&frame).expect("own frames must decode");
        prop_assert_eq!(recovered.len(), batch.len());
        for (payload, original) in recovered.into_iter().zip(&batch) {
            let decoded = Message::decode(payload);
            prop_assert_eq!(decoded.as_ref(), Some(original));
        }
    }

    #[test]
    fn frames_split_at_arbitrary_boundaries_reassemble(
        seed in any::<u64>(),
        frames in 1usize..5,
        chunk in 1usize..97,
    ) {
        let mut stream = Vec::new();
        let mut sent = Vec::new();
        for f in 0..frames {
            let batch = arbitrary_batch(seed.wrapping_add(f as u64), f + 1);
            let payloads: Vec<Bytes> = batch.iter().map(Message::encode).collect();
            let frame = encode_frame(&payloads);
            stream.extend_from_slice(frame.as_slice());
            sent.push(batch);
        }
        let mut reader = FrameReader::new();
        let mut received = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.extend(piece);
            while let Some(frame) = reader.next_frame().expect("valid stream") {
                let batch: Vec<Message> = decode_frame(&frame)
                    .expect("complete frame")
                    .into_iter()
                    .map(|p| Message::decode(p).expect("valid payload"))
                    .collect();
                received.push(batch);
            }
        }
        prop_assert_eq!(reader.buffered(), 0);
        prop_assert_eq!(received, sent);
    }

    #[test]
    fn truncated_frames_are_incomplete_never_garbage(seed in any::<u64>(), keep in 0usize..64) {
        let batch = arbitrary_batch(seed, 3);
        let payloads: Vec<Bytes> = batch.iter().map(Message::encode).collect();
        let frame = encode_frame(&payloads);
        let keep = keep.min(frame.len().saturating_sub(1));
        // decode_frame on a truncated frame must error out, not panic.
        let truncated = Bytes::from(&frame.as_slice()[..keep]);
        prop_assert!(decode_frame(&truncated).is_err());
        // The incremental reader must simply wait for the rest.
        let mut reader = FrameReader::new();
        reader.extend(truncated.as_slice());
        prop_assert_eq!(reader.next_frame().expect("prefix of a valid frame"), None);
        reader.extend(&frame.as_slice()[keep..]);
        prop_assert_eq!(reader.next_frame().expect("now complete"), Some(frame));
    }
}
