//! Self-contained stand-in for the `criterion` crate (API subset).
//!
//! The build environment of this repository has no access to a crate
//! registry, so the workspace vendors the benchmark-harness surface its
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_with_input`/`bench_function`, [`Bencher::iter`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`BenchmarkId`].
//!
//! Measurements are simple wall-clock timings (median over the configured
//! sample count, one closure invocation per sample) printed as one line per
//! benchmark; there is no statistical analysis, plotting or persistence.
//! Passing `--test` (as `cargo test --benches` does) runs every benchmark
//! once, only checking that it executes.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns the input unchanged, preventing the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Benchmark driver handed to the registered benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Registers and runs a benchmark taking an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut timings = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher, input);
            timings.push(bencher.elapsed);
        }
        timings.sort_unstable();
        let median = timings[timings.len() / 2];
        println!(
            "bench {group}/{id}: median {median:?} over {samples} samples",
            group = self.name,
            id = id.id,
        );
        self
    }

    /// Registers and runs a benchmark without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id.into(), &(), |bencher, ()| routine(bencher))
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times the benchmarked routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Measures one sample: calls `routine` once and records its runtime.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Bundles benchmark functions into a callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_produces_a_runnable_harness() {
        benches();
    }
}
