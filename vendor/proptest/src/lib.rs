//! Self-contained stand-in for the `proptest` crate (API subset).
//!
//! The build environment of this repository has no access to a crate
//! registry, so the workspace vendors the surface its property tests use:
//! the [`proptest!`] macro with an optional `#![proptest_config(...)]`
//! header, range and [`any`] strategies, [`collection::vec`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] assertions.
//!
//! Unlike the real proptest there is no shrinking and no failure
//! persistence: each test simply runs `cases` deterministic random cases
//! (seeded per test from the test name) and panics on the first failing
//! case, printing the case number.

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand as __rand;

/// Number of cases to run per property and related knobs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut rand::rngs::StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut rand::rngs::StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut rand::rngs::StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates values over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut rand::rngs::StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut rand::rngs::StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut rand::rngs::StdRng) -> f64 {
        rand::Rng::gen::<f64>(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( #[test] fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                // Seed per test name so cases differ between properties but
                // stay reproducible across runs.
                let seed = stringify!($name)
                    .bytes()
                    .fold(0xcbf29ce484222325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100000001b3)
                    });
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng); )+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(error) = outcome {
                        panic!("proptest {} failed at case {case}: {error}", stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0.25f64..0.75, z in any::<u8>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y = {}", y);
            let _ = z;
        }

        #[test]
        fn vectors_respect_the_size_range(v in crate::collection::vec(any::<u8>(), 0..9)) {
            prop_assert!(v.len() < 9);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn prop_assertions_produce_errors_not_panics() {
        fn check(x: u64) -> TestCaseResult {
            prop_assert!(x > 100, "x = {}", x);
            prop_assert_eq!(x % 2, 1);
            Ok(())
        }
        assert!(check(5).is_err());
        assert!(check(101).is_ok());
        assert!(check(102).is_err());
    }
}
