//! Self-contained stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment of this repository has no access to a crate
//! registry, so the workspace vendors the small API surface it actually
//! uses instead of depending on crates.io:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (not the same stream as upstream `StdRng`, but the same
//!   statistical quality class and the same reproducibility contract);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] for the integer
//!   and float ranges the repository samples;
//! * [`seq::SliceRandom::choose`] and [`seq::SliceRandom::shuffle`].
//!
//! Everything is implemented from scratch; no code is copied from the
//! upstream crate.

#![warn(rust_2018_idioms)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (top bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` uniform in `[0, 1)`, integers over their full range,
    /// `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = distributions::unit_f64(rng.next_u64());
        let value = self.start + unit * (self.end - self.start);
        // Floating-point rounding may land exactly on the excluded endpoint.
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + distributions::unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Standard distributions backing [`Rng::gen`].
pub mod distributions {
    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform over the natural domain).
    pub struct Standard;

    /// Maps a random word to a uniform `f64` in `[0, 1)` with 53 bits of
    /// precision.
    pub(crate) fn unit_f64(word: u64) -> f64 {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),* $(,)?) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Concrete generators.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (xoshiro256++).
    ///
    /// Unlike upstream `StdRng` this is not a cryptographic generator, but
    /// it passes the usual statistical test batteries and is more than
    /// adequate for the simulations in this repository.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5u64);
            assert_eq!(y, 5);
            let z = rng.gen_range(-4..9i32);
            assert!((-4..9).contains(&z));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..16).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 4];
        let arr = [0usize, 1, 2, 3];
        for _ in 0..200 {
            seen[*arr.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
