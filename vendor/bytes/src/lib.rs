//! Self-contained stand-in for the `bytes` crate (API subset).
//!
//! The build environment of this repository has no access to a crate
//! registry, so the workspace vendors the small surface its wire codec
//! uses: [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! big-endian integer accessors, matching the upstream semantics.

#![warn(rust_2018_idioms)]

use std::sync::Arc;

/// Read access to a contiguous buffer with an internal cursor.
pub trait Buf {
    /// Number of bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let value = self.chunk()[0];
        self.advance(1);
        value
    }

    /// Consumes two bytes as a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    /// Consumes four bytes as a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Consumes eight bytes as a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Consumes eight bytes as a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

/// A cheaply cloneable immutable byte buffer with a consuming cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    cursor: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::from(data),
            cursor: 0,
            end,
        }
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.end - self.cursor
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.cursor..self.end]
    }

    /// Splits off and returns the first `n` unconsumed bytes as a
    /// zero-copy view sharing the same allocation, advancing this buffer
    /// past them (upstream `Bytes::split_to` semantics).
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to past end of buffer");
        let out = Bytes {
            data: self.data.clone(),
            cursor: self.cursor,
            end: self.cursor + n,
        };
        self.cursor += n;
        out
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::from(data),
            cursor: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        let end = data.len();
        Bytes {
            data: Arc::from(data),
            cursor: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.cursor..self.end]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.cursor += n;
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with a capacity hint.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u32(0x1234_5678);
        buf.put_u64(0x1122_3344_5566_7788);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u32(), 0x1234_5678);
        assert_eq!(bytes.get_u64(), 0x1122_3344_5566_7788);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn cursor_survives_clone_and_equality_ignores_consumed_prefix() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        a.get_u8();
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Bytes::from(vec![2, 3, 4]));
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advancing_past_the_end_panics() {
        let mut b = Bytes::from_static(&[1]);
        b.advance(2);
    }

    #[test]
    fn split_to_shares_the_allocation_and_advances() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        b.get_u8();
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[2, 3]);
        assert_eq!(b.as_slice(), &[4, 5]);
        assert_eq!(head, Bytes::from(vec![2, 3]));
        // The view is bounded: its cursor APIs stop at the split point.
        let mut head = head;
        assert_eq!(head.get_u8(), 2);
        assert_eq!(head.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "split_to past end")]
    fn split_past_the_end_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.split_to(3);
    }
}
