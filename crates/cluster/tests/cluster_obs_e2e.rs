//! Observability end-to-end: structured tracing across real process
//! boundaries plus the live HTTP scrape plane.
//!
//! The run is the same 32-peer / 2-worker smoke deployment as
//! `cluster_e2e`, but with tracing enabled and every process serving
//! `/metrics`: the workers ship their per-query trace events and registry
//! snapshots to the coordinator at each phase barrier, the coordinator
//! probes the workers' endpoints over real HTTP mid-run and publishes the
//! merged cluster view on its own endpoint.  The assertions close the
//! loop: a lookup issued in one worker process must reassemble into a
//! complete hop chain whose events span peers of *both* shards.

use pgrid_cluster::coordinator::ObsOptions;
use pgrid_cluster::local::{run_local_observed, LocalOptions};
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::NetConfig;
use pgrid_obs::scrape::{http_get, ScrapeServer, ScrapeState};
use pgrid_obs::trace::assemble;
use pgrid_workload::distributions::Distribution;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn config() -> NetConfig {
    NetConfig {
        n_peers: 32,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 12,
        ..NetConfig::default()
    }
}

fn short_timeline() -> Timeline {
    Timeline {
        join_end_min: 3,
        replicate_end_min: 5,
        construct_end_min: 18,
        range_end_min: 0,
        query_end_min: 22,
        end_min: 25,
    }
}

/// Pulls `metric{... worker="N" ...} value` series out of a Prometheus
/// text body.
fn series_values(body: &str, metric: &str) -> Vec<(String, f64)> {
    body.lines()
        .filter(|line| line.starts_with(metric))
        .filter_map(|line| {
            let worker = line.split("worker=\"").nth(1)?.split('"').next()?;
            let value = line.rsplit(' ').next()?.parse().ok()?;
            Some((worker.to_string(), value))
        })
        .collect()
}

#[test]
fn tracing_cluster_reassembles_cross_process_hop_chains_and_serves_metrics() {
    let dir = std::env::temp_dir().join(format!("pgrid-obs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_out = dir.join("trace.jsonl");
    let metrics_out = dir.join("metrics.prom");

    // The test owns the coordinator's scrape endpoint, so its address is
    // known before the blocking run starts.
    let state = ScrapeState::new();
    let server = ScrapeServer::serve(
        "127.0.0.1:0".parse().unwrap(),
        std::sync::Arc::clone(&state),
    )
    .expect("bind coordinator scrape endpoint");
    let coordinator_scrape = server.addr();

    let options = LocalOptions {
        workers: 2,
        worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
        inherit_stderr: true,
        obs: ObsOptions {
            tracing: true,
            scrape: Some(state),
            trace_out: Some(trace_out.clone()),
            flight_dump: None,
            metrics_out: Some(metrics_out.clone()),
        },
        worker_metrics: true,
        worker_flight_dir: None,
        heal: Default::default(),
        ..LocalOptions::default()
    };
    let (config, timeline) = (config(), short_timeline());
    let run = std::thread::spawn(move || run_local_observed(&config, &timeline, &options));

    // While the deployment is in flight, discover a worker's ephemeral
    // /metrics port from the coordinator's merged view and scrape the
    // worker directly over HTTP.  Best effort under load — the coordinator
    // itself probes every worker at every barrier, which the final
    // registry assertions below pin down deterministically.
    let mut worker_scrape_body: Option<String> = None;
    let deadline = Instant::now() + Duration::from_secs(120);
    while !run.is_finished() && Instant::now() < deadline {
        if let Ok(body) = http_get(coordinator_scrape, "/metrics") {
            for (_, port) in series_values(&body, "pgrid_cluster_worker_metrics_port") {
                let addr: SocketAddr = format!("127.0.0.1:{}", port as u16).parse().unwrap();
                if let Ok(worker_body) = http_get(addr, "/metrics") {
                    worker_scrape_body = Some(worker_body);
                }
            }
            if worker_scrape_body.is_some() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let (report, observed) = run
        .join()
        .expect("run thread")
        .expect("the traced 2-process cluster run must complete");
    assert!(report.query_success_rate > 0.8);

    // A mid-run direct worker scrape returns that worker's own registry.
    if let Some(body) = &worker_scrape_body {
        assert!(
            body.contains("pgrid_cluster_worker_index")
                && body.contains("pgrid_transport_frames_sent_total"),
            "worker /metrics body lacks its registry:\n{body}"
        );
    }

    // The coordinator's endpoint still serves the final merged view over
    // real HTTP, with both workers' series labelled apart and at least one
    // successful coordinator-side HTTP probe of each worker's endpoint.
    let merged = http_get(coordinator_scrape, "/metrics").expect("coordinator /metrics");
    for worker in ["0", "1"] {
        assert!(
            merged.contains(&format!("worker=\"{worker}\"")),
            "no worker=\"{worker}\" series in the merged registry:\n{merged}"
        );
    }
    let probes = series_values(&merged, "pgrid_cluster_worker_scrape_ok_total");
    assert_eq!(probes.len(), 2, "expected 2 probe counters: {probes:?}");
    for (worker, ok) in &probes {
        assert!(
            *ok >= 1.0,
            "coordinator never scraped worker {worker} mid-run"
        );
    }
    // The per-barrier metrics file got its final flush too.
    let file = std::fs::read_to_string(&metrics_out).expect("metrics-out file");
    assert!(file.contains("pgrid_cluster_metrics_flushes_total"));

    // Trace events crossed the control plane from both ID spaces (worker
    // bases 1 and 2 tag the high bits).
    assert!(
        !observed.trace_events.is_empty(),
        "no trace events reached the coordinator"
    );
    let chains = assemble(&observed.trace_events);
    let bases: std::collections::BTreeSet<u64> = chains.keys().map(|id| id >> 40).collect();
    assert!(
        bases.len() >= 2,
        "trace IDs from one worker only (bases {bases:?})"
    );

    // At least one complete cross-process chain: issued, then answered on
    // a peer of the *other* shard, then resolved back at the issuer.
    let shard_of = |peer: u64| peer / 16;
    let complete_cross_process = chains.values().any(|chain| {
        let issued = chain.first().is_some_and(|e| e.kind == "query_issued");
        let resolved = chain.last().is_some_and(|e| e.kind == "query_resolved");
        let answered = chain.iter().any(|e| e.kind == "query_answered");
        let shards: std::collections::BTreeSet<u64> =
            chain.iter().map(|e| shard_of(e.peer)).collect();
        issued && answered && resolved && shards.len() == 2
    });
    assert!(
        complete_cross_process,
        "no complete hop chain spans both shards ({} chains)",
        chains.len()
    );

    // The merged trace also landed on disk as JSONL.
    let jsonl = std::fs::read_to_string(&trace_out).expect("trace-out file");
    assert!(jsonl.lines().count() >= observed.trace_events.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_dumps_flight_recorder_when_a_worker_fails() {
    use pgrid_cluster::coordinator::{run_coordinator_observed, ClusterConfig};
    use std::net::{TcpListener, TcpStream};

    let dir = std::env::temp_dir().join(format!("pgrid-obs-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dump = dir.join("coordinator-flight.jsonl");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    // A "worker" that connects and immediately hangs up: the rendezvous
    // dies waiting for its Hello.
    let saboteur = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        drop(stream);
    });

    let cluster = ClusterConfig {
        n_workers: 1,
        net: config(),
        timeline: short_timeline(),
        heal: Default::default(),
    };
    let obs = ObsOptions {
        flight_dump: Some(dump.clone()),
        ..ObsOptions::default()
    };
    let result = run_coordinator_observed(listener, &cluster, &obs);
    saboteur.join().unwrap();
    assert!(result.is_err(), "the rendezvous must fail");

    let jsonl = std::fs::read_to_string(&dump).expect("flight dump written");
    assert!(
        jsonl.contains("worker failure"),
        "dump lacks the failure reason:\n{jsonl}"
    );
    assert!(
        jsonl.contains("worker_failure"),
        "dump lacks the recorded failure note:\n{jsonl}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
