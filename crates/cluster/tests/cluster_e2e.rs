//! Multi-process end-to-end: the full Section-5 timeline across real OS
//! process boundaries.
//!
//! The test runs the same configuration twice — once in-process over the
//! deterministic loopback transport (`run_deployment`, the reference) and
//! once as a coordinator plus **two real worker processes** spawned from
//! the `pgrid-cluster` binary, each hosting half the peers on its own
//! `TcpTransport` and reaching the other half through remote
//! registrations.  The merged cluster report must satisfy the same
//! balance/replication invariants as the single-process run: protocol
//! state genuinely crossed the process boundary, or the trie could never
//! have mixed the two shards.

use pgrid_cluster::local::{run_local, LocalOptions};
use pgrid_cluster::worker::TransportChoice;
use pgrid_net::experiment::{run_deployment, Timeline};
use pgrid_net::runtime::NetConfig;
use pgrid_workload::distributions::Distribution;
use std::path::PathBuf;

fn config() -> NetConfig {
    NetConfig {
        n_peers: 32,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 12,
        ..NetConfig::default()
    }
}

/// The compressed smoke timeline also used by `pgrid-cluster local --smoke`.
fn short_timeline() -> Timeline {
    Timeline {
        join_end_min: 3,
        replicate_end_min: 5,
        construct_end_min: 18,
        range_end_min: 0,
        query_end_min: 22,
        end_min: 25,
    }
}

#[test]
fn two_worker_processes_converge_like_the_single_process_run() {
    let config = config();
    let timeline = short_timeline();

    let single = run_deployment(&config, &timeline);
    let cluster = run_local(
        &config,
        &timeline,
        &LocalOptions {
            workers: 2,
            worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
            inherit_stderr: true,
            ..LocalOptions::default()
        },
    )
    .expect("the 2-process cluster run must complete");

    // The merged timeline covers every minute of the run.
    assert_eq!(cluster.timeline.len() as u64, timeline.end_min + 1);

    // Both runs build a balanced overlay ...
    assert!(
        single.balance_deviation < 1.5,
        "single-process deviation {}",
        single.balance_deviation
    );
    assert!(
        cluster.balance_deviation < 1.5,
        "cluster deviation {}",
        cluster.balance_deviation
    );
    // ... and agree on the balance statistics (same bound as the
    // TCP-vs-loopback parity test).
    assert!(
        (single.balance_deviation - cluster.balance_deviation).abs() < 0.75,
        "deployment modes disagree on balance: single {:.3} vs cluster {:.3}",
        single.balance_deviation,
        cluster.balance_deviation
    );
    assert!(
        (single.mean_path_length - cluster.mean_path_length).abs() < 1.5,
        "deployment modes disagree on trie depth: single {:.2} vs cluster {:.2}",
        single.mean_path_length,
        cluster.mean_path_length
    );

    // The trie actually partitioned (a shard that never talked to the other
    // one would stay at the root) and replicas formed at the paper's scale.
    assert!(
        cluster.mean_path_length >= 1.5,
        "mean path length {:.2}: the shards never mixed",
        cluster.mean_path_length
    );
    assert!(
        cluster.mean_replication >= 1.0,
        "mean replication {:.2}",
        cluster.mean_replication
    );

    // Queries issued in one process were answered across the wire.
    assert!(
        cluster.query_success_rate > 0.8,
        "cluster query success rate {}",
        cluster.query_success_rate
    );
    assert!(!cluster.timeline.iter().all(|s| s.query_bps == 0.0));
    assert!(cluster.total_maintenance_bytes > 0);
    assert!(cluster.total_query_bytes > 0);

    // Frame counters are summed across both workers, and (nearly)
    // everything sent was delivered — only the emulated per-frame loss and
    // churn-window connection failures drop frames.
    assert!(
        cluster.transport.frames_sent > 500,
        "{:?}",
        cluster.transport
    );
    assert!(
        cluster.transport.frames_delivered >= cluster.transport.frames_sent * 9 / 10,
        "{:?}",
        cluster.transport
    );
    // Per-peer link stats crossed the control plane and were merged: every
    // peer saw traffic, and cluster-wide sends match cluster-wide receives.
    assert_eq!(
        cluster.transport.per_peer.len(),
        config.n_peers,
        "every peer should have link stats in the merged report"
    );
    let link_sent: u64 = cluster
        .transport
        .per_peer
        .values()
        .map(|l| l.frames_sent)
        .sum();
    let link_received: u64 = cluster
        .transport
        .per_peer
        .values()
        .map(|l| l.frames_received)
        .sum();
    assert_eq!(link_sent, cluster.transport.frames_sent);
    assert_eq!(link_received, cluster.transport.frames_delivered);
}

#[test]
fn two_worker_processes_resolve_range_queries_across_shards() {
    // The optional range window on a sharded deployment: range walks hop
    // across the process boundary (a shard rarely hosts every partition of
    // a slice), the per-shard aggregates are merged by the coordinator,
    // and every issued range must achieve full interval coverage.
    let config = config();
    let timeline = Timeline {
        join_end_min: 3,
        replicate_end_min: 5,
        construct_end_min: 18,
        range_end_min: 20,
        query_end_min: 22,
        end_min: 25,
    };
    let cluster = run_local(
        &config,
        &timeline,
        &LocalOptions {
            workers: 2,
            worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
            inherit_stderr: true,
            ..LocalOptions::default()
        },
    )
    .expect("the 2-process range run must complete");
    assert!(
        cluster.ranges_issued > 0,
        "the range window issued no ranges"
    );
    assert_eq!(
        cluster.ranges_complete, cluster.ranges_issued,
        "{}/{} cluster ranges complete",
        cluster.ranges_complete, cluster.ranges_issued
    );
    // The ordinary lookup plane must be unaffected by the extra phase.
    assert!(
        cluster.query_success_rate > 0.8,
        "query success rate {}",
        cluster.query_success_rate
    );
}

#[test]
fn two_reactor_worker_processes_complete_the_timeline() {
    // The same two-process smoke run with every worker hosting its shard
    // on the epoll reactor (`--transport reactor`): frames of all 16 peers
    // per process share one multiplexed connection pair instead of 16x16
    // threaded links.  On platforms without epoll the flag falls back to
    // the threaded backend, so the run must complete either way.
    let config = config();
    let timeline = short_timeline();
    let cluster = run_local(
        &config,
        &timeline,
        &LocalOptions {
            workers: 2,
            worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
            inherit_stderr: true,
            transport: TransportChoice::Reactor,
            ..LocalOptions::default()
        },
    )
    .expect("the 2-process reactor run must complete");
    assert!(
        cluster.balance_deviation < 1.5,
        "deviation {}",
        cluster.balance_deviation
    );
    assert!(
        cluster.mean_path_length >= 1.5,
        "mean path length {:.2}: the shards never mixed",
        cluster.mean_path_length
    );
    assert!(
        cluster.query_success_rate > 0.8,
        "query success rate {}",
        cluster.query_success_rate
    );
    assert!(
        cluster.transport.frames_sent > 500,
        "{:?}",
        cluster.transport
    );
    if pgrid_reactor::supported() {
        let stats = cluster
            .transport
            .reactor
            .expect("reactor workers report reactor stats in the merged view");
        assert_eq!(
            stats.registered_peers, config.n_peers as u64,
            "both shards' registrations must merge: {stats:?}"
        );
        assert!(
            stats.registered_fds < 32,
            "fds must not scale with peers: {stats:?}"
        );
    }
}

#[test]
fn four_worker_processes_also_complete_the_timeline() {
    // A denser process split of the same deployment: four shards of eight
    // peers each still have to produce a working overlay.
    let config = config();
    let timeline = short_timeline();
    let cluster = run_local(
        &config,
        &timeline,
        &LocalOptions {
            workers: 4,
            worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
            inherit_stderr: true,
            ..LocalOptions::default()
        },
    )
    .expect("the 4-process cluster run must complete");
    assert!(
        cluster.balance_deviation < 1.5,
        "deviation {}",
        cluster.balance_deviation
    );
    assert!(
        cluster.query_success_rate > 0.8,
        "query success rate {}",
        cluster.query_success_rate
    );
    assert!(cluster.mean_replication >= 1.0);
}
