//! Warm-restart end-to-end: a killed worker relaunches with the same
//! `--data-dir`, replays its durable log, and rejoins the run.
//!
//! The same fault is injected twice.  The **cold** run heals the PR-8 way:
//! the orphaned shard is reassigned round-robin onto the survivors and
//! every peer is rebuilt from live P-Grid replicas.  The **warm** run keeps
//! the shard where it was: the relaunch monitor respawns the killed
//! process with identical arguments, the worker replays its log, announces
//! itself with `Rejoin` inside the coordinator's grace window, reclaims its
//! own shard, and reconciles the crash window against live replicas with
//! an anti-entropy diff.  Warm recovery must be attributed as a rejoin,
//! cover the whole shard from the log, converge inside the reference
//! envelope — and its healing round must beat the cold rebuild (or stay
//! sub-second when a lucky cold round dodges the pull-retry race).

use pgrid_cluster::coordinator::{HealConfig, KillPlan, ObsReport};
use pgrid_cluster::local::{run_local_observed, LocalOptions};
use pgrid_net::experiment::{DeploymentReport, Timeline};
use pgrid_net::runtime::NetConfig;
use pgrid_workload::distributions::Distribution;
use std::path::{Path, PathBuf};

/// Heavier per-peer data than the heal e2e: the cold rebuild ships every
/// orphan's entries over the data plane, the warm rejoin replays them from
/// local disk, so the volume is what separates the two recovery times.
fn config() -> NetConfig {
    NetConfig {
        n_peers: 32,
        keys_per_peer: 100,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 12,
        ..NetConfig::default()
    }
}

fn short_timeline() -> Timeline {
    Timeline {
        join_end_min: 3,
        replicate_end_min: 5,
        construct_end_min: 18,
        range_end_min: 0,
        query_end_min: 22,
        end_min: 25,
    }
}

/// One killed-worker run over three workers, journaling into `data_dir`.
/// `warm` enables the relaunch monitor and the coordinator's rejoin grace
/// window; off, the kill heals through the cold reassignment path.
fn run_killed(warm: bool, data_dir: &Path) -> (DeploymentReport, ObsReport) {
    let options = LocalOptions {
        workers: 3,
        worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
        inherit_stderr: true,
        heal: HealConfig {
            heartbeat_ms: 200,
            failure_timeout_ms: 8_000,
            heal: true,
            rejoin_grace_ms: if warm { 30_000 } else { 0 },
            kill: Some(KillPlan {
                worker: 2,
                at_min: 10,
            }),
        },
        data_dir: Some(data_dir.to_path_buf()),
        relaunch: warm,
        ..LocalOptions::default()
    };
    run_local_observed(&config(), &short_timeline(), &options)
        .expect("the killed-worker run must complete")
}

#[test]
fn killed_worker_warm_rejoins_from_its_durable_log() {
    let base = std::env::temp_dir().join(format!("pgrid-warm-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let (_cold_report, cold_observed) = run_killed(false, &base.join("cold"));
    let (report, observed) = run_killed(true, &base.join("warm"));

    // Cold control: healed through reassignment, not a rejoin.
    assert_eq!(
        cold_observed.failures.len(),
        1,
        "{:?}",
        cold_observed.failures
    );
    let cold = &cold_observed.failures[0];
    assert!(cold.healed && !cold.rejoined, "{cold:?}");
    assert_eq!(
        cold.recovered_replica + cold.recovered_local,
        cold.shard_len
    );

    // Warm: the relaunched worker reclaimed its own shard from the log.
    assert_eq!(observed.failures.len(), 1, "{:?}", observed.failures);
    let failure = &observed.failures[0];
    assert_eq!(failure.worker, 2);
    assert!(failure.healed, "not healed: {failure:?}");
    assert!(
        failure.rejoined,
        "healed cold instead of rejoining: {failure:?}"
    );
    assert_eq!(
        failure.recovered_warm, failure.shard_len,
        "the log did not cover the whole shard: {failure:?}"
    );
    assert_eq!(
        failure.recovered_replica + failure.recovered_local,
        0,
        "a rejoin must not also reassign: {failure:?}"
    );

    // Replaying a local log beats rebuilding the shard from replicas.
    // The cold healing round is bimodal: when a `ReplicaPull` races the
    // re-broadcast `AddressBook` it pays the multi-second retry tick,
    // otherwise it finishes in milliseconds — so a strict comparison
    // against a lucky cold round would be a coin flip.  The warm round is
    // handshake plus an in-memory replay and can never hit that race
    // (diff reconciliation completes after `RecoveryDone`), so it must
    // either beat the cold round outright or stay under an absolute bound
    // far below cold's race path.
    assert!(
        failure.recovery_ms < cold.recovery_ms || failure.recovery_ms < 1_000,
        "warm recovery ({}ms) neither faster than cold ({}ms) nor sub-second",
        failure.recovery_ms,
        cold.recovery_ms
    );

    // The relaunched worker actually wrote segments before dying.
    let killed_dir = base.join("warm").join("worker-2");
    let segments = std::fs::read_dir(&killed_dir)
        .expect("killed worker's data dir must exist")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .count();
    assert!(segments >= 1, "no segments under {killed_dir:?}");

    // The rejoined run converges inside the reference envelope.
    assert_eq!(report.timeline.len() as u64, short_timeline().end_min + 1);
    assert!(
        report.balance_deviation < 1.5,
        "balance deviation {} after warm rejoin",
        report.balance_deviation
    );
    assert!(
        report.query_success_rate > 0.7,
        "query success rate {} after warm rejoin",
        report.query_success_rate
    );
    assert_eq!(report.transport.per_peer.len(), config().n_peers);

    let _ = std::fs::remove_dir_all(&base);
}
