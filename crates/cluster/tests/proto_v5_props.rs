//! Property tests for the proto v5 control codec: the membership,
//! reassignment and recovery messages added for self-healing must survive
//! encode → decode bit-exactly, and truncated or version-flipped frames
//! must be rejected without panics.

use bytes::Bytes;
use pgrid_cluster::proto::{ClusterMsg, ReassignMove};
use pgrid_core::path::Path;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

fn arbitrary_path(rng: &mut StdRng) -> Path {
    let len = rng.gen_range(0..=12);
    let mut path = Path::root();
    for _ in 0..len {
        path = path.child(rng.gen_bool(0.5));
    }
    path
}

fn arbitrary_addr(rng: &mut StdRng) -> SocketAddr {
    let ip = if rng.gen_bool(0.5) {
        let mut segments = [0u16; 8];
        for segment in &mut segments {
            *segment = rng.gen();
        }
        IpAddr::V6(Ipv6Addr::from(segments))
    } else {
        let mut octets = [0u8; 4];
        for octet in &mut octets {
            *octet = rng.gen();
        }
        IpAddr::V4(Ipv4Addr::from(octets))
    };
    SocketAddr::new(ip, rng.gen())
}

fn arbitrary_move(rng: &mut StdRng) -> ReassignMove {
    ReassignMove {
        peer: rng.gen(),
        to_worker: rng.gen(),
        source_peer: rng.gen(),
        path: arbitrary_path(rng),
    }
}

/// One random v5 self-healing message; `variant` cycles so every shape is
/// exercised no matter what the seed draws.
fn arbitrary_v5_message(variant: u8, rng: &mut StdRng) -> ClusterMsg {
    match variant % 6 {
        0 => ClusterMsg::Heartbeat { epoch: rng.gen() },
        1 => ClusterMsg::ShardPaths {
            shard_start: rng.gen(),
            paths: (0..rng.gen_range(0..32))
                .map(|_| arbitrary_path(rng))
                .collect(),
        },
        2 => ClusterMsg::WorkerFailed {
            epoch: rng.gen(),
            worker_index: rng.gen(),
            shard_start: rng.gen(),
            shard_len: rng.gen(),
        },
        3 => ClusterMsg::ShardReassign {
            epoch: rng.gen(),
            moves: (0..rng.gen_range(0..16))
                .map(|_| arbitrary_move(rng))
                .collect(),
        },
        4 => ClusterMsg::RecoveryAddrs {
            epoch: rng.gen(),
            peer_addrs: (0..rng.gen_range(0..16))
                .map(|_| (rng.gen(), arbitrary_addr(rng)))
                .collect(),
        },
        _ => ClusterMsg::RecoveryDone {
            epoch: rng.gen(),
            recovered: (0..rng.gen_range(0..32))
                .map(|_| (rng.gen(), rng.gen_bool(0.5)))
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn v5_messages_roundtrip(seed in any::<u64>(), variant in 0u8..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arbitrary_v5_message(variant, &mut rng);
        let decoded = ClusterMsg::decode(msg.encode());
        prop_assert_eq!(decoded.as_ref(), Some(&msg));
    }

    #[test]
    fn truncated_v5_frames_never_panic(
        seed in any::<u64>(),
        variant in 0u8..6,
        cut in 0usize..4096,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arbitrary_v5_message(variant, &mut rng);
        let encoded = msg.encode();
        // Truncation anywhere strictly inside the frame must fail cleanly:
        // every strict prefix is missing at least its trailing field.
        let cut = cut % encoded.len();
        let prefix = Bytes::from(&encoded.as_slice()[..cut]);
        prop_assert!(ClusterMsg::decode(prefix).is_none());
    }

    #[test]
    fn flipped_version_is_rejected(
        seed in any::<u64>(),
        variant in 0u8..6,
        version in 0u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arbitrary_v5_message(variant, &mut rng);
        let mut bytes = msg.encode().as_slice().to_vec();
        // Byte 2 is the version (after the u16 magic); any other value
        // must be rejected up front.
        if version == bytes[2] {
            return Ok(());
        }
        bytes[2] = version;
        prop_assert!(ClusterMsg::decode(Bytes::from(bytes)).is_none());
    }
}
