//! Self-healing end-to-end: a worker process dies mid-construction and the
//! cluster survives.
//!
//! Three real worker processes host the deployment; one of them kills its
//! own process (fault injection scheduled through the coordinator's
//! `Welcome`) halfway through the construction phase.  The coordinator must
//! detect the death, reassign the orphaned shard onto the two survivors,
//! and the survivors must take over the endpoints and rebuild the lost
//! peers' state from live P-Grid replicas — the paper's own replication
//! doubling as the recovery mechanism.  The merged report still has to
//! satisfy the reference balance envelope.
//!
//! A second test exercises the degraded path: with healing disabled the
//! same death must *not* abort the run — the coordinator records the
//! failure, dumps the flight recorder, and assembles a partial report from
//! the survivor.

use pgrid_cluster::coordinator::{HealConfig, KillPlan};
use pgrid_cluster::local::{run_local_observed, LocalOptions};
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::NetConfig;
use pgrid_workload::distributions::Distribution;
use std::path::PathBuf;

fn config() -> NetConfig {
    NetConfig {
        n_peers: 32,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed: 12,
        ..NetConfig::default()
    }
}

/// The compressed smoke timeline also used by `pgrid-cluster local --smoke`.
fn short_timeline() -> Timeline {
    Timeline {
        join_end_min: 3,
        replicate_end_min: 5,
        construct_end_min: 18,
        range_end_min: 0,
        query_end_min: 22,
        end_min: 25,
    }
}

fn local_options(workers: usize, heal: HealConfig) -> LocalOptions {
    LocalOptions {
        workers,
        worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_pgrid-cluster"))),
        inherit_stderr: true,
        heal,
        ..LocalOptions::default()
    }
}

#[test]
fn killed_worker_is_healed_and_the_run_converges() {
    let config = config();
    let timeline = short_timeline();
    // Kill the last worker at virtual minute 10 — mid-construction, between
    // the replicate barrier (5) and the construct barrier (18).
    let heal = HealConfig {
        heartbeat_ms: 200,
        failure_timeout_ms: 8_000,
        heal: true,
        rejoin_grace_ms: 0,
        kill: Some(KillPlan {
            worker: 2,
            at_min: 10,
        }),
    };
    let (report, observed) = run_local_observed(&config, &timeline, &local_options(3, heal))
        .expect("the healed cluster run must complete");

    // Exactly one failure, attributed to the killed worker, and healed.
    assert_eq!(observed.failures.len(), 1, "{:?}", observed.failures);
    let failure = &observed.failures[0];
    assert_eq!(failure.worker, 2);
    assert!(failure.healed, "the shard was not reassigned: {failure:?}");

    // Every orphaned peer was rebuilt on a survivor, and the paper's
    // replication actually drove the recovery: with a mean replication
    // factor well above 1, live replicas must exist for at least part of
    // the dead shard (the seeded local fallback is for the remainder).
    assert_eq!(
        failure.recovered_replica + failure.recovered_local,
        failure.shard_len,
        "recovered-peer coverage: {failure:?}"
    );
    assert!(
        failure.recovered_replica >= 1,
        "no peer recovered from a replica despite mean replication {:.2}: {failure:?}",
        report.mean_replication
    );
    assert!(report.mean_replication >= 1.0);

    // The run converged inside the reference envelope regardless of the
    // mid-run death.
    assert_eq!(report.timeline.len() as u64, timeline.end_min + 1);
    assert!(
        report.balance_deviation < 1.5,
        "balance deviation {} after healing",
        report.balance_deviation
    );
    assert!(
        report.mean_path_length >= 1.5,
        "mean path length {:.2}: the shards never mixed",
        report.mean_path_length
    );
    // The healing window may cost some in-flight lookups, but the healed
    // overlay must answer the query phase.
    assert!(
        report.query_success_rate > 0.7,
        "query success rate {} after healing",
        report.query_success_rate
    );
    // Every peer — including the adopted ones — reports link stats.
    assert_eq!(report.transport.per_peer.len(), config.n_peers);
}

#[test]
fn heal_disabled_still_produces_a_partial_report() {
    let config = config();
    let timeline = short_timeline();
    let dump = std::env::temp_dir().join(format!(
        "pgrid-heal-off-flight-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&dump);
    let heal = HealConfig {
        heartbeat_ms: 200,
        failure_timeout_ms: 8_000,
        heal: false,
        rejoin_grace_ms: 0,
        kill: Some(KillPlan {
            worker: 1,
            at_min: 10,
        }),
    };
    let mut options = local_options(2, heal);
    options.obs.flight_dump = Some(dump.clone());
    let (report, observed) = run_local_observed(&config, &timeline, &options)
        .expect("a worker crash with healing disabled must degrade, not abort");

    // The failure was recorded but not healed, and the flight recorder
    // dumped the control-plane history at detection time.
    assert_eq!(observed.failures.len(), 1, "{:?}", observed.failures);
    let failure = &observed.failures[0];
    assert_eq!(failure.worker, 1);
    assert!(!failure.healed);
    assert_eq!(failure.recovered_replica + failure.recovered_local, 0);
    let dumped = std::fs::read_to_string(&dump).expect("flight dump must exist");
    assert!(
        dumped.contains("worker_failed"),
        "flight dump does not mention the failure: {dumped}"
    );
    let _ = std::fs::remove_file(&dump);

    // The partial report still covers the whole timeline, with the
    // survivor's shard intact: structured degradation, not a panic.
    assert_eq!(report.timeline.len() as u64, timeline.end_min + 1);
    assert!(report.total_maintenance_bytes > 0);
    assert!(
        report.query_success_rate > 0.0,
        "the survivor answered no queries at all"
    );
}
