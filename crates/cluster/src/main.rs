//! `pgrid-cluster` — run the Section-5 deployment across real OS processes.
//!
//! ```text
//! pgrid-cluster local --workers 2 [--peers 48] [--seed 7] [--smoke]
//! pgrid-cluster coordinator --listen 127.0.0.1:7071 --workers 2 [--peers 48]
//! pgrid-cluster worker --connect 127.0.0.1:7071
//! ```
//!
//! `local` spawns the workers itself (child processes of this binary) and
//! is what CI exercises; `coordinator`/`worker` are the same roles started
//! by hand, e.g. on separate machines.  On success the coordinator prints
//! the merged per-minute series tail and the Section 5.2 summary.
//!
//! Observability flags (all optional):
//!
//! * `--metrics-addr ADDR` — serve a live `/metrics` + `/trace` HTTP
//!   endpoint (coordinator: the merged cluster view; worker: its own
//!   registry, refreshed at every phase barrier);
//! * `--trace` / `--trace-out PATH` — enable per-query structured tracing
//!   across all worker processes; `--trace-out` also writes the
//!   reassembled hop chains as JSONL on exit (and implies `--trace`);
//! * `--flight-dump PATH` — dump the flight recorder's ring as JSONL on
//!   panic, query timeout, or coordinator-observed worker failure;
//! * `--worker-metrics` (local mode) — spawn every worker with an
//!   ephemeral `--metrics-addr` of its own;
//! * `--metrics-out PATH` — write the merged Prometheus text dump, now
//!   re-flushed at every phase barrier rather than only at exit.
//!
//! Progress and error reporting goes through the `pgrid-obs` leveled
//! logger (filter with `PGRID_LOG`, e.g. `PGRID_LOG=debug`); the report
//! tables on stdout are program output and stay `println!`.

use pgrid_cluster::coordinator::{
    run_coordinator_observed, ClusterConfig, HealConfig, KillPlan, ObsOptions, ObsReport,
};
use pgrid_cluster::local::{run_local_observed, LocalOptions};
use pgrid_cluster::worker::{run_worker, TransportChoice, WorkerOptions};
use pgrid_net::experiment::{DeploymentReport, Timeline};
use pgrid_net::runtime::NetConfig;
use pgrid_obs::scrape::{ScrapeServer, ScrapeState};
use pgrid_workload::distributions::Distribution;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pgrid-cluster local --workers N [--peers N] [--seed S] [--n-min N] [--smoke] [--data-dir DIR] [--relaunch] [--transport tcp|reactor] [--event-threads N] [HEAL] [OBS]\n\
         \x20      pgrid-cluster coordinator --listen ADDR --workers N [--peers N] [--seed S] [--n-min N] [--smoke] [HEAL] [OBS]\n\
         \x20      pgrid-cluster worker --connect ADDR [--metrics-addr ADDR] [--flight-dump PATH] [--data-dir DIR] [--transport tcp|reactor] [--event-threads N]\n\
         \x20      HEAL: [--heartbeat-ms MS] [--failure-timeout-ms MS] [--no-heal]\n\
         \x20            [--rejoin-grace-ms MS] [--kill-worker INDEX [--kill-at-min MIN]]\n\
         \x20      OBS: [--metrics-out PATH] [--metrics-addr ADDR] [--trace] [--trace-out PATH]\n\
         \x20           [--flight-dump PATH] [--worker-metrics (local only)]"
    );
    ExitCode::from(2)
}

fn option(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|at| args.get(at + 1))
        .cloned()
}

/// The `--transport` / `--event-threads` pair shared by `local` and
/// `worker`.
fn transport_config(args: &[String]) -> (TransportChoice, usize) {
    let choice = option(args, "--transport")
        .map(|v| v.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or_default();
    let threads = option(args, "--event-threads")
        .map(|v| v.parse().expect("--event-threads takes an integer"))
        .unwrap_or(0);
    (choice, threads)
}

/// The run configuration of the coordinator-side subcommands.
fn run_config(args: &[String]) -> (NetConfig, Timeline) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let timeline = if smoke {
        Timeline {
            join_end_min: 3,
            replicate_end_min: 5,
            construct_end_min: 18,
            range_end_min: 0,
            query_end_min: 22,
            end_min: 25,
        }
    } else {
        Timeline::default()
    };
    let n_peers = option(args, "--peers")
        .map(|v| v.parse().expect("--peers takes an integer"))
        .unwrap_or(if smoke { 32 } else { 64 });
    let seed = option(args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(12);
    let n_min = option(args, "--n-min")
        .map(|v| v.parse().expect("--n-min takes an integer"))
        .unwrap_or(5);
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min,
        distribution: Distribution::Uniform,
        seed,
        ..NetConfig::default()
    };
    (config, timeline)
}

/// Failure-detection, healing and fault-injection flags of the
/// coordinator-side subcommands.
fn heal_config(args: &[String]) -> HealConfig {
    let mut heal = HealConfig::default();
    if let Some(v) = option(args, "--heartbeat-ms") {
        heal.heartbeat_ms = v.parse().expect("--heartbeat-ms takes milliseconds");
    }
    if let Some(v) = option(args, "--failure-timeout-ms") {
        heal.failure_timeout_ms = v.parse().expect("--failure-timeout-ms takes milliseconds");
    }
    if args.iter().any(|a| a == "--no-heal") {
        heal.heal = false;
    }
    if let Some(v) = option(args, "--rejoin-grace-ms") {
        heal.rejoin_grace_ms = v.parse().expect("--rejoin-grace-ms takes milliseconds");
    }
    if let Some(v) = option(args, "--kill-worker") {
        heal.kill = Some(KillPlan {
            worker: v.parse().expect("--kill-worker takes a worker index"),
            at_min: option(args, "--kill-at-min")
                .map(|v| v.parse().expect("--kill-at-min takes a minute"))
                .unwrap_or(10),
        });
    }
    heal
}

/// Coordinator-side observability options from the command line.  Binds
/// the scrape server here (before the blocking run starts) so the
/// endpoint is live for the whole deployment; the server handle rides
/// along to keep it alive.
fn obs_config(args: &[String]) -> std::io::Result<(ObsOptions, Option<ScrapeServer>)> {
    let trace_out = option(args, "--trace-out").map(PathBuf::from);
    let mut obs = ObsOptions {
        tracing: args.iter().any(|a| a == "--trace") || trace_out.is_some(),
        scrape: None,
        trace_out,
        flight_dump: option(args, "--flight-dump").map(PathBuf::from),
        metrics_out: option(args, "--metrics-out").map(PathBuf::from),
    };
    let mut server = None;
    if let Some(addr) = option(args, "--metrics-addr") {
        let state = Arc::new(ScrapeState::default());
        let bound = ScrapeServer::serve(
            addr.parse()
                .map_err(|e| std::io::Error::other(format!("bad --metrics-addr {addr}: {e}")))?,
            Arc::clone(&state),
        )?;
        pgrid_obs::info!(
            "cluster::main",
            "coordinator /metrics endpoint on http://{}",
            bound.addr()
        );
        obs.scrape = Some(state);
        server = Some(bound);
    }
    Ok((obs, server))
}

fn print_failures(observed: &ObsReport) {
    for f in &observed.failures {
        println!(
            "  worker {} failure: shard {}+{} detected after {}ms, {}",
            f.worker,
            f.shard_start,
            f.shard_len,
            f.detected_after_ms,
            if f.rejoined {
                format!(
                    "warm-rejoined in {}ms ({} peers replayed from the durable log)",
                    f.recovery_ms, f.recovered_warm
                )
            } else if f.healed {
                format!(
                    "healed in {}ms ({} peers from replicas, {} locally)",
                    f.recovery_ms, f.recovered_replica, f.recovered_local
                )
            } else {
                "not healed (partial report)".to_string()
            }
        );
    }
}

fn print_report(report: &DeploymentReport, workers: usize) {
    println!("\nmerged per-minute series (tail):");
    println!(
        "{:>7} {:>7} {:>12} {:>12} {:>11}",
        "minute", "peers", "maint B/s", "query B/s", "lat mean s"
    );
    for sample in report.timeline.iter().rev().take(8).rev() {
        println!(
            "{:>7} {:>7} {:>12.1} {:>12.1} {:>11.3}",
            sample.minute,
            sample.peers_online,
            sample.maintenance_bps,
            sample.query_bps,
            sample.query_latency_mean_s
        );
    }
    println!("\ncluster summary ({workers} worker processes):");
    println!("  balance_deviation  = {:.3}", report.balance_deviation);
    println!("  mean_path_length   = {:.2}", report.mean_path_length);
    println!("  mean_query_hops    = {:.2}", report.mean_query_hops);
    println!("  query_success_rate = {:.3}", report.query_success_rate);
    println!("  mean_replication   = {:.2}", report.mean_replication);
    println!(
        "  frames sent/delivered = {}/{}  ({} bytes on the wire)",
        report.transport.frames_sent,
        report.transport.frames_delivered,
        report.transport.bytes_sent
    );
    if let Some(reactor) = &report.transport.reactor {
        println!(
            "  reactor: {} peers on {} fds, {} epoll wakeups ({:.4}/frame), \
             {} partial writes, {} reconnects, {} dropped",
            reactor.registered_peers,
            reactor.registered_fds,
            reactor.epoll_wakeups,
            reactor.epoll_wakeups as f64 / report.transport.frames_delivered.max(1) as f64,
            reactor.partial_writes,
            reactor.reconnects,
            reactor.dropped_frames
        );
    }
    if report.transport.frames_compressed > 0 {
        println!(
            "  compression: {} frames, {} -> {} bytes",
            report.transport.frames_compressed,
            report.transport.compressed_bytes_raw,
            report.transport.compressed_bytes_wire
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else {
        return usage();
    };
    match mode {
        "local" => {
            let workers = option(&args, "--workers")
                .map(|v| v.parse().expect("--workers takes an integer"))
                .unwrap_or(2);
            let (config, timeline) = run_config(&args);
            let (obs, _scrape_server) = match obs_config(&args) {
                Ok(pair) => pair,
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "{e}");
                    return ExitCode::FAILURE;
                }
            };
            pgrid_obs::info!(
                "cluster::main",
                "local cluster: {workers} worker processes hosting {} peers (seed {})",
                config.n_peers,
                config.seed
            );
            let (transport, n_event_threads) = transport_config(&args);
            let options = LocalOptions {
                workers,
                worker_exe: None,
                inherit_stderr: true,
                obs,
                worker_metrics: args.iter().any(|a| a == "--worker-metrics"),
                worker_flight_dir: None,
                heal: heal_config(&args),
                data_dir: option(&args, "--data-dir").map(PathBuf::from),
                relaunch: args.iter().any(|a| a == "--relaunch"),
                transport,
                n_event_threads,
            };
            match run_local_observed(&config, &timeline, &options) {
                Ok((report, observed)) => {
                    print_report(&report, workers);
                    print_failures(&observed);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "local cluster failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "coordinator" => {
            let Some(listen) = option(&args, "--listen") else {
                return usage();
            };
            let workers = option(&args, "--workers")
                .map(|v| v.parse().expect("--workers takes an integer"))
                .unwrap_or(2);
            let (config, timeline) = run_config(&args);
            let (obs, _scrape_server) = match obs_config(&args) {
                Ok(pair) => pair,
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "{e}");
                    return ExitCode::FAILURE;
                }
            };
            let listener = match TcpListener::bind(&listen) {
                Ok(l) => l,
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "cannot listen on {listen}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            pgrid_obs::info!(
                "cluster::main",
                "coordinator on {listen}: waiting for {workers} workers ({} peers, seed {})",
                config.n_peers,
                config.seed
            );
            let cluster = ClusterConfig {
                n_workers: workers,
                net: config,
                timeline,
                heal: heal_config(&args),
            };
            match run_coordinator_observed(listener, &cluster, &obs) {
                Ok((report, observed)) => {
                    print_report(&report, workers);
                    print_failures(&observed);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "coordinator failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "worker" => {
            let Some(connect) = option(&args, "--connect") else {
                return usage();
            };
            let addr = match connect.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "bad --connect address {connect}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let (transport, n_event_threads) = transport_config(&args);
            let options = WorkerOptions {
                metrics_addr: option(&args, "--metrics-addr").map(|a| {
                    a.parse()
                        .expect("--metrics-addr takes a socket address like 127.0.0.1:0")
                }),
                flight_dump: option(&args, "--flight-dump").map(PathBuf::from),
                data_dir: option(&args, "--data-dir").map(PathBuf::from),
                transport,
                n_event_threads,
            };
            match run_worker(addr, &options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    pgrid_obs::error!("cluster::main", "worker failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
