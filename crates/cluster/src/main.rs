//! `pgrid-cluster` — run the Section-5 deployment across real OS processes.
//!
//! ```text
//! pgrid-cluster local --workers 2 [--peers 48] [--seed 7] [--smoke]
//! pgrid-cluster coordinator --listen 127.0.0.1:7071 --workers 2 [--peers 48]
//! pgrid-cluster worker --connect 127.0.0.1:7071
//! ```
//!
//! `local` spawns the workers itself (child processes of this binary) and
//! is what CI exercises; `coordinator`/`worker` are the same roles started
//! by hand, e.g. on separate machines.  On success the coordinator prints
//! the merged per-minute series tail and the Section 5.2 summary.

use pgrid_cluster::coordinator::{run_coordinator, ClusterConfig};
use pgrid_cluster::local::{run_local, LocalOptions};
use pgrid_cluster::worker::run_worker;
use pgrid_net::experiment::{DeploymentReport, Timeline};
use pgrid_net::runtime::NetConfig;
use pgrid_workload::distributions::Distribution;
use std::net::TcpListener;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pgrid-cluster local --workers N [--peers N] [--seed S] [--smoke] [--metrics-out PATH]\n\
         \x20      pgrid-cluster coordinator --listen ADDR --workers N [--peers N] [--seed S] [--smoke] [--metrics-out PATH]\n\
         \x20      pgrid-cluster worker --connect ADDR"
    );
    ExitCode::from(2)
}

fn option(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|at| args.get(at + 1))
        .cloned()
}

/// The run configuration of the coordinator-side subcommands.
fn run_config(args: &[String]) -> (NetConfig, Timeline) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let timeline = if smoke {
        Timeline {
            join_end_min: 3,
            replicate_end_min: 5,
            construct_end_min: 18,
            range_end_min: 0,
            query_end_min: 22,
            end_min: 25,
        }
    } else {
        Timeline::default()
    };
    let n_peers = option(args, "--peers")
        .map(|v| v.parse().expect("--peers takes an integer"))
        .unwrap_or(if smoke { 32 } else { 64 });
    let seed = option(args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(12);
    let config = NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed,
        ..NetConfig::default()
    };
    (config, timeline)
}

/// Writes the merged report's Prometheus text dump when `--metrics-out`
/// was given.
fn write_metrics(args: &[String], report: &DeploymentReport) -> bool {
    let Some(path) = option(args, "--metrics-out") else {
        return true;
    };
    match std::fs::write(&path, report.metrics_text()) {
        Ok(()) => {
            println!("metrics written to {path}");
            true
        }
        Err(e) => {
            eprintln!("cannot write metrics to {path}: {e}");
            false
        }
    }
}

fn print_report(report: &DeploymentReport, workers: usize) {
    println!("\nmerged per-minute series (tail):");
    println!(
        "{:>7} {:>7} {:>12} {:>12} {:>11}",
        "minute", "peers", "maint B/s", "query B/s", "lat mean s"
    );
    for sample in report.timeline.iter().rev().take(8).rev() {
        println!(
            "{:>7} {:>7} {:>12.1} {:>12.1} {:>11.3}",
            sample.minute,
            sample.peers_online,
            sample.maintenance_bps,
            sample.query_bps,
            sample.query_latency_mean_s
        );
    }
    println!("\ncluster summary ({workers} worker processes):");
    println!("  balance_deviation  = {:.3}", report.balance_deviation);
    println!("  mean_path_length   = {:.2}", report.mean_path_length);
    println!("  mean_query_hops    = {:.2}", report.mean_query_hops);
    println!("  query_success_rate = {:.3}", report.query_success_rate);
    println!("  mean_replication   = {:.2}", report.mean_replication);
    println!(
        "  frames sent/delivered = {}/{}  ({} bytes on the wire)",
        report.transport.frames_sent,
        report.transport.frames_delivered,
        report.transport.bytes_sent
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else {
        return usage();
    };
    match mode {
        "local" => {
            let workers = option(&args, "--workers")
                .map(|v| v.parse().expect("--workers takes an integer"))
                .unwrap_or(2);
            let (config, timeline) = run_config(&args);
            println!(
                "local cluster: {workers} worker processes hosting {} peers (seed {})",
                config.n_peers, config.seed
            );
            let options = LocalOptions {
                workers,
                worker_exe: None,
                inherit_stderr: true,
            };
            match run_local(&config, &timeline, &options) {
                Ok(report) => {
                    print_report(&report, workers);
                    if write_metrics(&args, &report) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("local cluster failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "coordinator" => {
            let Some(listen) = option(&args, "--listen") else {
                return usage();
            };
            let workers = option(&args, "--workers")
                .map(|v| v.parse().expect("--workers takes an integer"))
                .unwrap_or(2);
            let (config, timeline) = run_config(&args);
            let listener = match TcpListener::bind(&listen) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot listen on {listen}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "coordinator on {listen}: waiting for {workers} workers ({} peers, seed {})",
                config.n_peers, config.seed
            );
            let cluster = ClusterConfig {
                n_workers: workers,
                net: config,
                timeline,
            };
            match run_coordinator(listener, &cluster) {
                Ok(report) => {
                    print_report(&report, workers);
                    if write_metrics(&args, &report) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("coordinator failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "worker" => {
            let Some(connect) = option(&args, "--connect") else {
                return usage();
            };
            let addr = match connect.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("bad --connect address {connect}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_worker(addr) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("worker failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
