//! # pgrid-cluster
//!
//! Multi-process deployment runtime of the P-Grid reproduction.
//!
//! The paper's Section-5 deployment runs peers that only interact through
//! messages; `pgrid-net` reproduces that inside one process, and this crate
//! stretches the very same protocol code across real OS processes:
//!
//! * a **coordinator** ([`coordinator`]) accepts worker connections on one
//!   socket, assigns each a contiguous shard of the peer population, relays
//!   the merged address book, releases the phase barriers, and folds the
//!   workers' streamed samples and final shard reports into one
//!   [`pgrid_net::experiment::DeploymentReport`];
//! * a **worker** ([`worker`]) hosts its shard on a
//!   [`pgrid_transport::tcp::TcpTransport`] (one listener per hosted peer),
//!   wires every foreign peer as a transport remote, and drives the
//!   join → replicate → construct → query → churn timeline over the shard;
//! * the **rendezvous protocol** ([`proto`]) is a tiny framed control
//!   protocol (`Welcome`/`Hello`/`AddressBook`/`PhaseDone`/`Proceed`/
//!   `Minutes`/`Report`) reusing the data plane's length-prefixed framing;
//! * deterministic **plans** ([`plan`]) derive the global knowledge every
//!   process must agree on (join ramp, bootstrap adjacency, churn schedule)
//!   from the shared seed instead of shipping it;
//! * **local mode** ([`local`]) self-spawns N worker child processes for
//!   tests, CI and quick demos (`pgrid-cluster local --workers 2`);
//! * **self-healing** (proto v5): workers heartbeat on the control channel,
//!   the coordinator detects unplanned worker death (EOF or heartbeat
//!   silence), reassigns the orphaned shard onto the survivors, and the
//!   adopters rebuild the lost peers' state from live P-Grid replicas —
//!   the paper's own replication doubling as the recovery mechanism.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coordinator;
pub mod local;
pub mod plan;
pub mod proto;
pub mod worker;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::coordinator::{
        run_coordinator, run_coordinator_observed, ClusterConfig, HealConfig, KillPlan, ObsOptions,
        ObsReport, WorkerFailure,
    };
    pub use crate::local::{run_local, run_local_observed, LocalOptions};
    pub use crate::plan::{churn_plan, join_plan, shard_assignment};
    pub use crate::proto::{ClusterMsg, ControlChannel, ReassignMove, ShardReport};
    pub use crate::worker::{
        run_worker, worker_scenario, ShardOverlay, TransportChoice, WorkerOptions,
    };
}
