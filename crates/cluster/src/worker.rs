//! The worker runtime: hosts one shard of peers across a real process
//! boundary.
//!
//! A worker connects to the coordinator, receives its shard assignment and
//! the run configuration, registers a TCP endpoint for every hosted peer,
//! publishes the listen addresses, wires every *other* peer as a remote
//! via [`TcpTransport::register_remote`], and then drives the Section-5
//! timeline over its shard **through the scenario executor**: the phases
//! are the same [`pgrid_scenario::Scenario`] program the single-process
//! driver runs, with the deterministic join/churn plans substituted for
//! the random draws ([`Phase::JoinSchedule`] / [`Phase::ChurnSchedule`])
//! and the query rate scaled to the shard.  Two distribution-imposed
//! behaviours live in the glue:
//!
//! * **Pacing.**  [`ShardOverlay`] implements
//!   [`pgrid_scenario::Overlay::advance_to`] as short virtual slices with
//!   a real-time settle after each one, so exchange replies crossing the
//!   wire from other processes are handled within roughly one construct
//!   interval of the tick that triggered them.
//! * **Barriers.**  [`BarrierHooks`] reports `PhaseDone` after each
//!   boundary phase and parks until the coordinator releases the barrier —
//!   while continuing to service the data transport, so peers of slower
//!   shards still get their exchanges answered.
//!
//! [`Phase::JoinSchedule`]: pgrid_scenario::Phase::JoinSchedule
//! [`Phase::ChurnSchedule`]: pgrid_scenario::Phase::ChurnSchedule

use crate::plan::{churn_plan, join_plan, MINUTE_MS};
use crate::proto::{
    ClusterMsg, ControlChannel, ShardReport, PHASE_CONSTRUCTED, PHASE_DONE, PHASE_JOINED,
    PHASE_QUERIED, PHASE_REPLICATED, PHASE_WIRED,
};
use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_core::routing::PeerId;
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::{Millis, NetConfig, Runtime};
use pgrid_obs::recorder::{install_panic_dump, shared, SharedRecorder};
use pgrid_obs::registry::MetricsRegistry;
use pgrid_obs::scrape::{ScrapeServer, ScrapeState};
use pgrid_scenario::scenario::CONTROL_SEED_SALT;
use pgrid_scenario::{Overlay, OverlaySnapshot, Phase, QuerySpec, Scenario, ScenarioHooks};
use pgrid_transport::tcp::TcpTransport;
use pgrid_transport::{PeerAddr, Transport};
use std::collections::BTreeSet;
use std::io::{Error, ErrorKind, Result};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker waits for handshake messages.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(60);

/// Virtual-time slice between wire settles.
const PACE_SLICE_MS: Millis = 2_000;

/// Real time the worker lets the wire settle after each virtual slice.
const SETTLE: Duration = Duration::from_micros(700);

/// Maximum real time a worker parks at one barrier before giving up.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(600);

fn protocol_error(what: &str, got: &ClusterMsg) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("expected {what}, got {got:?}"),
    )
}

/// Largest trace batch shipped in one control frame; bigger drains are
/// split.
const TRACE_BATCH_MAX: usize = 4_096;

/// Observability options of one worker process.
#[derive(Clone, Debug, Default)]
pub struct WorkerOptions {
    /// Bind address of the worker's `/metrics`+`/trace` scrape endpoint
    /// (port 0 picks a free port; the bound address is announced to the
    /// coordinator in `Hello`).
    pub metrics_addr: Option<SocketAddr>,
    /// Where the flight recorder dumps on a panic or a query/range
    /// timeout.
    pub flight_dump: Option<PathBuf>,
}

/// Observability state threaded through the worker's barriers.
struct WorkerObs {
    /// The local scrape endpoint, when serving.
    scrape: Option<(ScrapeServer, Arc<ScrapeState>)>,
    /// Control-plane flight notes (rendezvous, barriers) shared with the
    /// panic hook.
    control: SharedRecorder,
    worker_index: u32,
    shard_start: u64,
    shard_len: u64,
}

impl WorkerObs {
    /// Renders the worker's current metrics registry: the runtime's
    /// network counters, the transport link stats, and the shard
    /// assignment.
    fn registry(&self, runtime: &Runtime<TcpTransport>) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        runtime.metrics.to_registry(&mut registry);
        runtime.transport_stats().to_registry(&mut registry);
        registry.gauge(
            "pgrid_cluster_shard_start",
            "First peer id hosted by this worker.",
            &[],
            self.shard_start as f64,
        );
        registry.gauge(
            "pgrid_cluster_shard_len",
            "Number of peers hosted by this worker.",
            &[],
            self.shard_len as f64,
        );
        registry.gauge(
            "pgrid_cluster_worker_index",
            "Index of this worker in the cluster.",
            &[],
            self.worker_index as f64,
        );
        registry
    }

    /// Publishes the current registry and any freshly drained trace
    /// events locally, and streams both to the coordinator.
    fn publish(
        &mut self,
        ctl: &mut ControlChannel,
        runtime: &mut Runtime<TcpTransport>,
        phase: u8,
    ) -> Result<()> {
        let registry = self.registry(runtime);
        if let Some((_, state)) = &self.scrape {
            state.publish_metrics(registry.encode());
        }
        ctl.send(&ClusterMsg::MetricsSnapshot {
            registry: registry.encode_wire(),
        })?;
        let events = runtime.tracer.drain();
        if !events.is_empty() {
            if let Some((_, state)) = &self.scrape {
                state.publish_trace_events(&events);
            }
            for chunk in events.chunks(TRACE_BATCH_MAX) {
                ctl.send(&ClusterMsg::TraceBatch {
                    events: chunk.to_vec(),
                })?;
            }
        }
        self.control.lock().unwrap().note(
            runtime.now(),
            "barrier",
            format!("phase={phase} worker={}", self.worker_index),
        );
        Ok(())
    }
}

/// The worker's shard wrapped as a scenario overlay: every operation
/// delegates to the sharded [`Runtime`], except that advancing virtual
/// time is paced against the wire (see the module docs).
pub struct ShardOverlay {
    /// The sharded runtime this worker hosts.
    pub runtime: Runtime<TcpTransport>,
}

impl Overlay for ShardOverlay {
    fn n_peers(&self) -> usize {
        Overlay::n_peers(&self.runtime)
    }

    fn now(&self) -> Millis {
        self.runtime.now()
    }

    fn advance_to(&mut self, until: Millis) {
        // Short virtual slices with real-time settles, so cross-process
        // replies interleave with local ticks instead of piling up at the
        // phase boundary.
        while self.runtime.now() < until {
            let next = (self.runtime.now() + PACE_SLICE_MS).min(until);
            self.runtime.run_until(next);
            let deadline = Instant::now() + SETTLE;
            loop {
                if self.runtime.service_network() == 0 {
                    if Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }

    fn join(&mut self, peer: usize, fanout: usize) {
        Overlay::join(&mut self.runtime, peer, fanout)
    }

    fn join_with_neighbours(&mut self, peer: usize, neighbours: Vec<PeerId>) {
        Overlay::join_with_neighbours(&mut self.runtime, peer, neighbours)
    }

    fn schedule_leave(&mut self, peer: usize, at: Millis, downtime: Millis) {
        Overlay::schedule_leave(&mut self.runtime, peer, at, downtime)
    }

    fn begin_replication(&mut self, index: IndexId) {
        Overlay::begin_replication(&mut self.runtime, index)
    }

    fn begin_construction(&mut self, index: IndexId) {
        Overlay::begin_construction(&mut self.runtime, index)
    }

    fn quiescent(&self) -> bool {
        Overlay::quiescent(&self.runtime)
    }

    fn has_index(&self, index: IndexId) -> bool {
        Overlay::has_index(&self.runtime, index)
    }

    fn insert(&mut self, index: IndexId, peer: usize, keys: Vec<Key>) {
        Overlay::insert(&mut self.runtime, index, peer, keys)
    }

    fn issue_query(&mut self, index: IndexId, key: Key) {
        Overlay::issue_query(&mut self.runtime, index, key)
    }

    fn issue_range_query(&mut self, index: IndexId, lo: Key, hi: Key) {
        Overlay::issue_range_query(&mut self.runtime, index, lo, hi)
    }

    fn query_keys(&self, index: IndexId) -> Vec<Key> {
        Overlay::query_keys(&self.runtime, index)
    }

    fn query_timeout_ms(&self) -> Millis {
        Overlay::query_timeout_ms(&self.runtime)
    }

    fn snapshot(&self, label: &str) -> OverlaySnapshot {
        Overlay::snapshot(&self.runtime, label)
    }
}

/// Phase hooks of the worker: after each boundary phase, stream completed
/// bandwidth minutes and park at the coordinator's barrier.
struct BarrierHooks<'a> {
    ctl: &'a mut ControlChannel,
    streamed: &'a mut BTreeSet<u64>,
    obs: &'a mut WorkerObs,
    /// The barrier each phase index parks at, precomputed by
    /// [`barrier_plan`] so a barrier class spanning several phases (range
    /// load followed by lookup load) reports exactly once.
    plan: Vec<Option<u8>>,
}

/// The barrier class of each scenario phase, keeping only the *last* phase
/// of each class: the coordinator releases every barrier exactly once, so
/// back-to-back query-plane phases must park together at their end.
fn barrier_plan(scenario: &Scenario) -> Vec<Option<u8>> {
    let mut plan: Vec<Option<u8>> = scenario
        .phases
        .iter()
        .map(|phase| match phase {
            Phase::JoinSchedule { .. } | Phase::JoinWave { .. } => Some(PHASE_JOINED),
            Phase::Replicate { .. } => Some(PHASE_REPLICATED),
            Phase::RunUntil { .. } | Phase::ConstructUntilQuiescent { .. } => {
                Some(PHASE_CONSTRUCTED)
            }
            Phase::QueryLoad { .. } | Phase::RangeLoad { .. } => Some(PHASE_QUERIED),
            Phase::Drain => Some(PHASE_DONE),
            _ => None,
        })
        .collect();
    let mut seen = BTreeSet::new();
    for slot in plan.iter_mut().rev() {
        if let Some(class) = *slot {
            if !seen.insert(class) {
                *slot = None;
            }
        }
    }
    plan
}

impl ScenarioHooks<ShardOverlay> for BarrierHooks<'_> {
    type Error = Error;

    fn after_phase(
        &mut self,
        overlay: &mut ShardOverlay,
        phase_index: usize,
        _phase: &Phase,
    ) -> Result<()> {
        let Some(barrier_phase) = self.plan.get(phase_index).copied().flatten() else {
            return Ok(());
        };
        barrier(
            self.ctl,
            &mut overlay.runtime,
            barrier_phase,
            self.streamed,
            self.obs,
        )
    }
}

/// Connects to the coordinator at `coordinator` and runs one worker to
/// completion: rendezvous, the full sharded timeline, and the final shard
/// report.
pub fn run_worker(coordinator: SocketAddr, options: &WorkerOptions) -> Result<()> {
    let stream = TcpStream::connect(coordinator)?;
    let mut ctl = ControlChannel::new(stream)?;

    // --- rendezvous: assignment, endpoints, address book -------------------
    let welcome = ctl.recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::Welcome {
        worker_index,
        n_workers: _,
        shard_start,
        shard_len,
        config,
        timeline,
        tracing,
    } = welcome
    else {
        return Err(protocol_error("Welcome", &welcome));
    };
    let shard = shard_start as usize..(shard_start + shard_len) as usize;
    pgrid_obs::info!(
        "cluster::worker",
        "worker {worker_index}: shard {shard_start}+{shard_len}, tracing {}",
        if tracing { "on" } else { "off" }
    );

    let scrape = match options.metrics_addr {
        Some(addr) => {
            let state = ScrapeState::new();
            let server = ScrapeServer::serve(addr, Arc::clone(&state))?;
            pgrid_obs::info!(
                "cluster::worker",
                "worker {worker_index}: serving /metrics on {}",
                server.addr()
            );
            Some((server, state))
        }
        None => None,
    };
    let control = shared(pgrid_obs::recorder::DEFAULT_CAPACITY);
    if let Some(path) = &options.flight_dump {
        install_panic_dump(Arc::clone(&control), path.clone());
    }
    let mut obs = WorkerObs {
        scrape,
        control,
        worker_index,
        shard_start,
        shard_len,
    };

    let mut transport = TcpTransport::new();
    let mut peer_addrs = Vec::with_capacity(shard.len());
    for peer in shard.clone() {
        let addr = transport
            .register(PeerId(peer as u64))
            .map_err(|e| Error::other(e.to_string()))?;
        let PeerAddr::Socket(addr) = addr else {
            unreachable!("the TCP backend returns socket addresses");
        };
        peer_addrs.push((peer as u64, addr));
    }
    ctl.send(&ClusterMsg::Hello {
        shard_start,
        peer_addrs,
        metrics_addr: obs.scrape.as_ref().map(|(server, _)| server.addr()),
    })?;

    let book = ctl.recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::AddressBook { peer_addrs: book } = book else {
        return Err(protocol_error("AddressBook", &book));
    };
    for (peer, addr) in book {
        if !shard.contains(&(peer as usize)) {
            transport
                .register_remote(PeerId(peer), addr)
                .map_err(|e| Error::other(e.to_string()))?;
        }
    }

    let mut runtime = Runtime::with_transport_sharded(config.clone(), transport, shard.clone())
        .map_err(|e| Error::other(e.to_string()))?;
    if tracing {
        // Worker index + 1 as the base keeps every worker's trace IDs in
        // a disjoint, recognisably-tagged space after the merge.
        runtime.enable_tracing_with_base(worker_index as u64 + 1);
    }
    runtime.flight_dump = options.flight_dump.clone();
    let mut overlay = ShardOverlay { runtime };
    let mut streamed_minutes: BTreeSet<u64> = BTreeSet::new();
    barrier(
        &mut ctl,
        &mut overlay.runtime,
        PHASE_WIRED,
        &mut streamed_minutes,
        &mut obs,
    )?;

    // --- the timeline as a scenario ------------------------------------------
    // Same phase program as the single-process Section-5 scenario, with the
    // deterministic plans substituted for the random draws (all workers
    // agree on joins/churn of peers they do not host) and the query rate
    // scaled to the shard; the worker index decorrelates the query streams.
    let scenario = worker_scenario(&config, &timeline, worker_index, shard.len());
    let plan = barrier_plan(&scenario);
    let mut hooks = BarrierHooks {
        ctl: &mut ctl,
        streamed: &mut streamed_minutes,
        obs: &mut obs,
        plan,
    };
    pgrid_scenario::run_with_hooks(&mut overlay, &scenario, &mut hooks)?;

    // --- final report --------------------------------------------------------
    let runtime = &overlay.runtime;
    stream_minutes(&mut ctl, runtime, &mut streamed_minutes, u64::MAX)?;
    ctl.send(&ClusterMsg::Report(ShardReport {
        shard_start,
        paths: shard
            .clone()
            .map(|peer| runtime.nodes[peer].state.path)
            .collect(),
        query_stats: runtime
            .metrics
            .query_stats
            .iter()
            .map(|(&index, stats)| (index, stats.clone()))
            .collect(),
        online_at_end: runtime.hosted_online_count() as u64,
        transport: runtime.transport_stats(),
        messages_delivered: runtime.metrics.messages_delivered as u64,
        messages_lost: runtime.metrics.messages_lost as u64,
    }))?;
    pgrid_obs::info!(
        "cluster::worker",
        "worker {worker_index}: shard report sent, exiting"
    );
    if let Some((server, _)) = obs.scrape.take() {
        server.shutdown();
    }
    Ok(())
}

/// The worker's phase program for one Section-5 timeline.
///
/// Query windows follow the executor's unified pacing semantics: the
/// virtual clock may overshoot a window boundary by up to one inter-query
/// step (exactly as the single-process driver does).  That is safe here
/// because phase boundaries are hard-synchronised at the coordinator
/// barriers anyway, every plan event falls strictly inside its window, and
/// workers' virtual clocks are only loosely coupled between barriers by
/// construction.
pub fn worker_scenario(
    config: &NetConfig,
    timeline: &Timeline,
    worker_index: u32,
    shard_len: usize,
) -> Scenario {
    let mut builder = Scenario::builder(config.seed)
        .raw_control_seed(config.seed ^ CONTROL_SEED_SALT ^ ((worker_index as u64) << 32))
        .join_schedule(timeline.join_end_min, join_plan(config, timeline))
        .replicate(IndexId::PRIMARY, timeline.replicate_end_min)
        .start_construction(IndexId::PRIMARY)
        .run_until(timeline.construct_end_min);
    // The optional range window between construction and the lookup load,
    // with the same bounds-width the single-process driver uses.
    if timeline.range_end_min > timeline.construct_end_min {
        builder = builder.range_load(
            IndexId::PRIMARY,
            timeline.range_end_min,
            shard_len,
            pgrid_scenario::RANGE_LOAD_WIDTH,
        );
    }
    builder
        .query_load_from(IndexId::PRIMARY, timeline.query_end_min, shard_len)
        .churn_schedule(
            timeline.end_min,
            churn_plan(config, timeline),
            Some(QuerySpec {
                index: IndexId::PRIMARY,
                issuers: shard_len,
            }),
        )
        .drain()
        .build()
}

/// Streams every completed, not-yet-reported bandwidth minute below
/// `before` to the coordinator.
fn stream_minutes(
    ctl: &mut ControlChannel,
    runtime: &Runtime<TcpTransport>,
    streamed: &mut BTreeSet<u64>,
    before: u64,
) -> Result<()> {
    let mut samples: Vec<(u64, u64, u64)> = runtime
        .metrics
        .bandwidth_per_minute
        .iter()
        .filter(|(&minute, _)| minute < before && !streamed.contains(&minute))
        .map(|(&minute, bw)| (minute, bw.maintenance_bytes as u64, bw.query_bytes as u64))
        .collect();
    samples.sort_unstable();
    if samples.is_empty() {
        return Ok(());
    }
    for &(minute, _, _) in &samples {
        streamed.insert(minute);
    }
    ctl.send(&ClusterMsg::Minutes { samples })
}

/// Reports the end of `phase` and parks until the coordinator releases the
/// barrier, servicing the data transport the whole time.
fn barrier(
    ctl: &mut ControlChannel,
    runtime: &mut Runtime<TcpTransport>,
    phase: u8,
    streamed: &mut BTreeSet<u64>,
    obs: &mut WorkerObs,
) -> Result<()> {
    // Let stragglers from faster shards drain before declaring the phase
    // over: keep answering until the wire stays quiet for a moment.
    let mut quiet_since = Instant::now();
    let grace_deadline = Instant::now() + Duration::from_millis(400);
    loop {
        if runtime.service_network() > 0 {
            quiet_since = Instant::now();
        } else if quiet_since.elapsed() >= Duration::from_millis(20)
            || Instant::now() >= grace_deadline
        {
            break;
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Buckets below the current minute can no longer grow in this phase.
    stream_minutes(ctl, runtime, streamed, runtime.now() / MINUTE_MS)?;
    // Fresh registry snapshot and drained trace events ride along with
    // every barrier, so the coordinator's merged view stays current.
    obs.publish(ctl, runtime, phase)?;
    pgrid_obs::debug!(
        "cluster::worker",
        "worker {}: phase {phase} done at virtual minute {}",
        obs.worker_index,
        runtime.now() / MINUTE_MS
    );
    ctl.send(&ClusterMsg::PhaseDone { phase })?;
    let deadline = Instant::now() + BARRIER_TIMEOUT;
    loop {
        runtime.service_network();
        match ctl.try_recv()? {
            Some(ClusterMsg::Proceed { phase: p }) if p == phase => return Ok(()),
            Some(other) => return Err(protocol_error("Proceed", &other)),
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!("barrier for phase {phase} never released"),
                    ));
                }
            }
        }
    }
}
