//! The worker runtime: hosts one shard of peers across a real process
//! boundary.
//!
//! A worker connects to the coordinator, receives its shard assignment and
//! the run configuration, registers a TCP endpoint for every hosted peer,
//! publishes the listen addresses, wires every *other* peer as a remote
//! via [`TcpTransport::register_remote`], and then drives the Section-5
//! timeline (join → replicate → construct → query → churn) over its shard —
//! the same phases the single-process `run_deployment` driver executes,
//! with two differences imposed by distribution:
//!
//! * **Pacing.**  Virtual time normally free-runs; here each phase advances
//!   in short virtual slices with a real-time settle after each one, so
//!   exchange replies crossing the wire from other processes are handled
//!   within roughly one construct interval of the tick that triggered them
//!   rather than piling up at the phase boundary.
//! * **Barriers.**  At each phase boundary the worker reports
//!   `PhaseDone` and parks until the coordinator releases the barrier —
//!   but keeps servicing its data transport the whole time, so peers of
//!   slower shards still get their exchanges answered.

use crate::plan::{churn_plan, join_plan, MINUTE_MS};
use crate::proto::{
    ClusterMsg, ControlChannel, ShardReport, PHASE_CONSTRUCTED, PHASE_DONE, PHASE_JOINED,
    PHASE_QUERIED, PHASE_REPLICATED, PHASE_WIRED,
};
use pgrid_core::routing::PeerId;
use pgrid_net::runtime::{Millis, Runtime};
use pgrid_transport::tcp::TcpTransport;
use pgrid_transport::{PeerAddr, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::{Error, ErrorKind, Result};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How long a worker waits for handshake messages.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(60);

/// Virtual-time slice between wire settles.
const PACE_SLICE_MS: Millis = 2_000;

/// Real time the worker lets the wire settle after each virtual slice.
const SETTLE: Duration = Duration::from_micros(700);

/// Maximum real time a worker parks at one barrier before giving up.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(600);

fn protocol_error(what: &str, got: &ClusterMsg) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("expected {what}, got {got:?}"),
    )
}

/// Connects to the coordinator at `coordinator` and runs one worker to
/// completion: rendezvous, the full sharded timeline, and the final shard
/// report.
pub fn run_worker(coordinator: SocketAddr) -> Result<()> {
    let stream = TcpStream::connect(coordinator)?;
    let mut ctl = ControlChannel::new(stream)?;

    // --- rendezvous: assignment, endpoints, address book -------------------
    let welcome = ctl.recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::Welcome {
        worker_index,
        n_workers: _,
        shard_start,
        shard_len,
        config,
        timeline,
    } = welcome
    else {
        return Err(protocol_error("Welcome", &welcome));
    };
    let shard = shard_start as usize..(shard_start + shard_len) as usize;

    let mut transport = TcpTransport::new();
    let mut peer_addrs = Vec::with_capacity(shard.len());
    for peer in shard.clone() {
        let addr = transport
            .register(PeerId(peer as u64))
            .map_err(|e| Error::other(e.to_string()))?;
        let PeerAddr::Socket(addr) = addr else {
            unreachable!("the TCP backend returns socket addresses");
        };
        peer_addrs.push((peer as u64, addr));
    }
    ctl.send(&ClusterMsg::Hello {
        shard_start,
        peer_addrs,
    })?;

    let book = ctl.recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::AddressBook { peer_addrs: book } = book else {
        return Err(protocol_error("AddressBook", &book));
    };
    for (peer, addr) in book {
        if !shard.contains(&(peer as usize)) {
            transport
                .register_remote(PeerId(peer), addr)
                .map_err(|e| Error::other(e.to_string()))?;
        }
    }

    let mut runtime = Runtime::with_transport_sharded(config.clone(), transport, shard.clone())
        .map_err(|e| Error::other(e.to_string()))?;
    let mut streamed_minutes: BTreeSet<u64> = BTreeSet::new();
    barrier(&mut ctl, &mut runtime, PHASE_WIRED, &mut streamed_minutes)?;

    // --- phase 1: joining ---------------------------------------------------
    // Every worker applies the full deterministic join plan: hosted peers
    // become live protocol endpoints, non-hosted ones become consistent
    // bookkeeping stubs (identity + adjacency + liveness).
    for event in join_plan(&config, &timeline) {
        run_paced(&mut runtime, event.at);
        runtime.join_peer_with_neighbours(event.peer, event.neighbours);
    }
    run_paced(&mut runtime, timeline.join_end_min * MINUTE_MS);
    barrier(&mut ctl, &mut runtime, PHASE_JOINED, &mut streamed_minutes)?;

    // --- phase 2: replication -----------------------------------------------
    runtime.replication_phase();
    run_paced(&mut runtime, timeline.replicate_end_min * MINUTE_MS);
    barrier(
        &mut ctl,
        &mut runtime,
        PHASE_REPLICATED,
        &mut streamed_minutes,
    )?;

    // --- phase 3: construction ----------------------------------------------
    runtime.start_construction();
    run_paced(&mut runtime, timeline.construct_end_min * MINUTE_MS);
    barrier(
        &mut ctl,
        &mut runtime,
        PHASE_CONSTRUCTED,
        &mut streamed_minutes,
    )?;

    // --- phase 4: queries ----------------------------------------------------
    // Each hosted peer queries every 1–2 minutes: the per-worker issue rate
    // scales with the shard so the aggregate matches the single-process
    // driver.  The worker index decorrelates the draw streams.
    let mut control_rng =
        StdRng::seed_from_u64(config.seed ^ 0xD13 ^ ((worker_index as u64) << 32));
    let keys: Vec<_> = runtime.original_entries.iter().map(|e| e.key).collect();
    let query_end = timeline.query_end_min * MINUTE_MS;
    let churn_end = timeline.end_min * MINUTE_MS;
    let shard_peers = shard.len() as u64;
    let mut next_query = runtime.now();
    while runtime.now() < query_end {
        let step = control_rng.gen_range(MINUTE_MS / shard_peers / 2..=MINUTE_MS / shard_peers);
        next_query += step.max(1);
        run_paced(&mut runtime, next_query.min(query_end));
        if runtime.now() >= query_end {
            break;
        }
        let key = keys[control_rng.gen_range(0..keys.len())];
        runtime.issue_query(key);
    }
    barrier(&mut ctl, &mut runtime, PHASE_QUERIED, &mut streamed_minutes)?;

    // --- phase 5: churn + queries --------------------------------------------
    // The churn schedule is global and deterministic: every worker applies
    // it to all peers, so scheduled liveness of remote peers (the routing
    // failure detector) agrees across processes.
    for event in churn_plan(&config, &timeline) {
        runtime.schedule_churn(event.peer, event.at, event.downtime);
    }
    while runtime.now() < churn_end {
        let step = control_rng.gen_range(MINUTE_MS / shard_peers / 2..=MINUTE_MS / shard_peers);
        next_query += step.max(1);
        run_paced(&mut runtime, next_query.min(churn_end));
        if runtime.now() >= churn_end {
            break;
        }
        let key = keys[control_rng.gen_range(0..keys.len())];
        runtime.issue_query(key);
    }
    // Drain outstanding query timeouts.
    run_paced(&mut runtime, churn_end + config.query_timeout_ms);
    barrier(&mut ctl, &mut runtime, PHASE_DONE, &mut streamed_minutes)?;

    // --- final report --------------------------------------------------------
    stream_minutes(&mut ctl, &runtime, &mut streamed_minutes, u64::MAX)?;
    ctl.send(&ClusterMsg::Report(ShardReport {
        shard_start,
        paths: shard
            .clone()
            .map(|peer| runtime.nodes[peer].state.path)
            .collect(),
        queries: runtime.metrics.queries.clone(),
        online_at_end: runtime.hosted_online_count() as u64,
        transport: runtime.transport_stats(),
        messages_delivered: runtime.metrics.messages_delivered as u64,
        messages_lost: runtime.metrics.messages_lost as u64,
    }))?;
    Ok(())
}

/// Advances virtual time to `until` in short slices, letting the wire
/// settle after each slice so cross-process replies interleave with local
/// ticks instead of piling up at the phase boundary.
fn run_paced(runtime: &mut Runtime<TcpTransport>, until: Millis) {
    while runtime.now() < until {
        let next = (runtime.now() + PACE_SLICE_MS).min(until);
        runtime.run_until(next);
        let deadline = Instant::now() + SETTLE;
        loop {
            if runtime.service_network() == 0 {
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

/// Streams every completed, not-yet-reported bandwidth minute below
/// `before` to the coordinator.
fn stream_minutes(
    ctl: &mut ControlChannel,
    runtime: &Runtime<TcpTransport>,
    streamed: &mut BTreeSet<u64>,
    before: u64,
) -> Result<()> {
    let mut samples: Vec<(u64, u64, u64)> = runtime
        .metrics
        .bandwidth_per_minute
        .iter()
        .filter(|(&minute, _)| minute < before && !streamed.contains(&minute))
        .map(|(&minute, bw)| (minute, bw.maintenance_bytes as u64, bw.query_bytes as u64))
        .collect();
    samples.sort_unstable();
    if samples.is_empty() {
        return Ok(());
    }
    for &(minute, _, _) in &samples {
        streamed.insert(minute);
    }
    ctl.send(&ClusterMsg::Minutes { samples })
}

/// Reports the end of `phase` and parks until the coordinator releases the
/// barrier, servicing the data transport the whole time.
fn barrier(
    ctl: &mut ControlChannel,
    runtime: &mut Runtime<TcpTransport>,
    phase: u8,
    streamed: &mut BTreeSet<u64>,
) -> Result<()> {
    // Let stragglers from faster shards drain before declaring the phase
    // over: keep answering until the wire stays quiet for a moment.
    let mut quiet_since = Instant::now();
    let grace_deadline = Instant::now() + Duration::from_millis(400);
    loop {
        if runtime.service_network() > 0 {
            quiet_since = Instant::now();
        } else if quiet_since.elapsed() >= Duration::from_millis(20)
            || Instant::now() >= grace_deadline
        {
            break;
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    // Buckets below the current minute can no longer grow in this phase.
    stream_minutes(ctl, runtime, streamed, runtime.now() / MINUTE_MS)?;
    ctl.send(&ClusterMsg::PhaseDone { phase })?;
    let deadline = Instant::now() + BARRIER_TIMEOUT;
    loop {
        runtime.service_network();
        match ctl.try_recv()? {
            Some(ClusterMsg::Proceed { phase: p }) if p == phase => return Ok(()),
            Some(other) => return Err(protocol_error("Proceed", &other)),
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!("barrier for phase {phase} never released"),
                    ));
                }
            }
        }
    }
}
