//! The worker runtime: hosts one shard of peers across a real process
//! boundary.
//!
//! A worker connects to the coordinator, receives its shard assignment and
//! the run configuration, registers a wire endpoint for every hosted peer
//! on its configured backend ([`TransportChoice`]: the threaded
//! [`TcpTransport`] or the epoll-driven
//! [`pgrid_reactor::ReactorTransport`]), publishes the listen addresses,
//! wires every *other* peer as a remote
//! via [`SocketTransport::register_remote`], and then drives the Section-5
//! timeline over its shard **through the scenario executor**: the phases
//! are the same [`pgrid_scenario::Scenario`] program the single-process
//! driver runs, with the deterministic join/churn plans substituted for
//! the random draws ([`Phase::JoinSchedule`] / [`Phase::ChurnSchedule`])
//! and the query rate scaled to the shard.  Two distribution-imposed
//! behaviours live in the glue:
//!
//! * **Pacing.**  [`ShardOverlay`] implements
//!   [`pgrid_scenario::Overlay::advance_to`] as short virtual slices with
//!   a real-time settle after each one, so exchange replies crossing the
//!   wire from other processes are handled within roughly one construct
//!   interval of the tick that triggered them.
//! * **Barriers.**  [`BarrierHooks`] reports `PhaseDone` after each
//!   boundary phase and parks until the coordinator releases the barrier —
//!   while continuing to service the data transport, so peers of slower
//!   shards still get their exchanges answered.
//!
//! Since proto v5 the worker is also one node of the self-healing loop: it
//! heartbeats on the control channel while advancing and while parked, and
//! when the coordinator reassigns a dead worker's shard it takes over the
//! orphaned endpoints ([`SocketTransport::register_takeover`]), adopts the
//! peers, and rebuilds their state from live P-Grid replicas — the paper's
//! own replication doubling as the recovery mechanism — with the seeded
//! local regeneration as the guaranteed-termination fallback.
//!
//! Since proto v6 a worker given `--data-dir` journals its shard through
//! [`pgrid_durable::DurableStore`] (one observation per pacing slice, one
//! fsync per slice that changed anything) and can **warm-restart**: a
//! relaunched worker that finds a matching log replays it locally, sends
//! [`ClusterMsg::Rejoin`] instead of waiting for `Welcome`, re-enters the
//! run at the barrier the cluster is parked at, and reconciles each
//! replayed peer against a live remote replica with an anti-entropy diff
//! ([`Runtime::begin_replica_diff`]) instead of a cold full pull.
//!
//! [`Phase::JoinSchedule`]: pgrid_scenario::Phase::JoinSchedule
//! [`Phase::ChurnSchedule`]: pgrid_scenario::Phase::ChurnSchedule
//! [`SocketTransport::register_takeover`]: pgrid_transport::SocketTransport::register_takeover
//! [`SocketTransport::register_remote`]: pgrid_transport::SocketTransport::register_remote

use crate::plan::{churn_plan, join_plan, MINUTE_MS};
use crate::proto::{
    ClusterMsg, ControlChannel, ReassignMove, ShardReport, PHASE_CONSTRUCTED, PHASE_DONE,
    PHASE_JOINED, PHASE_QUERIED, PHASE_REPLICATED, PHASE_WIRED,
};
use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_core::path::Path;
use pgrid_core::routing::PeerId;
use pgrid_durable::{DurableStore, LogOptions, MetaImage};
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::{Millis, NetConfig, Runtime};
use pgrid_obs::recorder::{install_panic_dump, shared, SharedRecorder};
use pgrid_obs::registry::MetricsRegistry;
use pgrid_obs::scrape::{ScrapeServer, ScrapeState};
use pgrid_reactor::{ReactorConfig, ReactorTransport};
use pgrid_scenario::scenario::CONTROL_SEED_SALT;
use pgrid_scenario::{Overlay, OverlaySnapshot, Phase, QuerySpec, Scenario, ScenarioHooks};
use pgrid_transport::tcp::TcpTransport;
use pgrid_transport::{PeerAddr, SocketTransport, Transport};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::io::{Error, ErrorKind, Result};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker waits for handshake messages.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(60);

/// Virtual-time slice between wire settles.
const PACE_SLICE_MS: Millis = 2_000;

/// Real time the worker lets the wire settle after each virtual slice.
const SETTLE: Duration = Duration::from_micros(700);

/// Maximum real time a worker parks at one barrier before giving up.
const BARRIER_TIMEOUT: Duration = Duration::from_secs(600);

/// Rendezvous connect attempts before giving up (capped exponential
/// backoff with deterministic jitter between attempts).
const CONNECT_ATTEMPTS: u32 = 6;

/// First rendezvous retry delay; doubles per attempt up to
/// [`CONNECT_BACKOFF_CAP`].
const CONNECT_BACKOFF: Duration = Duration::from_millis(100);

/// Ceiling of the rendezvous retry delay.
const CONNECT_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Wall-clock budget for one replica-rebuild round before the seeded
/// local fallback kicks in for the stragglers.
const RECOVERY_SETTLE: Duration = Duration::from_secs(10);

/// How much virtual time a recovery round may consume driving the data
/// plane (pulls and pushes ride scheduled messages like all traffic).
const RECOVERY_VIRTUAL_MS: Millis = 5_000;

/// How long a rejoining worker waits for the coordinator's `Welcome`: the
/// rendezvous listener is only polled during a healing round, which starts
/// at the next phase barrier — potentially several real minutes after the
/// relaunch.
const REJOIN_WELCOME_TIMEOUT: Duration = Duration::from_secs(600);

/// Exit code of a worker that killed itself on schedule (fault
/// injection); [`crate::local`] tolerates this many non-success children
/// as the coordinator observed failures.
pub const KILL_EXIT_CODE: i32 = 113;

fn protocol_error(what: &str, got: &ClusterMsg) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("expected {what}, got {got:?}"),
    )
}

/// Largest trace batch shipped in one control frame; bigger drains are
/// split.
const TRACE_BATCH_MAX: usize = 4_096;

/// Which data-plane backend a worker hosts its shard on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportChoice {
    /// The threaded TCP backend: one listener and one reader thread per
    /// hosted peer ([`TcpTransport`]).
    #[default]
    Threaded,
    /// The poll-driven multiplexed backend: all hosted peers behind one
    /// listener, serviced by a fixed epoll worker pool
    /// ([`ReactorTransport`]).  Falls back to the threaded backend (with
    /// one warning) on platforms without epoll.
    Reactor,
}

impl std::str::FromStr for TransportChoice {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<TransportChoice, String> {
        match s {
            "tcp" | "threaded" => Ok(TransportChoice::Threaded),
            "reactor" => Ok(TransportChoice::Reactor),
            other => Err(format!(
                "unknown transport {other:?} (expected \"tcp\" or \"reactor\")"
            )),
        }
    }
}

impl std::fmt::Display for TransportChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportChoice::Threaded => f.write_str("tcp"),
            TransportChoice::Reactor => f.write_str("reactor"),
        }
    }
}

/// Observability options of one worker process.
#[derive(Clone, Debug, Default)]
pub struct WorkerOptions {
    /// Bind address of the worker's `/metrics`+`/trace` scrape endpoint
    /// (port 0 picks a free port; the bound address is announced to the
    /// coordinator in `Hello`).
    pub metrics_addr: Option<SocketAddr>,
    /// Where the flight recorder dumps on a panic or a query/range
    /// timeout.
    pub flight_dump: Option<PathBuf>,
    /// Directory of the worker's durable log.  When set, the shard is
    /// journaled through [`DurableStore`]; when the directory already
    /// holds a matching log at startup, the worker attempts a warm rejoin
    /// instead of a fresh rendezvous.
    pub data_dir: Option<PathBuf>,
    /// The data-plane backend hosting this worker's shard.
    pub transport: TransportChoice,
    /// Reactor event threads (0 = one per core); ignored by the threaded
    /// backend.
    pub n_event_threads: usize,
}

/// Observability state threaded through the worker's barriers.
struct WorkerObs {
    /// The local scrape endpoint, when serving.
    scrape: Option<(ScrapeServer, Arc<ScrapeState>)>,
    /// Control-plane flight notes (rendezvous, barriers) shared with the
    /// panic hook.
    control: SharedRecorder,
    worker_index: u32,
    shard_start: u64,
    shard_len: u64,
}

impl WorkerObs {
    /// Renders the worker's current metrics registry: the runtime's
    /// network counters, the transport link stats, the shard assignment,
    /// and — when journaling — the durability counters.
    fn registry<T: Transport>(
        &self,
        runtime: &Runtime<T>,
        durable: Option<&DurableStore>,
    ) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        runtime.metrics.to_registry(&mut registry);
        runtime.transport_stats().to_registry(&mut registry);
        if let Some(durable) = durable {
            let stats = durable.stats();
            registry.counter(
                "pgrid_durable_appended_records_total",
                "Journal records appended this session.",
                &[],
                stats.appended_records,
            );
            registry.counter(
                "pgrid_durable_appended_bytes_total",
                "Journal frame bytes appended this session.",
                &[],
                stats.appended_bytes,
            );
            registry.counter(
                "pgrid_durable_syncs_total",
                "Journal fsync calls this session.",
                &[],
                stats.syncs,
            );
            registry.histogram(
                "pgrid_durable_fsync_micros",
                "Journal fsync latency distribution, in microseconds.",
                &[],
                &stats.fsync_micros,
            );
            registry.counter(
                "pgrid_durable_replayed_records_total",
                "Journal records replayed at open (warm restarts).",
                &[],
                stats.replayed_records,
            );
            registry.counter(
                "pgrid_durable_compactions_total",
                "Journal compaction runs this session.",
                &[],
                stats.compactions,
            );
            registry.counter(
                "pgrid_durable_compacted_bytes_total",
                "Journal bytes reclaimed by compaction this session.",
                &[],
                stats.compacted_bytes,
            );
            registry.gauge(
                "pgrid_durable_segments",
                "Journal segment files (sealed plus active).",
                &[],
                durable.segment_count() as f64,
            );
            registry.gauge(
                "pgrid_durable_log_bytes",
                "Total bytes across all journal segments.",
                &[],
                durable.total_bytes() as f64,
            );
        }
        registry.gauge(
            "pgrid_cluster_shard_start",
            "First peer id hosted by this worker.",
            &[],
            self.shard_start as f64,
        );
        registry.gauge(
            "pgrid_cluster_shard_len",
            "Number of peers hosted by this worker.",
            &[],
            self.shard_len as f64,
        );
        registry.gauge(
            "pgrid_cluster_worker_index",
            "Index of this worker in the cluster.",
            &[],
            self.worker_index as f64,
        );
        registry
    }

    /// Publishes the current registry and any freshly drained trace
    /// events locally, and streams both to the coordinator.
    fn publish<T: Transport>(
        &mut self,
        ctl: &mut ControlChannel,
        runtime: &mut Runtime<T>,
        durable: Option<&DurableStore>,
        phase: u8,
    ) -> Result<()> {
        let registry = self.registry(runtime, durable);
        if let Some((_, state)) = &self.scrape {
            state.publish_metrics(registry.encode());
        }
        ctl.send(&ClusterMsg::MetricsSnapshot {
            registry: registry.encode_wire(),
        })?;
        let events = runtime.tracer.drain();
        if !events.is_empty() {
            if let Some((_, state)) = &self.scrape {
                state.publish_trace_events(&events);
            }
            for chunk in events.chunks(TRACE_BATCH_MAX) {
                ctl.send(&ClusterMsg::TraceBatch {
                    events: chunk.to_vec(),
                })?;
            }
        }
        self.control.lock().unwrap().note(
            runtime.now(),
            "barrier",
            format!("phase={phase} worker={}", self.worker_index),
        );
        Ok(())
    }
}

/// Liveness and healing state of one worker.
struct HealState {
    /// Whether the coordinator reassigns dead shards (from `Welcome`).
    heal: bool,
    /// Wall-clock heartbeat interval (0 disables).
    heartbeat_ms: u64,
    /// Last heartbeat actually sent.
    last_heartbeat: Instant,
    /// Latest membership epoch announced by the coordinator.
    epoch: u64,
    /// Fault injection: kill the process once the virtual clock reaches
    /// this instant.
    kill_at: Option<Millis>,
    /// Adoptions announced by `ShardReassign` and not yet rebuilt:
    /// `(peer, source hint, last observed path)`.
    pending: Vec<(usize, usize, Path)>,
    worker_index: u32,
}

/// The worker's shard wrapped as a scenario overlay: every operation
/// delegates to the sharded [`Runtime`], except that advancing virtual
/// time is paced against the wire (see the module docs), heartbeats the
/// control channel, and honours a scheduled self-kill.
pub struct ShardOverlay<T: SocketTransport = TcpTransport> {
    /// The sharded runtime this worker hosts.
    pub runtime: Runtime<T>,
    ctl: Rc<RefCell<ControlChannel>>,
    heal: HealState,
    /// The shard's durable journal, when `--data-dir` was given.
    durable: Option<DurableStore>,
    /// Last phase barrier this worker passed, journaled in the log's
    /// metadata so a relaunch knows where the run stood.
    durable_phase: u8,
}

impl<T: SocketTransport> ShardOverlay<T> {
    /// Sends a heartbeat if the interval elapsed; send errors are ignored
    /// here (a dead coordinator surfaces at the next barrier anyway).
    fn maybe_heartbeat(&mut self) {
        if self.heal.heartbeat_ms == 0 {
            return;
        }
        if self.heal.last_heartbeat.elapsed() < Duration::from_millis(self.heal.heartbeat_ms) {
            return;
        }
        self.heal.last_heartbeat = Instant::now();
        let epoch = self.heal.epoch;
        let _ = self.ctl.borrow_mut().send(&ClusterMsg::Heartbeat { epoch });
    }

    /// Journals every hosted peer whose state changed since the last
    /// observation, plus the run metadata, and fsyncs when anything was
    /// appended (at most one sync per pacing slice).  Write errors are
    /// logged, not fatal: a full disk degrades durability, not the run.
    fn persist(&mut self) {
        let Some(durable) = self.durable.as_mut() else {
            return;
        };
        let mut dirty = false;
        let hosted: Vec<usize> = self
            .runtime
            .shard()
            .chain(self.runtime.adopted_peers())
            .collect();
        for peer in hosted {
            let state = &self.runtime.nodes[peer].state;
            let routing: Vec<(u8, u64, Path)> = state
                .routing
                .entries()
                .map(|(level, e)| (level as u8, e.peer.0, e.path))
                .collect();
            let replicas: Vec<u64> = state.replicas.iter().map(|p| p.0).collect();
            match durable.observe(
                0,
                peer as u32,
                state.path,
                &state.store,
                &routing,
                &replicas,
            ) {
                Ok(appended) => dirty |= appended,
                Err(e) => {
                    pgrid_obs::warn!("cluster::worker", "durable observe of peer {peer}: {e}");
                    return;
                }
            }
        }
        let shard = self.runtime.shard();
        let meta = MetaImage {
            shard_start: shard.start as u32,
            shard_len: shard.len() as u32,
            epoch: self.heal.epoch,
            phase: self.durable_phase,
            now_ms: self.runtime.now(),
            seed: self.runtime.config.seed,
        };
        dirty |= durable.set_meta(meta).unwrap_or(false);
        if dirty {
            if let Err(e) = durable.sync() {
                pgrid_obs::warn!("cluster::worker", "durable sync failed: {e}");
            }
            let _ = durable.maybe_compact();
        }
    }
}

impl<T: SocketTransport> Overlay for ShardOverlay<T> {
    fn n_peers(&self) -> usize {
        Overlay::n_peers(&self.runtime)
    }

    fn now(&self) -> Millis {
        self.runtime.now()
    }

    fn advance_to(&mut self, until: Millis) {
        // Short virtual slices with real-time settles, so cross-process
        // replies interleave with local ticks instead of piling up at the
        // phase boundary.
        while self.runtime.now() < until {
            let next = (self.runtime.now() + PACE_SLICE_MS).min(until);
            if let Some(kill_at) = self.heal.kill_at {
                if kill_at <= next {
                    // Unplanned death, as far as the rest of the cluster is
                    // concerned: advance to the instant and exit without a
                    // word on any channel.
                    self.runtime.run_until(kill_at);
                    pgrid_obs::info!(
                        "cluster::worker",
                        "worker {}: fault injection — dying at virtual minute {}",
                        self.heal.worker_index,
                        kill_at / MINUTE_MS
                    );
                    std::process::exit(KILL_EXIT_CODE);
                }
            }
            self.runtime.run_until(next);
            self.maybe_heartbeat();
            let deadline = Instant::now() + SETTLE;
            loop {
                if self.runtime.service_network() == 0 {
                    if Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
            // One journal cut per settled slice: every record boundary is
            // a consistent observation of the shard.
            self.persist();
        }
    }

    fn join(&mut self, peer: usize, fanout: usize) {
        Overlay::join(&mut self.runtime, peer, fanout)
    }

    fn join_with_neighbours(&mut self, peer: usize, neighbours: Vec<PeerId>) {
        Overlay::join_with_neighbours(&mut self.runtime, peer, neighbours)
    }

    fn schedule_leave(&mut self, peer: usize, at: Millis, downtime: Millis) {
        Overlay::schedule_leave(&mut self.runtime, peer, at, downtime)
    }

    fn begin_replication(&mut self, index: IndexId) {
        Overlay::begin_replication(&mut self.runtime, index)
    }

    fn begin_construction(&mut self, index: IndexId) {
        Overlay::begin_construction(&mut self.runtime, index)
    }

    fn quiescent(&self) -> bool {
        Overlay::quiescent(&self.runtime)
    }

    fn has_index(&self, index: IndexId) -> bool {
        Overlay::has_index(&self.runtime, index)
    }

    fn insert(&mut self, index: IndexId, peer: usize, keys: Vec<Key>) {
        Overlay::insert(&mut self.runtime, index, peer, keys)
    }

    fn issue_query(&mut self, index: IndexId, key: Key) {
        Overlay::issue_query(&mut self.runtime, index, key)
    }

    fn issue_range_query(&mut self, index: IndexId, lo: Key, hi: Key) {
        Overlay::issue_range_query(&mut self.runtime, index, lo, hi)
    }

    fn query_keys(&self, index: IndexId) -> Vec<Key> {
        Overlay::query_keys(&self.runtime, index)
    }

    fn query_timeout_ms(&self) -> Millis {
        Overlay::query_timeout_ms(&self.runtime)
    }

    fn schedule_kill(&mut self, at: Millis) {
        self.heal.kill_at = Some(at);
    }

    fn inject_partition(&mut self, groups: &[Vec<usize>], from: Millis, until: Millis) -> bool {
        Overlay::inject_partition(&mut self.runtime, groups, from, until)
    }

    fn snapshot(&self, label: &str) -> OverlaySnapshot {
        Overlay::snapshot(&self.runtime, label)
    }
}

/// Phase hooks of the worker: after each boundary phase, stream completed
/// bandwidth minutes and park at the coordinator's barrier.
struct BarrierHooks<'a> {
    streamed: &'a mut BTreeSet<u64>,
    obs: &'a mut WorkerObs,
    /// The barrier each phase index parks at, precomputed by
    /// [`barrier_plan`] so a barrier class spanning several phases (range
    /// load followed by lookup load) reports exactly once.
    plan: Vec<Option<u8>>,
}

/// The barrier class of each scenario phase, keeping only the *last* phase
/// of each class: the coordinator releases every barrier exactly once, so
/// back-to-back query-plane phases must park together at their end.
fn barrier_plan(scenario: &Scenario) -> Vec<Option<u8>> {
    let mut plan: Vec<Option<u8>> = scenario
        .phases
        .iter()
        .map(|phase| match phase {
            Phase::JoinSchedule { .. } | Phase::JoinWave { .. } => Some(PHASE_JOINED),
            Phase::Replicate { .. } => Some(PHASE_REPLICATED),
            Phase::RunUntil { .. } | Phase::ConstructUntilQuiescent { .. } => {
                Some(PHASE_CONSTRUCTED)
            }
            Phase::QueryLoad { .. } | Phase::RangeLoad { .. } => Some(PHASE_QUERIED),
            Phase::Drain => Some(PHASE_DONE),
            _ => None,
        })
        .collect();
    let mut seen = BTreeSet::new();
    for slot in plan.iter_mut().rev() {
        if let Some(class) = *slot {
            if !seen.insert(class) {
                *slot = None;
            }
        }
    }
    plan
}

impl<T: SocketTransport> ScenarioHooks<ShardOverlay<T>> for BarrierHooks<'_> {
    type Error = Error;

    fn after_phase(
        &mut self,
        overlay: &mut ShardOverlay<T>,
        phase_index: usize,
        _phase: &Phase,
    ) -> Result<()> {
        let Some(barrier_phase) = self.plan.get(phase_index).copied().flatten() else {
            return Ok(());
        };
        barrier(overlay, barrier_phase, self.streamed, self.obs)
    }
}

/// Connects to the coordinator with capped exponential backoff and
/// deterministic jitter, so workers racing a slow-to-bind rendezvous (or a
/// supervisor restart) converge instead of failing on the first refusal.
fn connect_with_retry(coordinator: SocketAddr) -> Result<TcpStream> {
    let mut delay = CONNECT_BACKOFF;
    let mut last = None;
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(coordinator) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                pgrid_obs::debug!(
                    "cluster::worker",
                    "rendezvous connect attempt {} failed: {e}",
                    attempt + 1
                );
                last = Some(e);
            }
        }
        if attempt + 1 < CONNECT_ATTEMPTS {
            // Plain xorshift off the port and attempt number: enough to
            // decorrelate workers without touching any experiment RNG.
            let mut x =
                (coordinator.port() as u64 + 1) ^ ((attempt as u64 + 1) * 0x9E37_79B9_7F4A_7C15);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let jitter = x % (delay.as_millis() as u64 / 2 + 1);
            std::thread::sleep(delay + Duration::from_millis(jitter));
            delay = (delay * 2).min(CONNECT_BACKOFF_CAP);
        }
    }
    Err(last.unwrap_or_else(|| Error::new(ErrorKind::ConnectionRefused, "no connect attempt ran")))
}

/// Connects to the coordinator at `coordinator` and runs one worker to
/// completion: rendezvous, the full sharded timeline, and the final shard
/// report.
///
/// With a `data_dir`, the shard is journaled along the way; a directory
/// already holding a matching log routes through the warm-rejoin path
/// instead of the fresh rendezvous.
pub fn run_worker(coordinator: SocketAddr, options: &WorkerOptions) -> Result<()> {
    match options.transport {
        TransportChoice::Reactor if pgrid_reactor::supported() => {
            let transport = ReactorTransport::with_config(ReactorConfig {
                n_event_threads: options.n_event_threads,
                ..ReactorConfig::default()
            });
            run_worker_on(coordinator, options, transport)
        }
        TransportChoice::Reactor => {
            pgrid_obs::warn!(
                "cluster::worker",
                "--transport reactor needs Linux epoll; falling back to the threaded TCP backend"
            );
            run_worker_on(coordinator, options, TcpTransport::new())
        }
        TransportChoice::Threaded => run_worker_on(coordinator, options, TcpTransport::new()),
    }
}

/// [`run_worker`] once the backend is chosen.
fn run_worker_on<T: SocketTransport>(
    coordinator: SocketAddr,
    options: &WorkerOptions,
    transport: T,
) -> Result<()> {
    let durable = match &options.data_dir {
        Some(dir) => {
            let store = DurableStore::open(dir, LogOptions::default())?;
            if store.recovered() && store.meta().is_some() && store.peer_count() > 0 {
                return run_rejoin(coordinator, options, store, transport);
            }
            Some(store)
        }
        None => None,
    };
    run_fresh(coordinator, options, durable, transport)
}

/// Builds the worker's observability state: the optional scrape endpoint
/// and the control-plane flight recorder (wired into the panic hook).
fn worker_obs(
    options: &WorkerOptions,
    worker_index: u32,
    shard_start: u64,
    shard_len: u64,
) -> Result<WorkerObs> {
    let scrape = match options.metrics_addr {
        Some(addr) => {
            let state = ScrapeState::new();
            let server = ScrapeServer::serve(addr, Arc::clone(&state))?;
            pgrid_obs::info!(
                "cluster::worker",
                "worker {worker_index}: serving /metrics on {}",
                server.addr()
            );
            Some((server, state))
        }
        None => None,
    };
    let control = shared(pgrid_obs::recorder::DEFAULT_CAPACITY);
    if let Some(path) = &options.flight_dump {
        install_panic_dump(Arc::clone(&control), path.clone());
    }
    Ok(WorkerObs {
        scrape,
        control,
        worker_index,
        shard_start,
        shard_len,
    })
}

/// Registers a wire endpoint for every hosted peer and returns the
/// announced `(peer, address)` pairs.  Under the threaded backend every
/// peer gets its own listener; under the reactor they all share one.
fn register_shard<T: SocketTransport>(
    transport: &mut T,
    shard: &std::ops::Range<usize>,
) -> Result<Vec<(u64, SocketAddr)>> {
    let mut peer_addrs = Vec::with_capacity(shard.len());
    for peer in shard.clone() {
        let addr = transport
            .register(PeerId(peer as u64))
            .map_err(|e| Error::other(e.to_string()))?;
        let PeerAddr::Socket(addr) = addr else {
            unreachable!("socket transports return socket addresses");
        };
        peer_addrs.push((peer as u64, addr));
    }
    Ok(peer_addrs)
}

/// Streams the remaining bandwidth minutes and sends the final
/// [`ShardReport`].
fn send_report<T: Transport>(
    ctl: &mut ControlChannel,
    runtime: &Runtime<T>,
    shard_start: u64,
    streamed: &mut BTreeSet<u64>,
) -> Result<()> {
    stream_minutes(ctl, runtime, streamed, u64::MAX)?;
    let shard = runtime.shard();
    ctl.send(&ClusterMsg::Report(ShardReport {
        shard_start,
        paths: shard
            .clone()
            .map(|peer| runtime.nodes[peer].state.path)
            .collect(),
        query_stats: runtime
            .metrics
            .query_stats
            .iter()
            .map(|(&index, stats)| (index, stats.clone()))
            .collect(),
        online_at_end: runtime.hosted_online_count() as u64,
        transport: runtime.transport_stats(),
        messages_delivered: runtime.metrics.messages_delivered as u64,
        messages_lost: runtime.metrics.messages_lost as u64,
        extra_paths: runtime
            .adopted_peers()
            .into_iter()
            .map(|peer| (peer as u64, runtime.nodes[peer].state.path))
            .collect(),
    }))
}

/// The fresh-rendezvous worker run (the only path before proto v6).
fn run_fresh<T: SocketTransport>(
    coordinator: SocketAddr,
    options: &WorkerOptions,
    durable: Option<DurableStore>,
    mut transport: T,
) -> Result<()> {
    let stream = connect_with_retry(coordinator)?;
    let ctl = Rc::new(RefCell::new(ControlChannel::new(stream)?));

    // --- rendezvous: assignment, endpoints, address book -------------------
    let welcome = ctl.borrow_mut().recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::Welcome {
        worker_index,
        n_workers: _,
        shard_start,
        shard_len,
        config,
        timeline,
        tracing,
        heartbeat_ms,
        failure_timeout_ms: _,
        heal,
        kill_at_min,
    } = welcome
    else {
        return Err(protocol_error("Welcome", &welcome));
    };
    let shard = shard_start as usize..(shard_start + shard_len) as usize;
    pgrid_obs::info!(
        "cluster::worker",
        "worker {worker_index}: shard {shard_start}+{shard_len}, tracing {}, \
         heartbeat {heartbeat_ms}ms, heal {}",
        if tracing { "on" } else { "off" },
        if heal { "on" } else { "off" }
    );

    let mut obs = worker_obs(options, worker_index, shard_start, shard_len)?;
    let peer_addrs = register_shard(&mut transport, &shard)?;
    ctl.borrow_mut().send(&ClusterMsg::Hello {
        shard_start,
        peer_addrs,
        metrics_addr: obs.scrape.as_ref().map(|(server, _)| server.addr()),
    })?;

    let book = ctl.borrow_mut().recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::AddressBook { peer_addrs: book } = book else {
        return Err(protocol_error("AddressBook", &book));
    };
    for (peer, addr) in book {
        if !shard.contains(&(peer as usize)) {
            transport
                .register_remote(PeerId(peer), addr)
                .map_err(|e| Error::other(e.to_string()))?;
        }
    }

    let mut runtime = Runtime::with_transport_sharded(config.clone(), transport, shard.clone())
        .map_err(|e| Error::other(e.to_string()))?;
    if tracing {
        // Worker index + 1 as the base keeps every worker's trace IDs in
        // a disjoint, recognisably-tagged space after the merge.
        runtime.enable_tracing_with_base(worker_index as u64 + 1);
    }
    runtime.flight_dump = options.flight_dump.clone();
    let mut overlay = ShardOverlay {
        runtime,
        ctl: Rc::clone(&ctl),
        heal: HealState {
            heal,
            heartbeat_ms,
            last_heartbeat: Instant::now(),
            epoch: 0,
            kill_at: kill_at_min.map(|m| m * MINUTE_MS),
            pending: Vec::new(),
            worker_index,
        },
        durable,
        durable_phase: PHASE_WIRED,
    };
    let mut streamed_minutes: BTreeSet<u64> = BTreeSet::new();
    barrier(&mut overlay, PHASE_WIRED, &mut streamed_minutes, &mut obs)?;

    // --- the timeline as a scenario ------------------------------------------
    // Same phase program as the single-process Section-5 scenario, with the
    // deterministic plans substituted for the random draws (all workers
    // agree on joins/churn of peers they do not host) and the query rate
    // scaled to the shard; the worker index decorrelates the query streams.
    let scenario = worker_scenario(&config, &timeline, worker_index, shard.len());
    let plan = barrier_plan(&scenario);
    let mut hooks = BarrierHooks {
        streamed: &mut streamed_minutes,
        obs: &mut obs,
        plan,
    };
    pgrid_scenario::run_with_hooks(&mut overlay, &scenario, &mut hooks)?;

    // --- final report --------------------------------------------------------
    send_report(
        &mut ctl.borrow_mut(),
        &overlay.runtime,
        shard_start,
        &mut streamed_minutes,
    )?;
    pgrid_obs::info!(
        "cluster::worker",
        "worker {worker_index}: shard report sent, exiting"
    );
    if let Some((server, _)) = obs.scrape.take() {
        server.shutdown();
    }
    Ok(())
}

/// Warm restart: the relaunched worker replays its durable log, announces
/// itself with [`ClusterMsg::Rejoin`] (the rejoiner speaks first; a fresh
/// worker waits silently for `Welcome`), and — once the coordinator's
/// healing round accepts it — re-enters the run at the barrier the
/// cluster is parked at:
///
/// 1. replay the journal into the sharded runtime ([`Runtime::restore_peer`]),
/// 2. reconcile every replayed peer against a live remote replica with an
///    anti-entropy diff ([`Runtime::begin_replica_diff`]) — merging what
///    the crash window lost instead of re-pulling whole partitions,
/// 3. acknowledge with `RecoveryDone` (the diffs settle while pacing),
/// 4. advance to the parked barrier's boundary minute, wait for `Proceed`
///    *without* re-reporting `PhaseDone` (the coordinator collected that
///    barrier without us), and
/// 5. run the remaining suffix of the phase program.
fn run_rejoin<T: SocketTransport>(
    coordinator: SocketAddr,
    options: &WorkerOptions,
    durable: DurableStore,
    mut transport: T,
) -> Result<()> {
    let meta = durable.meta().expect("caller checked recovery").clone();
    pgrid_obs::info!(
        "cluster::worker",
        "durable log holds shard {}+{} at phase {} (virtual minute {}): attempting warm rejoin",
        meta.shard_start,
        meta.shard_len,
        meta.phase,
        meta.now_ms / MINUTE_MS
    );
    let stream = connect_with_retry(coordinator)?;
    let ctl = Rc::new(RefCell::new(ControlChannel::new(stream)?));
    ctl.borrow_mut().send(&ClusterMsg::Rejoin {
        shard_start: meta.shard_start as u64,
        shard_len: meta.shard_len as u64,
        epoch: meta.epoch,
        phase: meta.phase,
        now_ms: meta.now_ms,
        seed: meta.seed,
    })?;
    let welcome = ctl.borrow_mut().recv_timeout(REJOIN_WELCOME_TIMEOUT)?;
    let ClusterMsg::Welcome {
        worker_index,
        n_workers: _,
        shard_start,
        shard_len,
        config,
        timeline,
        tracing,
        heartbeat_ms,
        failure_timeout_ms: _,
        heal,
        kill_at_min: _,
    } = welcome
    else {
        return Err(protocol_error("Welcome", &welcome));
    };
    if shard_start != meta.shard_start as u64
        || shard_len != meta.shard_len as u64
        || config.seed != meta.seed
    {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!(
                "rejoin mismatch: log holds shard {}+{} of seed {}, coordinator assigned \
                 {shard_start}+{shard_len} of seed {}",
                meta.shard_start, meta.shard_len, meta.seed, config.seed
            ),
        ));
    }
    let shard = shard_start as usize..(shard_start + shard_len) as usize;
    let mut obs = worker_obs(options, worker_index, shard_start, shard_len)?;
    let peer_addrs = register_shard(&mut transport, &shard)?;
    ctl.borrow_mut().send(&ClusterMsg::Hello {
        shard_start,
        peer_addrs,
        metrics_addr: obs.scrape.as_ref().map(|(server, _)| server.addr()),
    })?;
    let book = ctl.borrow_mut().recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::AddressBook { peer_addrs: book } = book else {
        return Err(protocol_error("AddressBook", &book));
    };
    for (peer, addr) in book {
        if !shard.contains(&(peer as usize)) {
            transport
                .register_remote(PeerId(peer), addr)
                .map_err(|e| Error::other(e.to_string()))?;
        }
    }
    let resume = ctl.borrow_mut().recv_timeout(HANDSHAKE_TIMEOUT)?;
    let ClusterMsg::Resume {
        epoch,
        phase: resume_phase,
    } = resume
    else {
        return Err(protocol_error("Resume", &resume));
    };

    let mut runtime = Runtime::with_transport_sharded(config.clone(), transport, shard.clone())
        .map_err(|e| Error::other(e.to_string()))?;
    if tracing {
        runtime.enable_tracing_with_base(worker_index as u64 + 1);
    }
    runtime.flight_dump = options.flight_dump.clone();

    // Replay: jump the fresh runtime's clock to the journaled instant (no
    // peer has joined yet, so only time moves), graft every mirrored peer
    // state on top, then start an anti-entropy diff against a live remote
    // replica for each — the crash window's lost mutations flow back as a
    // merge, not a full rebuild.
    runtime.run_until(meta.now_ms);
    let constructing = resume_phase >= PHASE_CONSTRUCTED;
    let images: Vec<(u32, pgrid_durable::MirrorImage)> = durable
        .images()
        .filter(|(key, _)| key.0 == 0)
        .map(|(key, image)| (key.1, image.clone()))
        .collect();
    let mut recovered: Vec<(u64, bool)> = Vec::with_capacity(images.len());
    for (peer, image) in &images {
        let routing: Vec<(u8, PeerId, Path)> = image
            .routing
            .iter()
            .map(|&(level, peer, path)| (level, PeerId(peer), path))
            .collect();
        let replicas: Vec<PeerId> = image.replicas.iter().map(|&p| PeerId(p)).collect();
        runtime.restore_peer(
            IndexId::PRIMARY,
            *peer as usize,
            image.path,
            image.entries.iter().copied().collect(),
            routing,
            replicas,
            constructing,
        );
        recovered.push((*peer as u64, true));
    }
    for (peer, image) in &images {
        let source = image
            .replicas
            .iter()
            .map(|&p| p as usize)
            .find(|&p| !runtime.hosted(p));
        if let Some(source) = source {
            runtime.begin_replica_diff(*peer as usize, source);
        }
    }
    pgrid_obs::info!(
        "cluster::worker",
        "worker {worker_index}: warm rejoin accepted — {} peers replayed from the log, \
         resuming at phase {resume_phase} (epoch {epoch})",
        recovered.len()
    );
    obs.control.lock().unwrap().note(
        runtime.now(),
        "recovery",
        format!(
            "warm rejoin: {} peers replayed, resume phase {resume_phase} epoch {epoch}",
            recovered.len()
        ),
    );

    let mut overlay = ShardOverlay {
        runtime,
        ctl: Rc::clone(&ctl),
        heal: HealState {
            heal,
            heartbeat_ms,
            last_heartbeat: Instant::now(),
            epoch,
            kill_at: None,
            pending: Vec::new(),
            worker_index,
        },
        durable: Some(durable),
        durable_phase: resume_phase,
    };
    ctl.borrow_mut()
        .send(&ClusterMsg::RecoveryDone { epoch, recovered })?;

    // Catch up to the parked barrier's boundary minute (peers exchange on
    // the way — the survivors answer from their park loops), then wait
    // for the release without re-reporting PhaseDone.
    let boundary = phase_boundary_min(&timeline, resume_phase) * MINUTE_MS;
    let deadline = Instant::now() + BARRIER_TIMEOUT;
    let mut proceeded = false;
    loop {
        if overlay.runtime.now() < boundary {
            let next = (overlay.runtime.now() + PACE_SLICE_MS).min(boundary);
            Overlay::advance_to(&mut overlay, next);
        } else if proceeded {
            break;
        } else {
            overlay.runtime.service_network();
            overlay.maybe_heartbeat();
            std::thread::sleep(Duration::from_micros(200));
        }
        let msg = ctl.borrow_mut().try_recv()?;
        match msg {
            Some(ClusterMsg::Proceed { phase }) if phase == resume_phase => proceeded = true,
            Some(ClusterMsg::WorkerFailed { epoch, .. }) => {
                overlay.heal.epoch = overlay.heal.epoch.max(epoch);
            }
            Some(ClusterMsg::ShardReassign { epoch, moves }) => {
                overlay.heal.epoch = overlay.heal.epoch.max(epoch);
                handle_reassign(&mut overlay, epoch, &moves, &mut obs)?;
            }
            Some(ClusterMsg::AddressBook { peer_addrs }) => {
                apply_book(&mut overlay, &peer_addrs);
                run_recovery(&mut overlay, &mut obs)?;
            }
            Some(other) => return Err(protocol_error("Proceed", &other)),
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!("resume barrier for phase {resume_phase} never released"),
                    ));
                }
            }
        }
    }

    // --- the remaining timeline ---------------------------------------------
    let scenario = resume_scenario(
        worker_scenario(&config, &timeline, worker_index, shard.len()),
        resume_phase,
    );
    let plan = barrier_plan(&scenario);
    let mut streamed_minutes: BTreeSet<u64> = BTreeSet::new();
    let mut hooks = BarrierHooks {
        streamed: &mut streamed_minutes,
        obs: &mut obs,
        plan,
    };
    pgrid_scenario::run_with_hooks(&mut overlay, &scenario, &mut hooks)?;

    send_report(
        &mut ctl.borrow_mut(),
        &overlay.runtime,
        shard_start,
        &mut streamed_minutes,
    )?;
    pgrid_obs::info!(
        "cluster::worker",
        "worker {worker_index}: shard report sent after warm rejoin, exiting"
    );
    if let Some((server, _)) = obs.scrape.take() {
        server.shutdown();
    }
    Ok(())
}

/// The timeline minute a barrier class completes at: where a rejoining
/// worker must advance to before waiting for that barrier's release.
fn phase_boundary_min(timeline: &Timeline, phase: u8) -> u64 {
    match phase {
        PHASE_JOINED => timeline.join_end_min,
        PHASE_REPLICATED => timeline.replicate_end_min,
        PHASE_CONSTRUCTED => timeline.construct_end_min,
        PHASE_QUERIED => timeline.query_end_min,
        PHASE_DONE => timeline.end_min,
        _ => 0,
    }
}

/// Drops every phase already covered by the barrier class the cluster is
/// parked at: a rejoining worker replays its log instead of re-running
/// them.  Classless phases (start-construction, churn windows) inherit the
/// class of the *next* classed phase, so construction arming is skipped on
/// a resume past the construct barrier while the churn window survives a
/// resume past the query barrier.
fn resume_scenario(mut scenario: Scenario, resume_phase: u8) -> Scenario {
    let mut classes: Vec<Option<u8>> = scenario
        .phases
        .iter()
        .map(|phase| match phase {
            Phase::JoinSchedule { .. } | Phase::JoinWave { .. } => Some(PHASE_JOINED),
            Phase::Replicate { .. } => Some(PHASE_REPLICATED),
            Phase::RunUntil { .. } | Phase::ConstructUntilQuiescent { .. } => {
                Some(PHASE_CONSTRUCTED)
            }
            Phase::QueryLoad { .. } | Phase::RangeLoad { .. } => Some(PHASE_QUERIED),
            Phase::Drain => Some(PHASE_DONE),
            _ => None,
        })
        .collect();
    let mut next = PHASE_DONE;
    for slot in classes.iter_mut().rev() {
        match *slot {
            Some(class) => next = class,
            None => *slot = Some(next),
        }
    }
    let mut index = 0;
    scenario.phases.retain(|_| {
        let keep = classes[index].expect("filled above") > resume_phase;
        index += 1;
        keep
    });
    scenario
}

/// The worker's phase program for one Section-5 timeline.
///
/// Query windows follow the executor's unified pacing semantics: the
/// virtual clock may overshoot a window boundary by up to one inter-query
/// step (exactly as the single-process driver does).  That is safe here
/// because phase boundaries are hard-synchronised at the coordinator
/// barriers anyway, every plan event falls strictly inside its window, and
/// workers' virtual clocks are only loosely coupled between barriers by
/// construction.
pub fn worker_scenario(
    config: &NetConfig,
    timeline: &Timeline,
    worker_index: u32,
    shard_len: usize,
) -> Scenario {
    let mut builder = Scenario::builder(config.seed)
        .raw_control_seed(config.seed ^ CONTROL_SEED_SALT ^ ((worker_index as u64) << 32))
        .join_schedule(timeline.join_end_min, join_plan(config, timeline))
        .replicate(IndexId::PRIMARY, timeline.replicate_end_min)
        .start_construction(IndexId::PRIMARY)
        .run_until(timeline.construct_end_min);
    // The optional range window between construction and the lookup load,
    // with the same bounds-width the single-process driver uses.
    if timeline.range_end_min > timeline.construct_end_min {
        builder = builder.range_load(
            IndexId::PRIMARY,
            timeline.range_end_min,
            shard_len,
            pgrid_scenario::RANGE_LOAD_WIDTH,
        );
    }
    builder
        .query_load_from(IndexId::PRIMARY, timeline.query_end_min, shard_len)
        .churn_schedule(
            timeline.end_min,
            churn_plan(config, timeline),
            Some(QuerySpec {
                index: IndexId::PRIMARY,
                issuers: shard_len,
            }),
        )
        .drain()
        .build()
}

/// Streams every completed, not-yet-reported bandwidth minute below
/// `before` to the coordinator.
fn stream_minutes<T: Transport>(
    ctl: &mut ControlChannel,
    runtime: &Runtime<T>,
    streamed: &mut BTreeSet<u64>,
    before: u64,
) -> Result<()> {
    let mut samples: Vec<(u64, u64, u64)> = runtime
        .metrics
        .bandwidth_per_minute
        .iter()
        .filter(|(&minute, _)| minute < before && !streamed.contains(&minute))
        .map(|(&minute, bw)| (minute, bw.maintenance_bytes as u64, bw.query_bytes as u64))
        .collect();
    samples.sort_unstable();
    if samples.is_empty() {
        return Ok(());
    }
    for &(minute, _, _) in &samples {
        streamed.insert(minute);
    }
    ctl.send(&ClusterMsg::Minutes { samples })
}

/// Takes over the endpoints of every orphan reassigned to this worker,
/// adopts the peers, and reports the fresh listen addresses; the actual
/// state rebuild waits for the updated address book (see [`run_recovery`]).
fn handle_reassign<T: SocketTransport>(
    overlay: &mut ShardOverlay<T>,
    epoch: u64,
    moves: &[ReassignMove],
    obs: &mut WorkerObs,
) -> Result<()> {
    let mut addrs: Vec<(u64, SocketAddr)> = Vec::new();
    for m in moves
        .iter()
        .filter(|m| m.to_worker == overlay.heal.worker_index)
    {
        let peer = m.peer as usize;
        let addr = overlay
            .runtime
            .transport_mut()
            .register_takeover(PeerId(m.peer))
            .map_err(|e| Error::other(e.to_string()))?;
        let PeerAddr::Socket(sock) = addr else {
            unreachable!("the TCP backend returns socket addresses");
        };
        overlay.runtime.adopt_peer(peer);
        overlay
            .heal
            .pending
            .push((peer, m.source_peer as usize, m.path));
        addrs.push((m.peer, sock));
        obs.control.lock().unwrap().note(
            overlay.runtime.now(),
            "recovery",
            format!(
                "epoch={epoch} adopting peer {peer} (source hint {})",
                m.source_peer
            ),
        );
    }
    if !addrs.is_empty() {
        overlay.ctl.borrow_mut().send(&ClusterMsg::RecoveryAddrs {
            epoch,
            peer_addrs: addrs,
        })?;
    }
    Ok(())
}

/// Re-points every non-hosted peer at its (possibly moved) endpoint and
/// clears the link state towards it: a peer that was unreachable because
/// its worker died is reachable again once a survivor re-hosts it.
fn apply_book<T: SocketTransport>(overlay: &mut ShardOverlay<T>, book: &[(u64, SocketAddr)]) {
    for &(peer, addr) in book {
        let p = peer as usize;
        if overlay.runtime.hosted(p) {
            continue;
        }
        // A book entry the transport does not know (it never spoke to the
        // peer) is not an error worth failing recovery over.
        let _ = overlay
            .runtime
            .transport_mut()
            .update_remote(PeerId(peer), addr);
        overlay.runtime.set_peer_addr(p, PeerAddr::Socket(addr));
    }
}

/// Rebuilds every pending adoption: replica pulls over the data plane
/// (local replica scan first, then the coordinator's hint), the seeded
/// local regeneration as the fallback, and a `RecoveryDone` acknowledgment
/// once the shard is whole again.
fn run_recovery<T: SocketTransport>(
    overlay: &mut ShardOverlay<T>,
    obs: &mut WorkerObs,
) -> Result<()> {
    if overlay.heal.pending.is_empty() {
        return Ok(());
    }
    let pending = std::mem::take(&mut overlay.heal.pending);
    let epoch = overlay.heal.epoch;
    let mut local: BTreeSet<usize> = BTreeSet::new();
    let source_of = |overlay: &ShardOverlay<T>, peer: usize, hint: usize| {
        overlay
            .runtime
            .find_replica_source(peer)
            .or_else(|| (hint != peer).then_some(hint))
    };
    for &(peer, hint, path) in &pending {
        match source_of(overlay, peer, hint) {
            Some(source) => overlay.runtime.begin_replica_pull(peer, source),
            None => {
                overlay.runtime.recover_locally(peer, path);
                local.insert(peer);
            }
        }
    }
    // Drive the data plane until every pull is answered.  Pulls ride
    // scheduled messages like all traffic, so the virtual clock inches
    // forward (bounded — the next phase re-synchronises at its barrier);
    // unanswered pulls are re-issued in case the first one raced the
    // address-book update on the source's side, and the wall-clock bound
    // plus the local fallback guarantee termination even if every replica
    // died with the worker.
    let wall_deadline = Instant::now() + RECOVERY_SETTLE;
    let virtual_cap = overlay.runtime.now() + RECOVERY_VIRTUAL_MS;
    // Config-driven re-issue pacing with capped exponential backoff: a
    // large recovery fans its retries out instead of hammering the same
    // sources on a fixed clock.
    let retry_base =
        Duration::from_millis(overlay.runtime.config.recovery_retry_ms.clamp(1, 60_000));
    let retry_cap = Duration::from_millis(
        overlay
            .runtime
            .config
            .recovery_retry_max_ms
            .clamp(overlay.runtime.config.recovery_retry_ms.max(1), 600_000),
    );
    let mut retry_delay = retry_base;
    let mut next_retry = Instant::now() + retry_delay;
    while overlay.runtime.pending_recoveries() > 0 && Instant::now() < wall_deadline {
        overlay.runtime.service_network();
        let now = overlay.runtime.now();
        if now < virtual_cap {
            overlay.runtime.run_until(now + 10);
        }
        overlay.maybe_heartbeat();
        if Instant::now() >= next_retry {
            for peer in overlay.runtime.recovering_peers() {
                let hint = pending
                    .iter()
                    .find(|&&(p, _, _)| p == peer)
                    .map_or(peer, |&(_, hint, _)| hint);
                if let Some(source) = source_of(overlay, peer, hint) {
                    overlay.runtime.begin_replica_pull(peer, source);
                }
            }
            retry_delay = (retry_delay * 2).min(retry_cap);
            next_retry = Instant::now() + retry_delay;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for peer in overlay.runtime.recovering_peers() {
        let path = pending
            .iter()
            .find(|&&(p, _, _)| p == peer)
            .map_or_else(Path::root, |&(_, _, path)| path);
        overlay.runtime.recover_locally(peer, path);
        local.insert(peer);
    }
    let recovered: Vec<(u64, bool)> = pending
        .iter()
        .map(|&(peer, _, _)| (peer as u64, !local.contains(&peer)))
        .collect();
    obs.control.lock().unwrap().note(
        overlay.runtime.now(),
        "recovery",
        format!(
            "epoch={epoch} rebuilt {} peers ({} from replicas)",
            recovered.len(),
            recovered.iter().filter(|(_, via)| *via).count()
        ),
    );
    pgrid_obs::info!(
        "cluster::worker",
        "worker {}: rebuilt {} adopted peers ({} from replicas, {} locally)",
        overlay.heal.worker_index,
        recovered.len(),
        recovered.iter().filter(|(_, via)| *via).count(),
        local.len()
    );
    overlay
        .ctl
        .borrow_mut()
        .send(&ClusterMsg::RecoveryDone { epoch, recovered })?;
    Ok(())
}

/// Reports the end of `phase` and parks until the coordinator releases the
/// barrier, servicing the data transport (and the healing protocol) the
/// whole time.
fn barrier<T: SocketTransport>(
    overlay: &mut ShardOverlay<T>,
    phase: u8,
    streamed: &mut BTreeSet<u64>,
    obs: &mut WorkerObs,
) -> Result<()> {
    let ctl = Rc::clone(&overlay.ctl);
    // Let stragglers from faster shards drain before declaring the phase
    // over: keep answering until the wire stays quiet for a moment.
    let mut quiet_since = Instant::now();
    let grace_deadline = Instant::now() + Duration::from_millis(400);
    loop {
        if overlay.runtime.service_network() > 0 {
            quiet_since = Instant::now();
        } else if quiet_since.elapsed() >= Duration::from_millis(20)
            || Instant::now() >= grace_deadline
        {
            break;
        } else {
            std::thread::sleep(Duration::from_micros(200));
        }
        overlay.maybe_heartbeat();
    }
    // The phase is complete: journal it (and the settled shard state)
    // before telling the coordinator, so a crash while parked replays to
    // exactly this barrier.
    overlay.durable_phase = phase;
    overlay.persist();
    // Buckets below the current minute can no longer grow in this phase.
    stream_minutes(
        &mut ctl.borrow_mut(),
        &overlay.runtime,
        streamed,
        overlay.runtime.now() / MINUTE_MS,
    )?;
    // Fresh registry snapshot and drained trace events ride along with
    // every barrier, so the coordinator's merged view stays current.
    obs.publish(
        &mut ctl.borrow_mut(),
        &mut overlay.runtime,
        overlay.durable.as_ref(),
        phase,
    )?;
    if overlay.heal.heal {
        // The coordinator keeps every peer's last barrier path: the raw
        // material of replica hints and of partial reports for unhealed
        // shards.
        let paths: Vec<Path> = overlay
            .runtime
            .shard()
            .map(|peer| overlay.runtime.nodes[peer].state.path)
            .collect();
        ctl.borrow_mut().send(&ClusterMsg::ShardPaths {
            shard_start: overlay.runtime.shard().start as u64,
            paths,
        })?;
    }
    pgrid_obs::debug!(
        "cluster::worker",
        "worker {}: phase {phase} done at virtual minute {}",
        obs.worker_index,
        overlay.runtime.now() / MINUTE_MS
    );
    ctl.borrow_mut().send(&ClusterMsg::PhaseDone { phase })?;
    let deadline = Instant::now() + BARRIER_TIMEOUT;
    loop {
        overlay.runtime.service_network();
        overlay.maybe_heartbeat();
        let msg = ctl.borrow_mut().try_recv()?;
        match msg {
            Some(ClusterMsg::Proceed { phase: p }) if p == phase => return Ok(()),
            Some(ClusterMsg::WorkerFailed {
                epoch,
                worker_index,
                shard_start,
                shard_len,
            }) => {
                overlay.heal.epoch = overlay.heal.epoch.max(epoch);
                pgrid_obs::info!(
                    "cluster::worker",
                    "worker {}: told worker {worker_index} died \
                     (shard {shard_start}+{shard_len}, epoch {epoch})",
                    overlay.heal.worker_index
                );
            }
            Some(ClusterMsg::ShardReassign { epoch, moves }) => {
                overlay.heal.epoch = overlay.heal.epoch.max(epoch);
                handle_reassign(overlay, epoch, &moves, obs)?;
            }
            Some(ClusterMsg::AddressBook { peer_addrs }) => {
                apply_book(overlay, &peer_addrs);
                run_recovery(overlay, obs)?;
            }
            Some(other) => return Err(protocol_error("Proceed", &other)),
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!("barrier for phase {phase} never released"),
                    ));
                }
            }
        }
    }
}
