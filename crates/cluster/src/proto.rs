//! Rendezvous wire protocol between the coordinator and its workers.
//!
//! The control plane is deliberately tiny: one TCP connection per worker,
//! carrying [`ClusterMsg`]s as single-payload frames (the same
//! length-prefixed framing the data plane uses, so both sides reuse
//! [`pgrid_transport::frame::FrameReader`] for reassembly).  The lifecycle
//! is:
//!
//! ```text
//! worker                          coordinator
//!   | ---------- connect ------------> |
//!   | <--------- Welcome ------------- |   shard assignment + run config
//!   | ---------- Hello --------------> |   per-peer listen addresses
//!   | <--------- AddressBook --------- |   all peers of all shards
//!   |                                  |
//!   | ---- Minutes*, PhaseDone(p) ---> |   per phase p = 0..=5
//!   | <--------- Proceed(p) ---------- |   barrier release
//!   |                                  |
//!   | ---- Minutes*, Report ---------> |   final shard report
//! ```
//!
//! Like the peer protocol, the codec is a hand-rolled big-endian binary
//! format over [`bytes`]: no registry dependencies, self-describing enough
//! for round-trip tests, and versioned by a leading magic/version pair so a
//! stale worker fails loudly instead of mis-parsing.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pgrid_core::histogram::LogHistogram;
use pgrid_core::index::IndexId;
use pgrid_core::path::Path;
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::{MinuteLatency, NetConfig, QueryAggregates};
use pgrid_transport::frame::{decode_frame, encode_frame, FrameReader};
use pgrid_transport::{LinkStats, ReactorStats, TransportStats};
use pgrid_workload::distributions::Distribution;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Protocol magic, checked on every message.
const MAGIC: u16 = 0x5047; // "PG"
/// Protocol version; bump on any wire-format change.
///
/// v5 adds the self-healing control plane: liveness heartbeats, membership
/// epochs, and the worker-failure / shard-reassignment / recovery messages.
///
/// v6 adds the warm-restart handshake (`Rejoin` / `Resume`: a relaunched
/// worker offers its durability-log shard back instead of waiting for a
/// `Welcome`) and the replica-pull retry pacing fields of the run config.
const VERSION: u8 = 7;

/// Phases of the Section-5 timeline the cluster barriers on, in order.
pub const PHASE_WIRED: u8 = 0;
/// All peers joined the unstructured overlay.
pub const PHASE_JOINED: u8 = 1;
/// Replication pushes flushed.
pub const PHASE_REPLICATED: u8 = 2;
/// Construction window over.
pub const PHASE_CONSTRUCTED: u8 = 3;
/// Query window over.
pub const PHASE_QUERIED: u8 = 4;
/// Churn window over and outstanding queries drained.
pub const PHASE_DONE: u8 = 5;

/// One worker shard's final contribution to the merged report.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardReport {
    /// First peer id of the shard.
    pub shard_start: u64,
    /// Final path of every hosted peer, in shard order.
    pub paths: Vec<Path>,
    /// Per-index query aggregates of the shard (bounded-size histograms
    /// instead of raw per-query records; the coordinator folds them with
    /// [`QueryAggregates::merge`]).
    pub query_stats: Vec<(IndexId, QueryAggregates)>,
    /// Hosted peers online when the run ended.
    pub online_at_end: u64,
    /// The worker's transport counters, including its per-peer link stats
    /// (send side keyed by destination, receive side by hosted peer); the
    /// coordinator folds the shards together with
    /// [`TransportStats::merge`].
    pub transport: TransportStats,
    /// Protocol messages delivered to hosted peers.
    pub messages_delivered: u64,
    /// Protocol messages lost (emulated loss + broken connections).
    pub messages_lost: u64,
    /// Final `(peer id, path)` of peers this worker *adopted* from a dead
    /// worker during recovery (empty on a healthy run); the coordinator
    /// merges them at their global indices like the shard paths.
    pub extra_paths: Vec<(u64, Path)>,
}

/// One peer being moved off a dead worker during recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct ReassignMove {
    /// The orphaned peer.
    pub peer: u64,
    /// Index of the surviving (or replacement) worker that adopts it.
    pub to_worker: u32,
    /// A live peer believed to replicate the orphan's partition (the
    /// coordinator's longest-common-prefix hint); equal to `peer` when no
    /// candidate is known, in which case the adopter recovers locally from
    /// the seeded regeneration.
    pub source_peer: u64,
    /// The orphan's last path the coordinator observed at a barrier (the
    /// local-recovery fallback path).
    pub path: Path,
}

/// A control-plane message.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterMsg {
    /// Coordinator → worker: shard assignment and the run configuration.
    Welcome {
        /// Index of this worker (0-based, in accept order).
        worker_index: u32,
        /// Total number of workers in the cluster.
        n_workers: u32,
        /// First peer id of the assigned shard.
        shard_start: u64,
        /// Number of peers in the assigned shard.
        shard_len: u64,
        /// Deployment configuration (identical for every worker).
        config: NetConfig,
        /// Phase boundaries of the timeline.
        timeline: Timeline,
        /// Whether the worker must enable structured tracing (with its
        /// worker index as the trace-ID base, so merged IDs never
        /// collide).
        tracing: bool,
        /// Wall-clock interval between worker liveness heartbeats
        /// (milliseconds; `0` disables heartbeats).
        heartbeat_ms: u64,
        /// Wall-clock silence after which the coordinator declares this
        /// worker dead (milliseconds).
        failure_timeout_ms: u64,
        /// Whether the coordinator heals worker failures (reassigns the
        /// dead shard to survivors) instead of merely recording them.
        heal: bool,
        /// Fault injection: virtual minute at which this worker must kill
        /// its own process (`None` for all workers of a healthy run).
        kill_at_min: Option<u64>,
    },
    /// Worker → coordinator: listen addresses of the hosted peers.
    Hello {
        /// First peer id of the shard (echo of the assignment).
        shard_start: u64,
        /// `(peer id, socket address)` of every hosted peer.
        peer_addrs: Vec<(u64, SocketAddr)>,
        /// Address of the worker's `/metrics` scrape endpoint, when one
        /// is serving.
        metrics_addr: Option<SocketAddr>,
    },
    /// Coordinator → worker: the address book of the whole cluster.
    AddressBook {
        /// `(peer id, socket address)` of every peer of every shard.
        peer_addrs: Vec<(u64, SocketAddr)>,
    },
    /// Worker → coordinator: the local timeline reached the end of `phase`.
    PhaseDone {
        /// One of the `PHASE_*` constants.
        phase: u8,
    },
    /// Coordinator → worker: every worker finished `phase`; continue.
    Proceed {
        /// One of the `PHASE_*` constants.
        phase: u8,
    },
    /// Worker → coordinator: freshly completed per-minute bandwidth
    /// buckets, streamed at each barrier (and once more with the final
    /// report).
    Minutes {
        /// `(minute bucket, maintenance bytes, query bytes)` triples.
        samples: Vec<(u64, u64, u64)>,
    },
    /// Worker → coordinator: trace events drained at a phase barrier.
    /// Only sent while tracing is enabled; the coordinator merges the
    /// batches into cluster-wide hop chains.
    TraceBatch {
        /// The drained events, in recording order.
        events: Vec<pgrid_obs::trace::TraceEvent>,
    },
    /// Worker → coordinator: the worker's current metrics registry
    /// (encoded with [`pgrid_obs::registry::MetricsRegistry::encode_wire`]),
    /// streamed at each phase barrier so the coordinator's merged
    /// `/metrics` view stays fresh mid-run.
    MetricsSnapshot {
        /// The wire-encoded registry snapshot.
        registry: Vec<u8>,
    },
    /// Worker → coordinator: the shard's final report.
    Report(ShardReport),
    /// Worker → coordinator: periodic liveness signal, carrying the
    /// membership epoch the worker currently believes in.
    Heartbeat {
        /// The worker's current membership epoch.
        epoch: u64,
    },
    /// Worker → coordinator: current paths of the originally assigned
    /// shard, sent at every barrier while healing is enabled — the
    /// coordinator's raw material for replica hints and partial reports.
    ShardPaths {
        /// First peer id of the shard.
        shard_start: u64,
        /// Current path of every originally hosted peer, in shard order.
        paths: Vec<Path>,
    },
    /// Coordinator → workers: a worker died; a new membership epoch
    /// begins.
    WorkerFailed {
        /// The new membership epoch.
        epoch: u64,
        /// Index of the dead worker.
        worker_index: u32,
        /// First peer id of the orphaned shard.
        shard_start: u64,
        /// Number of orphaned peers.
        shard_len: u64,
    },
    /// Coordinator → workers: how the orphaned peers are redistributed.
    /// Every worker receives the full move list; each adopts the moves
    /// targeting its own index and learns which endpoints will re-appear
    /// elsewhere.
    ShardReassign {
        /// The membership epoch these moves belong to.
        epoch: u64,
        /// One entry per orphaned peer.
        moves: Vec<ReassignMove>,
    },
    /// Worker → coordinator: the listen addresses of the endpoints this
    /// worker just took over, to be folded into a fresh address book.
    RecoveryAddrs {
        /// The membership epoch of the takeover.
        epoch: u64,
        /// `(peer id, socket address)` of every adopted endpoint.
        peer_addrs: Vec<(u64, SocketAddr)>,
    },
    /// Worker → coordinator: state rebuild of the adopted peers finished;
    /// the barrier may release.
    RecoveryDone {
        /// The membership epoch of the recovery.
        epoch: u64,
        /// `(peer id, via_replica)` per recovered peer: `true` when the
        /// state was pulled from a live replica, `false` for the seeded
        /// local fallback.
        recovered: Vec<(u64, bool)>,
    },
    /// Relaunched worker → coordinator: the first message of a warm
    /// restart.  A fresh worker waits silently for a `Welcome`; a worker
    /// relaunched over a durability log speaks first and offers its
    /// retained shard back, so the coordinator can prefer it over
    /// round-robin reassignment during a healing round.
    Rejoin {
        /// First peer id of the shard the durability log holds.
        shard_start: u64,
        /// Number of peers in that shard.
        shard_len: u64,
        /// The membership epoch the log last recorded.
        epoch: u64,
        /// The `PHASE_*` barrier class the log last recorded.
        phase: u8,
        /// Virtual time the log last recorded, in milliseconds.
        now_ms: u64,
        /// The run seed the log belongs to (the coordinator rejects a
        /// rejoin from a different run).
        seed: u64,
    },
    /// Coordinator → relaunched worker: accepts the rejoin (follows the
    /// `Welcome` that re-assigns the retained shard) and tells the worker
    /// which barrier class the run is currently in, so it can pace its
    /// replayed runtime forward and skip the already-executed phases.
    Resume {
        /// The current membership epoch.
        epoch: u64,
        /// The `PHASE_*` class the cluster is currently executing.
        phase: u8,
    },
}

impl ClusterMsg {
    /// Encodes the message (including the magic/version header).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16(MAGIC);
        buf.put_u8(VERSION);
        match self {
            ClusterMsg::Welcome {
                worker_index,
                n_workers,
                shard_start,
                shard_len,
                config,
                timeline,
                tracing,
                heartbeat_ms,
                failure_timeout_ms,
                heal,
                kill_at_min,
            } => {
                buf.put_u8(0);
                buf.put_u32(*worker_index);
                buf.put_u32(*n_workers);
                buf.put_u64(*shard_start);
                buf.put_u64(*shard_len);
                put_config(&mut buf, config);
                put_timeline(&mut buf, timeline);
                buf.put_u8(*tracing as u8);
                buf.put_u64(*heartbeat_ms);
                buf.put_u64(*failure_timeout_ms);
                buf.put_u8(*heal as u8);
                match kill_at_min {
                    Some(at) => {
                        buf.put_u8(1);
                        buf.put_u64(*at);
                    }
                    None => buf.put_u8(0),
                }
            }
            ClusterMsg::Hello {
                shard_start,
                peer_addrs,
                metrics_addr,
            } => {
                buf.put_u8(1);
                buf.put_u64(*shard_start);
                put_addrs(&mut buf, peer_addrs);
                match metrics_addr {
                    Some(addr) => {
                        buf.put_u8(1);
                        put_addr(&mut buf, addr);
                    }
                    None => buf.put_u8(0),
                }
            }
            ClusterMsg::AddressBook { peer_addrs } => {
                buf.put_u8(2);
                put_addrs(&mut buf, peer_addrs);
            }
            ClusterMsg::PhaseDone { phase } => {
                buf.put_u8(3);
                buf.put_u8(*phase);
            }
            ClusterMsg::Proceed { phase } => {
                buf.put_u8(4);
                buf.put_u8(*phase);
            }
            ClusterMsg::Minutes { samples } => {
                buf.put_u8(5);
                buf.put_u32(samples.len() as u32);
                for (minute, maintenance, query) in samples {
                    buf.put_u64(*minute);
                    buf.put_u64(*maintenance);
                    buf.put_u64(*query);
                }
            }
            ClusterMsg::TraceBatch { events } => {
                buf.put_u8(7);
                buf.put_u32(events.len() as u32);
                for event in events {
                    buf.put_u64(event.trace_id);
                    put_str(&mut buf, event.kind);
                    buf.put_u64(event.peer);
                    buf.put_u64(event.virtual_ms);
                    buf.put_u64(event.wall_micros);
                    put_str(&mut buf, &event.detail);
                }
            }
            ClusterMsg::MetricsSnapshot { registry } => {
                buf.put_u8(8);
                buf.put_u32(registry.len() as u32);
                buf.put_slice(registry);
            }
            ClusterMsg::Report(report) => {
                buf.put_u8(6);
                buf.put_u64(report.shard_start);
                buf.put_u32(report.paths.len() as u32);
                for path in &report.paths {
                    put_path(&mut buf, path);
                }
                buf.put_u32(report.query_stats.len() as u32);
                for (index, stats) in &report.query_stats {
                    buf.put_u16(index.0);
                    put_aggregates(&mut buf, stats);
                }
                buf.put_u64(report.online_at_end);
                buf.put_u64(report.transport.frames_sent);
                buf.put_u64(report.transport.frames_delivered);
                buf.put_u64(report.transport.bytes_sent);
                buf.put_u64(report.transport.bytes_delivered);
                buf.put_u32(report.transport.per_peer.len() as u32);
                for (&peer, link) in &report.transport.per_peer {
                    buf.put_u64(peer);
                    buf.put_u64(link.frames_sent);
                    buf.put_u64(link.bytes_sent);
                    buf.put_u64(link.frames_received);
                    buf.put_u64(link.bytes_received);
                    buf.put_u64(link.reconnects);
                    buf.put_u64(link.send_failures);
                }
                // v7: frame-compression counters and the optional reactor
                // block (flag byte, then the eight reactor fields).
                buf.put_u64(report.transport.frames_compressed);
                buf.put_u64(report.transport.compressed_bytes_raw);
                buf.put_u64(report.transport.compressed_bytes_wire);
                match &report.transport.reactor {
                    Some(reactor) => {
                        buf.put_u8(1);
                        buf.put_u64(reactor.registered_peers);
                        buf.put_u64(reactor.registered_fds);
                        buf.put_u64(reactor.epoll_wakeups);
                        buf.put_u64(reactor.write_queue_frames);
                        buf.put_u64(reactor.write_queue_bytes);
                        buf.put_u64(reactor.partial_writes);
                        buf.put_u64(reactor.reconnects);
                        buf.put_u64(reactor.dropped_frames);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u64(report.messages_delivered);
                buf.put_u64(report.messages_lost);
                buf.put_u32(report.extra_paths.len() as u32);
                for (peer, path) in &report.extra_paths {
                    buf.put_u64(*peer);
                    put_path(&mut buf, path);
                }
            }
            ClusterMsg::Heartbeat { epoch } => {
                buf.put_u8(9);
                buf.put_u64(*epoch);
            }
            ClusterMsg::ShardPaths { shard_start, paths } => {
                buf.put_u8(10);
                buf.put_u64(*shard_start);
                buf.put_u32(paths.len() as u32);
                for path in paths {
                    put_path(&mut buf, path);
                }
            }
            ClusterMsg::WorkerFailed {
                epoch,
                worker_index,
                shard_start,
                shard_len,
            } => {
                buf.put_u8(11);
                buf.put_u64(*epoch);
                buf.put_u32(*worker_index);
                buf.put_u64(*shard_start);
                buf.put_u64(*shard_len);
            }
            ClusterMsg::ShardReassign { epoch, moves } => {
                buf.put_u8(12);
                buf.put_u64(*epoch);
                buf.put_u32(moves.len() as u32);
                for m in moves {
                    buf.put_u64(m.peer);
                    buf.put_u32(m.to_worker);
                    buf.put_u64(m.source_peer);
                    put_path(&mut buf, &m.path);
                }
            }
            ClusterMsg::RecoveryAddrs { epoch, peer_addrs } => {
                buf.put_u8(13);
                buf.put_u64(*epoch);
                put_addrs(&mut buf, peer_addrs);
            }
            ClusterMsg::RecoveryDone { epoch, recovered } => {
                buf.put_u8(14);
                buf.put_u64(*epoch);
                buf.put_u32(recovered.len() as u32);
                for (peer, via_replica) in recovered {
                    buf.put_u64(*peer);
                    buf.put_u8(*via_replica as u8);
                }
            }
            ClusterMsg::Rejoin {
                shard_start,
                shard_len,
                epoch,
                phase,
                now_ms,
                seed,
            } => {
                buf.put_u8(15);
                buf.put_u64(*shard_start);
                buf.put_u64(*shard_len);
                buf.put_u64(*epoch);
                buf.put_u8(*phase);
                buf.put_u64(*now_ms);
                buf.put_u64(*seed);
            }
            ClusterMsg::Resume { epoch, phase } => {
                buf.put_u8(16);
                buf.put_u64(*epoch);
                buf.put_u8(*phase);
            }
        }
        buf.freeze()
    }

    /// Decodes a message previously produced by [`ClusterMsg::encode`];
    /// `None` for malformed input or a version mismatch.
    pub fn decode(mut data: Bytes) -> Option<ClusterMsg> {
        if get_u16(&mut data)? != MAGIC || get_u8(&mut data)? != VERSION {
            return None;
        }
        Some(match get_u8(&mut data)? {
            0 => ClusterMsg::Welcome {
                worker_index: get_u32(&mut data)?,
                n_workers: get_u32(&mut data)?,
                shard_start: get_u64(&mut data)?,
                shard_len: get_u64(&mut data)?,
                config: get_config(&mut data)?,
                timeline: get_timeline(&mut data)?,
                tracing: get_u8(&mut data)? != 0,
                heartbeat_ms: get_u64(&mut data)?,
                failure_timeout_ms: get_u64(&mut data)?,
                heal: get_u8(&mut data)? != 0,
                kill_at_min: match get_u8(&mut data)? {
                    0 => None,
                    1 => Some(get_u64(&mut data)?),
                    _ => return None,
                },
            },
            1 => ClusterMsg::Hello {
                shard_start: get_u64(&mut data)?,
                peer_addrs: get_addrs(&mut data)?,
                metrics_addr: match get_u8(&mut data)? {
                    0 => None,
                    1 => Some(get_addr(&mut data)?),
                    _ => return None,
                },
            },
            2 => ClusterMsg::AddressBook {
                peer_addrs: get_addrs(&mut data)?,
            },
            3 => ClusterMsg::PhaseDone {
                phase: get_u8(&mut data)?,
            },
            4 => ClusterMsg::Proceed {
                phase: get_u8(&mut data)?,
            },
            5 => {
                let n = get_u32(&mut data)? as usize;
                if n > 1 << 20 {
                    return None;
                }
                let mut samples = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    samples.push((
                        get_u64(&mut data)?,
                        get_u64(&mut data)?,
                        get_u64(&mut data)?,
                    ));
                }
                ClusterMsg::Minutes { samples }
            }
            7 => {
                let n = get_u32(&mut data)? as usize;
                if n > 1 << 20 {
                    return None;
                }
                let mut events = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let trace_id = get_u64(&mut data)?;
                    let kind = pgrid_obs::trace::intern_kind(&get_string(&mut data)?);
                    events.push(pgrid_obs::trace::TraceEvent {
                        trace_id,
                        kind,
                        peer: get_u64(&mut data)?,
                        virtual_ms: get_u64(&mut data)?,
                        wall_micros: get_u64(&mut data)?,
                        detail: get_string(&mut data)?,
                    });
                }
                ClusterMsg::TraceBatch { events }
            }
            8 => {
                let len = get_u32(&mut data)? as usize;
                if len > 1 << 26 || data.remaining() < len {
                    return None;
                }
                let registry = data.split_to(len).as_slice().to_vec();
                ClusterMsg::MetricsSnapshot { registry }
            }
            6 => {
                let shard_start = get_u64(&mut data)?;
                let n_paths = get_u32(&mut data)? as usize;
                if n_paths > 1 << 24 {
                    return None;
                }
                let mut paths = Vec::with_capacity(n_paths.min(65536));
                for _ in 0..n_paths {
                    paths.push(get_path(&mut data)?);
                }
                let n_indexes = get_u32(&mut data)? as usize;
                if n_indexes > 1 << 16 {
                    return None;
                }
                let mut query_stats = Vec::with_capacity(n_indexes.min(1024));
                for _ in 0..n_indexes {
                    let index = IndexId(get_u16(&mut data)?);
                    query_stats.push((index, get_aggregates(&mut data)?));
                }
                let online_at_end = get_u64(&mut data)?;
                let mut transport = TransportStats {
                    frames_sent: get_u64(&mut data)?,
                    frames_delivered: get_u64(&mut data)?,
                    bytes_sent: get_u64(&mut data)?,
                    bytes_delivered: get_u64(&mut data)?,
                    ..TransportStats::default()
                };
                let n_links = get_u32(&mut data)? as usize;
                if n_links > 1 << 24 {
                    return None;
                }
                for _ in 0..n_links {
                    let peer = get_u64(&mut data)?;
                    let link = LinkStats {
                        frames_sent: get_u64(&mut data)?,
                        bytes_sent: get_u64(&mut data)?,
                        frames_received: get_u64(&mut data)?,
                        bytes_received: get_u64(&mut data)?,
                        reconnects: get_u64(&mut data)?,
                        send_failures: get_u64(&mut data)?,
                    };
                    transport.per_peer.insert(peer, link);
                }
                transport.frames_compressed = get_u64(&mut data)?;
                transport.compressed_bytes_raw = get_u64(&mut data)?;
                transport.compressed_bytes_wire = get_u64(&mut data)?;
                if get_u8(&mut data)? != 0 {
                    transport.reactor = Some(ReactorStats {
                        registered_peers: get_u64(&mut data)?,
                        registered_fds: get_u64(&mut data)?,
                        epoll_wakeups: get_u64(&mut data)?,
                        write_queue_frames: get_u64(&mut data)?,
                        write_queue_bytes: get_u64(&mut data)?,
                        partial_writes: get_u64(&mut data)?,
                        reconnects: get_u64(&mut data)?,
                        dropped_frames: get_u64(&mut data)?,
                    });
                }
                let messages_delivered = get_u64(&mut data)?;
                let messages_lost = get_u64(&mut data)?;
                let n_extra = get_u32(&mut data)? as usize;
                if n_extra > 1 << 24 {
                    return None;
                }
                let mut extra_paths = Vec::with_capacity(n_extra.min(65536));
                for _ in 0..n_extra {
                    let peer = get_u64(&mut data)?;
                    extra_paths.push((peer, get_path(&mut data)?));
                }
                ClusterMsg::Report(ShardReport {
                    shard_start,
                    paths,
                    query_stats,
                    online_at_end,
                    transport,
                    messages_delivered,
                    messages_lost,
                    extra_paths,
                })
            }
            9 => ClusterMsg::Heartbeat {
                epoch: get_u64(&mut data)?,
            },
            10 => {
                let shard_start = get_u64(&mut data)?;
                let n = get_u32(&mut data)? as usize;
                if n > 1 << 24 {
                    return None;
                }
                let mut paths = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    paths.push(get_path(&mut data)?);
                }
                ClusterMsg::ShardPaths { shard_start, paths }
            }
            11 => ClusterMsg::WorkerFailed {
                epoch: get_u64(&mut data)?,
                worker_index: get_u32(&mut data)?,
                shard_start: get_u64(&mut data)?,
                shard_len: get_u64(&mut data)?,
            },
            12 => {
                let epoch = get_u64(&mut data)?;
                let n = get_u32(&mut data)? as usize;
                if n > 1 << 24 {
                    return None;
                }
                let mut moves = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    moves.push(ReassignMove {
                        peer: get_u64(&mut data)?,
                        to_worker: get_u32(&mut data)?,
                        source_peer: get_u64(&mut data)?,
                        path: get_path(&mut data)?,
                    });
                }
                ClusterMsg::ShardReassign { epoch, moves }
            }
            13 => ClusterMsg::RecoveryAddrs {
                epoch: get_u64(&mut data)?,
                peer_addrs: get_addrs(&mut data)?,
            },
            14 => {
                let epoch = get_u64(&mut data)?;
                let n = get_u32(&mut data)? as usize;
                if n > 1 << 24 {
                    return None;
                }
                let mut recovered = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    let peer = get_u64(&mut data)?;
                    recovered.push((peer, get_u8(&mut data)? != 0));
                }
                ClusterMsg::RecoveryDone { epoch, recovered }
            }
            15 => ClusterMsg::Rejoin {
                shard_start: get_u64(&mut data)?,
                shard_len: get_u64(&mut data)?,
                epoch: get_u64(&mut data)?,
                phase: get_u8(&mut data)?,
                now_ms: get_u64(&mut data)?,
                seed: get_u64(&mut data)?,
            },
            16 => ClusterMsg::Resume {
                epoch: get_u64(&mut data)?,
                phase: get_u8(&mut data)?,
            },
            _ => return None,
        })
    }
}

// ----- field codecs ----------------------------------------------------------

fn put_config(buf: &mut BytesMut, config: &NetConfig) {
    buf.put_u64(config.n_peers as u64);
    buf.put_u64(config.keys_per_peer as u64);
    buf.put_u64(config.n_min as u64);
    match config.delta_max {
        Some(d) => {
            buf.put_u8(1);
            buf.put_u64(d as u64);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64(config.latency_min_ms);
    buf.put_u64(config.latency_max_ms);
    buf.put_f64(config.loss_probability);
    buf.put_u64(config.construct_interval_ms);
    buf.put_u64(config.query_timeout_ms);
    buf.put_u64(config.routing_fanout as u64);
    buf.put_u64(config.seed);
    match config.distribution {
        Distribution::Uniform => buf.put_u8(0),
        Distribution::Pareto { shape } => {
            buf.put_u8(1);
            buf.put_f64(shape);
        }
        Distribution::Normal { mean, std_dev } => {
            buf.put_u8(2);
            buf.put_f64(mean);
            buf.put_f64(std_dev);
        }
        Distribution::Text {
            vocabulary,
            exponent,
        } => {
            buf.put_u8(3);
            buf.put_u64(vocabulary as u64);
            buf.put_f64(exponent);
        }
    }
    buf.put_u8(config.batch_per_tick as u8);
    buf.put_u8(config.route_cache as u8);
    buf.put_u64(config.query_sample_cap as u64);
    buf.put_u64(config.recovery_retry_ms);
    buf.put_u64(config.recovery_retry_max_ms);
}

fn get_config(data: &mut Bytes) -> Option<NetConfig> {
    let n_peers = get_u64(data)? as usize;
    let keys_per_peer = get_u64(data)? as usize;
    let n_min = get_u64(data)? as usize;
    let delta_max = if get_u8(data)? != 0 {
        Some(get_u64(data)? as usize)
    } else {
        None
    };
    let latency_min_ms = get_u64(data)?;
    let latency_max_ms = get_u64(data)?;
    let loss_probability = get_f64(data)?;
    let construct_interval_ms = get_u64(data)?;
    let query_timeout_ms = get_u64(data)?;
    let routing_fanout = get_u64(data)? as usize;
    let seed = get_u64(data)?;
    let distribution = match get_u8(data)? {
        0 => Distribution::Uniform,
        1 => Distribution::Pareto {
            shape: get_f64(data)?,
        },
        2 => Distribution::Normal {
            mean: get_f64(data)?,
            std_dev: get_f64(data)?,
        },
        3 => Distribution::Text {
            vocabulary: get_u64(data)? as usize,
            exponent: get_f64(data)?,
        },
        _ => return None,
    };
    let batch_per_tick = get_u8(data)? != 0;
    let route_cache = get_u8(data)? != 0;
    let query_sample_cap = get_u64(data)? as usize;
    let recovery_retry_ms = get_u64(data)?;
    let recovery_retry_max_ms = get_u64(data)?;
    Some(NetConfig {
        n_peers,
        keys_per_peer,
        n_min,
        delta_max,
        latency_min_ms,
        latency_max_ms,
        loss_probability,
        construct_interval_ms,
        query_timeout_ms,
        routing_fanout,
        seed,
        distribution,
        batch_per_tick,
        route_cache,
        query_sample_cap,
        recovery_retry_ms,
        recovery_retry_max_ms,
    })
}

fn put_histogram(buf: &mut BytesMut, histogram: &LogHistogram) {
    let sparse = histogram.sparse_buckets();
    buf.put_u32(sparse.len() as u32);
    for (bucket, count) in sparse {
        buf.put_u16(bucket);
        buf.put_u64(count);
    }
    buf.put_u64(histogram.sum());
    buf.put_u64(histogram.max());
}

fn get_histogram(data: &mut Bytes) -> Option<LogHistogram> {
    let n = get_u32(data)? as usize;
    if n > pgrid_core::histogram::NUM_BUCKETS {
        return None;
    }
    let mut sparse = Vec::with_capacity(n);
    for _ in 0..n {
        sparse.push((get_u16(data)?, get_u64(data)?));
    }
    let sum = get_u64(data)?;
    let max = get_u64(data)?;
    Some(LogHistogram::from_sparse(&sparse, sum, max))
}

fn put_aggregates(buf: &mut BytesMut, stats: &QueryAggregates) {
    buf.put_u64(stats.issued);
    buf.put_u64(stats.answered);
    buf.put_u64(stats.succeeded);
    buf.put_u64(stats.timed_out);
    buf.put_u64(stats.late_responses);
    buf.put_u64(stats.hops_sum_successful);
    put_histogram(buf, &stats.latency);
    buf.put_u64(stats.ranges_issued);
    buf.put_u64(stats.ranges_complete);
    put_histogram(buf, &stats.range_latency);
    buf.put_u32(stats.per_minute.len() as u32);
    for (minute, bucket) in &stats.per_minute {
        buf.put_u64(*minute);
        buf.put_u64(bucket.count);
        buf.put_f64(bucket.sum_s);
        buf.put_f64(bucket.sum_sq_s);
    }
}

fn get_aggregates(data: &mut Bytes) -> Option<QueryAggregates> {
    let issued = get_u64(data)?;
    let answered = get_u64(data)?;
    let succeeded = get_u64(data)?;
    let timed_out = get_u64(data)?;
    let late_responses = get_u64(data)?;
    let hops_sum_successful = get_u64(data)?;
    let latency = get_histogram(data)?;
    let ranges_issued = get_u64(data)?;
    let ranges_complete = get_u64(data)?;
    let range_latency = get_histogram(data)?;
    let n_minutes = get_u32(data)? as usize;
    if n_minutes > 1 << 24 {
        return None;
    }
    let mut per_minute = std::collections::BTreeMap::new();
    for _ in 0..n_minutes {
        let minute = get_u64(data)?;
        per_minute.insert(
            minute,
            MinuteLatency {
                count: get_u64(data)?,
                sum_s: get_f64(data)?,
                sum_sq_s: get_f64(data)?,
            },
        );
    }
    Some(QueryAggregates {
        issued,
        answered,
        succeeded,
        timed_out,
        late_responses,
        hops_sum_successful,
        latency,
        ranges_issued,
        ranges_complete,
        range_latency,
        per_minute,
    })
}

fn put_timeline(buf: &mut BytesMut, timeline: &Timeline) {
    buf.put_u64(timeline.join_end_min);
    buf.put_u64(timeline.replicate_end_min);
    buf.put_u64(timeline.construct_end_min);
    buf.put_u64(timeline.range_end_min);
    buf.put_u64(timeline.query_end_min);
    buf.put_u64(timeline.end_min);
}

fn get_timeline(data: &mut Bytes) -> Option<Timeline> {
    Some(Timeline {
        join_end_min: get_u64(data)?,
        replicate_end_min: get_u64(data)?,
        construct_end_min: get_u64(data)?,
        range_end_min: get_u64(data)?,
        query_end_min: get_u64(data)?,
        end_min: get_u64(data)?,
    })
}

fn put_addr(buf: &mut BytesMut, addr: &SocketAddr) {
    match addr.ip() {
        IpAddr::V4(ip) => {
            buf.put_u8(4);
            buf.put_slice(&ip.octets());
        }
        IpAddr::V6(ip) => {
            buf.put_u8(6);
            buf.put_slice(&ip.octets());
        }
    }
    buf.put_u16(addr.port());
}

fn get_addr(data: &mut Bytes) -> Option<SocketAddr> {
    let ip: IpAddr = match get_u8(data)? {
        4 => {
            let mut octets = [0u8; 4];
            get_bytes(data, &mut octets)?;
            Ipv4Addr::from(octets).into()
        }
        6 => {
            let mut octets = [0u8; 16];
            get_bytes(data, &mut octets)?;
            Ipv6Addr::from(octets).into()
        }
        _ => return None,
    };
    let port = get_u16(data)?;
    Some(SocketAddr::new(ip, port))
}

fn put_addrs(buf: &mut BytesMut, addrs: &[(u64, SocketAddr)]) {
    buf.put_u32(addrs.len() as u32);
    for (peer, addr) in addrs {
        buf.put_u64(*peer);
        put_addr(buf, addr);
    }
}

fn get_addrs(data: &mut Bytes) -> Option<Vec<(u64, SocketAddr)>> {
    let n = get_u32(data)? as usize;
    if n > 1 << 24 {
        return None;
    }
    let mut addrs = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let peer = get_u64(data)?;
        addrs.push((peer, get_addr(data)?));
    }
    Some(addrs)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(data: &mut Bytes) -> Option<String> {
    let len = get_u32(data)? as usize;
    if len > 1 << 16 || data.remaining() < len {
        return None;
    }
    String::from_utf8(data.split_to(len).as_slice().to_vec()).ok()
}

fn put_path(buf: &mut BytesMut, path: &Path) {
    buf.put_u8(path.len() as u8);
    let mut bits: u64 = 0;
    for (i, b) in path.bits_iter().enumerate() {
        if b {
            bits |= 1 << (63 - i);
        }
    }
    buf.put_u64(bits);
}

fn get_path(data: &mut Bytes) -> Option<Path> {
    let len = get_u8(data)? as usize;
    if len > pgrid_core::path::MAX_PATH_LEN {
        return None;
    }
    let bits = get_u64(data)?;
    let mut path = Path::root();
    for i in 0..len {
        path = path.child((bits >> (63 - i)) & 1 == 1);
    }
    Some(path)
}

fn get_u8(data: &mut Bytes) -> Option<u8> {
    (data.remaining() >= 1).then(|| data.get_u8())
}

fn get_u16(data: &mut Bytes) -> Option<u16> {
    (data.remaining() >= 2).then(|| data.get_u16())
}

fn get_u32(data: &mut Bytes) -> Option<u32> {
    (data.remaining() >= 4).then(|| data.get_u32())
}

fn get_u64(data: &mut Bytes) -> Option<u64> {
    (data.remaining() >= 8).then(|| data.get_u64())
}

fn get_f64(data: &mut Bytes) -> Option<f64> {
    get_u64(data).map(f64::from_bits)
}

fn get_bytes(data: &mut Bytes, out: &mut [u8]) -> Option<()> {
    if data.remaining() < out.len() {
        return None;
    }
    for byte in out.iter_mut() {
        *byte = data.get_u8();
    }
    Some(())
}

// ----- control channel -------------------------------------------------------

/// A framed, bidirectional control connection.
///
/// Sends are synchronous writes of one single-payload frame; receives
/// reassemble frames from the stream with a short socket read timeout so
/// [`ControlChannel::try_recv`] never parks the caller — a worker waiting at
/// a barrier must keep servicing its *data* transport while it waits for the
/// coordinator.
pub struct ControlChannel {
    stream: TcpStream,
    reader: FrameReader,
}

/// Socket read timeout of the control channel; bounds how long `try_recv`
/// can block.
const POLL_TIMEOUT: Duration = Duration::from_millis(2);

impl ControlChannel {
    /// Wraps a connected control stream.
    pub fn new(stream: TcpStream) -> std::io::Result<ControlChannel> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL_TIMEOUT))?;
        Ok(ControlChannel {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// The remote end of the channel.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one message.
    pub fn send(&mut self, msg: &ClusterMsg) -> std::io::Result<()> {
        let frame = encode_frame(&[msg.encode()]);
        self.stream.write_all(frame.as_slice())
    }

    /// Returns the next message if one is available within the short poll
    /// timeout, `None` otherwise.
    pub fn try_recv(&mut self) -> std::io::Result<Option<ClusterMsg>> {
        if let Some(msg) = self.pop_frame()? {
            return Ok(Some(msg));
        }
        let mut buf = [0u8; 16 * 1024];
        match self.stream.read(&mut buf) {
            Ok(0) => Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "control connection closed",
            )),
            Ok(n) => {
                self.reader.extend(&buf[..n]);
                self.pop_frame()
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Waits up to `timeout` for the next message.
    pub fn recv_timeout(&mut self, timeout: Duration) -> std::io::Result<ClusterMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(msg) = self.try_recv()? {
                return Ok(msg);
            }
            if Instant::now() >= deadline {
                return Err(std::io::Error::new(
                    ErrorKind::TimedOut,
                    "timed out waiting for a control message",
                ));
            }
        }
    }

    fn pop_frame(&mut self) -> std::io::Result<Option<ClusterMsg>> {
        let frame = self
            .reader
            .next_frame()
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        let Some(frame) = frame else { return Ok(None) };
        let payloads = decode_frame(&frame)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        let [payload] = payloads.as_slice() else {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "control frames carry exactly one message",
            ));
        };
        ClusterMsg::decode(payload.clone())
            .map(Some)
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "malformed control message"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ClusterMsg) {
        let encoded = msg.encode();
        let decoded = ClusterMsg::decode(encoded).expect("decode");
        assert_eq!(decoded, msg);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        roundtrip(ClusterMsg::Welcome {
            worker_index: 1,
            n_workers: 4,
            shard_start: 16,
            shard_len: 16,
            config: NetConfig {
                n_peers: 64,
                delta_max: Some(50),
                loss_probability: 0.0125,
                distribution: Distribution::Pareto { shape: 1.0 },
                ..NetConfig::default()
            },
            timeline: Timeline::default(),
            tracing: true,
            heartbeat_ms: 500,
            failure_timeout_ms: 10_000,
            heal: true,
            kill_at_min: Some(10),
        });
        roundtrip(ClusterMsg::Hello {
            shard_start: 0,
            peer_addrs: vec![
                (0, "127.0.0.1:4000".parse().unwrap()),
                (1, "[::1]:4001".parse().unwrap()),
            ],
            metrics_addr: Some("127.0.0.1:9100".parse().unwrap()),
        });
        roundtrip(ClusterMsg::Hello {
            shard_start: 16,
            peer_addrs: vec![(16, "127.0.0.1:4016".parse().unwrap())],
            metrics_addr: None,
        });
        roundtrip(ClusterMsg::AddressBook {
            peer_addrs: (0..32u64)
                .map(|i| (i, format!("127.0.0.1:{}", 5000 + i).parse().unwrap()))
                .collect(),
        });
        roundtrip(ClusterMsg::PhaseDone {
            phase: PHASE_CONSTRUCTED,
        });
        roundtrip(ClusterMsg::Proceed { phase: PHASE_DONE });
        roundtrip(ClusterMsg::Minutes {
            samples: vec![(0, 1200, 0), (1, 900, 30), (7, 0, 4096)],
        });
        roundtrip(ClusterMsg::TraceBatch {
            events: vec![
                pgrid_obs::trace::TraceEvent {
                    trace_id: (1 << 40) | 3,
                    kind: pgrid_obs::trace::intern_kind("query_issued"),
                    peer: 17,
                    virtual_ms: 120_000,
                    wall_micros: 1_700_000_000_000_000,
                    detail: "id=3 index=0 key=0.25".to_string(),
                },
                pgrid_obs::trace::TraceEvent {
                    trace_id: (1 << 40) | 3,
                    kind: pgrid_obs::trace::intern_kind("query_hop"),
                    peer: 4,
                    virtual_ms: 120_040,
                    wall_micros: 1_700_000_000_000_900,
                    detail: "path=\"01\" cached=false".to_string(),
                },
            ],
        });
        let mut registry = pgrid_obs::registry::MetricsRegistry::new();
        registry.counter("pgrid_net_messages_delivered_total", "m", &[], 42);
        roundtrip(ClusterMsg::MetricsSnapshot {
            registry: registry.encode_wire(),
        });
        let mut primary = QueryAggregates {
            issued: 120,
            answered: 110,
            succeeded: 104,
            timed_out: 10,
            late_responses: 3,
            hops_sum_successful: 312,
            ranges_issued: 7,
            ranges_complete: 6,
            ..QueryAggregates::default()
        };
        for latency in [12u64, 80, 80, 412, 3_000] {
            primary.latency.record(latency);
        }
        primary.range_latency.record(950);
        primary.per_minute.entry(61).or_default().record(0.412);
        let secondary = QueryAggregates {
            issued: 4,
            timed_out: 4,
            ..QueryAggregates::default()
        };
        roundtrip(ClusterMsg::Report(ShardReport {
            shard_start: 32,
            paths: vec![Path::root(), Path::parse("0110"), Path::parse("1")],
            query_stats: vec![(IndexId::PRIMARY, primary), (IndexId(2), secondary)],
            online_at_end: 14,
            transport: TransportStats {
                frames_sent: 1000,
                frames_delivered: 990,
                bytes_sent: 123_456,
                bytes_delivered: 120_000,
                per_peer: [
                    (
                        32,
                        LinkStats {
                            frames_sent: 40,
                            bytes_sent: 5_000,
                            frames_received: 41,
                            bytes_received: 5_100,
                            reconnects: 1,
                            send_failures: 0,
                        },
                    ),
                    (
                        7,
                        LinkStats {
                            frames_received: 9,
                            bytes_received: 900,
                            ..LinkStats::default()
                        },
                    ),
                ]
                .into_iter()
                .collect(),
                frames_compressed: 12,
                compressed_bytes_raw: 48_000,
                compressed_bytes_wire: 1_900,
                reactor: Some(ReactorStats {
                    registered_peers: 32,
                    registered_fds: 3,
                    epoll_wakeups: 777,
                    write_queue_frames: 2,
                    write_queue_bytes: 512,
                    partial_writes: 5,
                    reconnects: 1,
                    dropped_frames: 0,
                }),
            },
            messages_delivered: 2048,
            messages_lost: 17,
            extra_paths: vec![(3, Path::parse("011")), (9, Path::root())],
        }));
        roundtrip(ClusterMsg::Heartbeat { epoch: 2 });
        roundtrip(ClusterMsg::ShardPaths {
            shard_start: 16,
            paths: vec![Path::parse("01"), Path::root(), Path::parse("110")],
        });
        roundtrip(ClusterMsg::WorkerFailed {
            epoch: 1,
            worker_index: 2,
            shard_start: 22,
            shard_len: 10,
        });
        roundtrip(ClusterMsg::ShardReassign {
            epoch: 1,
            moves: vec![
                ReassignMove {
                    peer: 22,
                    to_worker: 0,
                    source_peer: 4,
                    path: Path::parse("010"),
                },
                ReassignMove {
                    peer: 23,
                    to_worker: 1,
                    source_peer: 23,
                    path: Path::root(),
                },
            ],
        });
        roundtrip(ClusterMsg::RecoveryAddrs {
            epoch: 1,
            peer_addrs: vec![
                (22, "127.0.0.1:6022".parse().unwrap()),
                (23, "[::1]:6023".parse().unwrap()),
            ],
        });
        roundtrip(ClusterMsg::RecoveryDone {
            epoch: 1,
            recovered: vec![(22, true), (23, false)],
        });
        roundtrip(ClusterMsg::Rejoin {
            shard_start: 16,
            shard_len: 8,
            epoch: 2,
            phase: PHASE_CONSTRUCTED,
            now_ms: 1_380_000,
            seed: 12,
        });
        roundtrip(ClusterMsg::Resume {
            epoch: 3,
            phase: PHASE_QUERIED,
        });
    }

    #[test]
    fn config_retry_pacing_survives_the_codec() {
        roundtrip(ClusterMsg::Welcome {
            worker_index: 0,
            n_workers: 1,
            shard_start: 0,
            shard_len: 8,
            config: NetConfig {
                recovery_retry_ms: 500,
                recovery_retry_max_ms: 7_000,
                ..NetConfig::default()
            },
            timeline: Timeline::default(),
            tracing: false,
            heartbeat_ms: 0,
            failure_timeout_ms: 0,
            heal: false,
            kill_at_min: None,
        });
    }

    #[test]
    fn every_distribution_variant_survives_the_config_codec() {
        for distribution in Distribution::paper_suite() {
            roundtrip(ClusterMsg::Welcome {
                worker_index: 0,
                n_workers: 1,
                shard_start: 0,
                shard_len: 8,
                config: NetConfig {
                    distribution,
                    ..NetConfig::default()
                },
                timeline: Timeline::default(),
                tracing: false,
                heartbeat_ms: 0,
                failure_timeout_ms: 0,
                heal: false,
                kill_at_min: None,
            });
        }
    }

    #[test]
    fn malformed_and_mismatched_input_is_rejected() {
        assert!(ClusterMsg::decode(Bytes::from_static(&[])).is_none());
        assert!(ClusterMsg::decode(Bytes::from_static(&[0x50, 0x47])).is_none());
        // wrong version
        assert!(ClusterMsg::decode(Bytes::from_static(&[0x50, 0x47, 99, 3, 1])).is_none());
        // truncated Welcome
        let mut good = ClusterMsg::PhaseDone { phase: 2 }
            .encode()
            .as_slice()
            .to_vec();
        good.pop();
        assert!(ClusterMsg::decode(Bytes::from(good)).is_none());
        // unknown tag
        assert!(ClusterMsg::decode(Bytes::from_static(&[0x50, 0x47, 1, 200])).is_none());
    }

    #[test]
    fn control_channel_carries_framed_messages_both_ways() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut ctl = ControlChannel::new(TcpStream::connect(addr).unwrap()).unwrap();
            ctl.send(&ClusterMsg::PhaseDone { phase: 1 }).unwrap();
            let reply = ctl.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(reply, ClusterMsg::Proceed { phase: 1 });
        });
        let (stream, _) = listener.accept().unwrap();
        let mut ctl = ControlChannel::new(stream).unwrap();
        let msg = ctl.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(msg, ClusterMsg::PhaseDone { phase: 1 });
        ctl.send(&ClusterMsg::Proceed { phase: 1 }).unwrap();
        client.join().unwrap();
    }
}
