//! The rendezvous coordinator: one socket, N workers, one merged report.
//!
//! The coordinator owns no peers.  It assigns contiguous shards in accept
//! order, relays the address book so every worker can wire every foreign
//! peer as a transport remote, releases the phase barriers once all workers
//! reached them, and merges the streamed per-minute samples plus the final
//! shard reports into a single [`DeploymentReport`] through the same
//! [`assemble_report`] pipeline the single-process driver uses.
//!
//! Since proto v5 the coordinator is also the cluster's failure detector
//! and healer: it polls every worker's control channel (instead of blocking
//! on one at a time), tracks liveness through heartbeats, and when a worker
//! dies mid-run it reassigns the orphaned shard onto the survivors at the
//! next barrier — who take over the endpoints and rebuild the lost peers'
//! state from live P-Grid replicas (see [`crate::worker`]).  With healing
//! disabled a failure degrades the run instead of aborting it: the dead
//! shard goes dark, the flight recorder dumps, and the final report is
//! assembled from whatever the survivors deliver.

use crate::plan::shard_assignment;
use crate::proto::{
    ClusterMsg, ControlChannel, ReassignMove, ShardReport, PHASE_DONE, PHASE_WIRED,
};
use pgrid_core::path::Path;
use pgrid_net::experiment::{assemble_report, DeploymentReport, ReportInputs, Timeline};
use pgrid_net::runtime::{generate_peers, BandwidthSample, NetConfig};
use pgrid_obs::recorder::FlightRecorder;
use pgrid_obs::registry::MetricsRegistry;
use pgrid_obs::scrape::{http_get, ScrapeState};
use pgrid_obs::trace::{assemble, TraceEvent};
use pgrid_transport::TransportStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeSet, HashMap};
use std::io::{Error, ErrorKind, Result, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the coordinator waits for all workers to connect.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(120);

/// How long the coordinator waits for one worker to finish a phase.
const PHASE_TIMEOUT: Duration = Duration::from_secs(600);

/// How long the coordinator waits for a recovery step (endpoint takeover,
/// replica rebuild) of one healing round.
const RECOVERY_TIMEOUT: Duration = Duration::from_secs(120);

/// A cluster run description.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker processes that will connect.
    pub n_workers: usize,
    /// The deployment configuration every worker receives.
    pub net: NetConfig,
    /// The phase timeline every worker receives.
    pub timeline: Timeline,
    /// Failure detection and self-healing parameters.
    pub heal: HealConfig,
}

/// Failure-detection and healing parameters of a cluster run.
#[derive(Clone, Debug)]
pub struct HealConfig {
    /// Wall-clock interval between worker heartbeats (milliseconds; `0`
    /// disables heartbeat-based detection, leaving only EOF detection).
    pub heartbeat_ms: u64,
    /// Wall-clock silence after which a worker is declared dead
    /// (milliseconds; only meaningful with heartbeats enabled).
    pub failure_timeout_ms: u64,
    /// Whether a dead worker's shard is reassigned onto the survivors
    /// (`false` records the failure and degrades the run instead).
    pub heal: bool,
    /// Wall-clock window after a failure during which a relaunched worker
    /// may reconnect and reclaim its own shard from its durable log
    /// (milliseconds; `0` disables warm rejoin and always reassigns).
    pub rejoin_grace_ms: u64,
    /// Fault injection: make one worker kill its own process at a virtual
    /// minute of the timeline.
    pub kill: Option<KillPlan>,
}

impl Default for HealConfig {
    fn default() -> HealConfig {
        HealConfig {
            heartbeat_ms: 500,
            failure_timeout_ms: 10_000,
            heal: true,
            rejoin_grace_ms: 0,
            kill: None,
        }
    }
}

/// Fault injection: one worker kills its own process mid-run.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    /// Index of the worker to kill (in accept order).
    pub worker: u32,
    /// Virtual minute at which the worker exits.
    pub at_min: u64,
}

/// Observability options of a coordinator run.
#[derive(Clone, Debug, Default)]
pub struct ObsOptions {
    /// Enable structured tracing on every worker; the coordinator merges
    /// the shipped batches into cluster-wide hop chains.
    pub tracing: bool,
    /// A caller-owned scrape state the coordinator publishes the merged
    /// registry and traces into at every phase barrier (the caller binds
    /// the [`pgrid_obs::scrape::ScrapeServer`] itself, so it knows the
    /// address up front).
    pub scrape: Option<Arc<ScrapeState>>,
    /// Where the merged trace is written as JSONL when the run finishes.
    pub trace_out: Option<PathBuf>,
    /// Where the coordinator's flight recorder dumps when a worker fails.
    pub flight_dump: Option<PathBuf>,
    /// Where the merged Prometheus text is flushed at every phase barrier
    /// (and once more with the final report).
    pub metrics_out: Option<PathBuf>,
}

/// What the coordinator observed beyond the deployment report.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// The merged registry at the end of the run (worker series labelled
    /// `worker="<index>"`).
    pub registry: MetricsRegistry,
    /// Every trace event shipped by any worker, in arrival order.
    pub trace_events: Vec<TraceEvent>,
    /// Scrape endpoint of each worker, in shard order (when serving).
    pub worker_metrics_addrs: Vec<Option<SocketAddr>>,
    /// Every worker failure the coordinator detected, in detection order.
    pub failures: Vec<WorkerFailure>,
}

/// One worker death as the coordinator observed (and possibly healed) it.
#[derive(Clone, Debug)]
pub struct WorkerFailure {
    /// Index of the dead worker.
    pub worker: u32,
    /// First peer id of the orphaned shard.
    pub shard_start: u64,
    /// Number of orphaned peers.
    pub shard_len: u64,
    /// Wall-clock milliseconds between the worker's last sign of life and
    /// the coordinator declaring it dead (the detection latency).
    pub detected_after_ms: u64,
    /// Whether the shard was reassigned onto survivors.
    pub healed: bool,
    /// Wall-clock milliseconds the healing round took (reassignment,
    /// endpoint takeovers, replica rebuilds); `0` when not healed.
    pub recovery_ms: u64,
    /// Orphans whose state was rebuilt from a live replica.
    pub recovered_replica: u64,
    /// Orphans restored from the seeded local regeneration (no reachable
    /// replica).
    pub recovered_local: u64,
    /// Whether the dead worker itself reconnected and reclaimed the shard
    /// from its durable log (a warm restart) instead of being reassigned.
    pub rejoined: bool,
    /// Orphans replayed from the rejoining worker's durable log.
    pub recovered_warm: u64,
}

fn protocol_error(what: &str, got: &ClusterMsg) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("expected {what}, got {got:?}"),
    )
}

/// Coordinator-side observability merge state, rebuilt into one registry
/// at each phase barrier.
struct ObsMerge {
    /// Latest registry snapshot streamed by each worker.
    worker_regs: Vec<Option<MetricsRegistry>>,
    /// Successful mid-run `/metrics` probes of each worker so far.
    scrape_ok: Vec<u64>,
    /// Body size of each worker's most recent successful probe.
    scrape_bytes: Vec<u64>,
    /// Merged publications performed (one per barrier plus the final one).
    flushes: u64,
    /// Trace events already pushed to the scrape state.
    published_events: usize,
}

impl ObsMerge {
    fn new(n_workers: usize) -> ObsMerge {
        ObsMerge {
            worker_regs: vec![None; n_workers],
            scrape_ok: vec![0; n_workers],
            scrape_bytes: vec![0; n_workers],
            flushes: 0,
            published_events: 0,
        }
    }

    /// Probes every announced worker scrape endpoint over real HTTP,
    /// rebuilds the cluster-wide registry (worker series labelled
    /// `worker="<index>"`), publishes it to the scrape state and the
    /// per-barrier metrics file, and returns it.
    fn barrier_publish(
        &mut self,
        phase: u8,
        cluster: &ClusterConfig,
        obs: &ObsOptions,
        observed: &ObsReport,
    ) -> MetricsRegistry {
        for (index, addr) in observed.worker_metrics_addrs.iter().enumerate() {
            let Some(addr) = addr else { continue };
            if let Ok(body) = http_get(*addr, "/metrics") {
                self.scrape_ok[index] += 1;
                self.scrape_bytes[index] = body.len() as u64;
            }
        }
        self.flushes += 1;
        let mut merged = MetricsRegistry::new();
        merged.gauge(
            "pgrid_cluster_workers",
            "Number of worker processes in the cluster.",
            &[],
            cluster.n_workers as f64,
        );
        merged.gauge(
            "pgrid_cluster_phase",
            "Latest phase barrier the whole cluster reached.",
            &[],
            phase as f64,
        );
        merged.counter(
            "pgrid_cluster_metrics_flushes_total",
            "Merged metrics publications (one per phase barrier).",
            &[],
            self.flushes,
        );
        merged.counter(
            "pgrid_cluster_worker_failures_total",
            "Worker deaths the coordinator has detected.",
            &[],
            observed.failures.len() as u64,
        );
        merged.counter(
            "pgrid_cluster_peers_recovered_total",
            "Orphaned peers rebuilt on survivors (replica pulls plus the \
             seeded local fallback).",
            &[],
            observed
                .failures
                .iter()
                .map(|f| f.recovered_replica + f.recovered_local)
                .sum(),
        );
        merged.counter(
            "pgrid_cluster_peers_recovered_warm_total",
            "Orphaned peers restored by their own relaunched worker replaying \
             its durable log (warm rejoins).",
            &[],
            observed.failures.iter().map(|f| f.recovered_warm).sum(),
        );
        for (index, registry) in self.worker_regs.iter().enumerate() {
            let worker = index.to_string();
            if let Some(registry) = registry {
                merged.absorb(registry, Some(("worker", &worker)));
            }
            if let Some(Some(addr)) = observed.worker_metrics_addrs.get(index) {
                merged.gauge(
                    "pgrid_cluster_worker_metrics_port",
                    "Bound /metrics port of a worker scrape endpoint.",
                    &[("worker", &worker)],
                    addr.port() as f64,
                );
                merged.counter(
                    "pgrid_cluster_worker_scrape_ok_total",
                    "Successful mid-run HTTP scrapes of a worker's /metrics.",
                    &[("worker", &worker)],
                    self.scrape_ok[index],
                );
                merged.gauge(
                    "pgrid_cluster_worker_scrape_bytes",
                    "Body size of the latest successful worker scrape.",
                    &[("worker", &worker)],
                    self.scrape_bytes[index] as f64,
                );
            }
        }
        let text = merged.encode();
        if let Some(state) = &obs.scrape {
            state.publish_metrics(text.clone());
            if observed.trace_events.len() > self.published_events {
                state.publish_trace_events(&observed.trace_events[self.published_events..]);
                self.published_events = observed.trace_events.len();
            }
        }
        if let Some(path) = &obs.metrics_out {
            let _ = std::fs::write(path, &text);
        }
        merged
    }
}

/// Accepts `cluster.n_workers` workers on `listener`, runs the rendezvous
/// and the barrier protocol to completion, and returns the merged report.
pub fn run_coordinator(listener: TcpListener, cluster: &ClusterConfig) -> Result<DeploymentReport> {
    run_coordinator_observed(listener, cluster, &ObsOptions::default()).map(|(report, _)| report)
}

/// [`run_coordinator`] with observability: merged metrics/trace publishing
/// at every barrier, worker `/metrics` probing, and a flight-recorder dump
/// when a worker fails mid-run.
pub fn run_coordinator_observed(
    listener: TcpListener,
    cluster: &ClusterConfig,
    obs: &ObsOptions,
) -> Result<(DeploymentReport, ObsReport)> {
    let mut recorder = FlightRecorder::default();
    let mut observed = ObsReport::default();
    match coordinate(listener, cluster, obs, &mut recorder, &mut observed) {
        Ok(report) => Ok((report, observed)),
        Err(e) => {
            recorder.note(0, "worker_failure", e.to_string());
            if let Some(path) = &obs.flight_dump {
                let _ = recorder.dump_to(path, "worker failure");
            }
            pgrid_obs::error!("cluster::coordinator", "cluster run failed: {e}");
            Err(e)
        }
    }
}

/// One worker's coordinator-side control state.
struct Slot {
    ctl: ControlChannel,
    /// `false` once the coordinator declared this worker dead.
    alive: bool,
    /// Whether the worker reached the barrier currently being collected.
    done: bool,
    /// Last time any control message arrived from this worker.
    last_seen: Instant,
}

/// Everything the failure detector and healer track across barriers.
struct Membership {
    /// Original `(start, len)` shard of each worker.
    shards: Vec<(usize, usize)>,
    /// Current host worker of every peer (updated on adoption).
    host_of: Vec<usize>,
    /// Last path each peer reported at a barrier (via `ShardPaths`), the
    /// raw material of replica hints and partial reports.
    last_paths: Vec<Path>,
    /// Monotonic membership epoch, bumped per healing round.
    epoch: u64,
    /// The current address book, re-broadcast after endpoint takeovers.
    book: Vec<(u64, SocketAddr)>,
}

/// Drains one worker's channel: routine traffic (minutes, traces, metrics,
/// heartbeats, shard paths) is absorbed in place, anything else is handed
/// to the caller.  `Ok(None)` means the channel is quiet right now.
#[allow(clippy::too_many_arguments)]
fn poll_routine(
    index: usize,
    slot: &mut Slot,
    merge: &mut ObsMerge,
    observed: &mut ObsReport,
    bandwidth: &mut HashMap<u64, BandwidthSample>,
    membership: &mut Membership,
) -> Result<Option<ClusterMsg>> {
    loop {
        let Some(msg) = slot.ctl.try_recv()? else {
            return Ok(None);
        };
        slot.last_seen = Instant::now();
        match msg {
            ClusterMsg::Minutes { samples } => {
                for (minute, maintenance, query) in samples {
                    let entry = bandwidth.entry(minute).or_default();
                    entry.maintenance_bytes += maintenance as usize;
                    entry.query_bytes += query as usize;
                }
            }
            ClusterMsg::TraceBatch { events } => observed.trace_events.extend(events),
            ClusterMsg::MetricsSnapshot { registry } => {
                merge.worker_regs[index] = Some(
                    MetricsRegistry::decode_wire(&registry)
                        .map_err(|e| Error::new(ErrorKind::InvalidData, e))?,
                );
            }
            ClusterMsg::Heartbeat { .. } => {}
            ClusterMsg::ShardPaths { shard_start, paths } => {
                for (offset, path) in paths.iter().enumerate() {
                    let peer = shard_start as usize + offset;
                    if peer < membership.last_paths.len() {
                        membership.last_paths[peer] = *path;
                    }
                }
            }
            other => return Ok(Some(other)),
        }
    }
}

/// Length of the common prefix of two trie paths.
fn common_prefix(a: &Path, b: &Path) -> usize {
    a.bits_iter()
        .zip(b.bits_iter())
        .take_while(|(x, y)| x == y)
        .count()
}

fn coordinate(
    listener: TcpListener,
    cluster: &ClusterConfig,
    obs: &ObsOptions,
    recorder: &mut FlightRecorder,
    observed: &mut ObsReport,
) -> Result<DeploymentReport> {
    assert!(
        cluster.n_workers >= 1,
        "a cluster needs at least one worker"
    );
    let shards = shard_assignment(cluster.net.n_peers, cluster.n_workers);
    let mut merge = ObsMerge::new(cluster.n_workers);

    // --- accept and assign --------------------------------------------------
    listener.set_nonblocking(true)?;
    let accept_deadline = Instant::now() + ACCEPT_TIMEOUT;
    let mut workers: Vec<ControlChannel> = Vec::with_capacity(cluster.n_workers);
    while workers.len() < cluster.n_workers {
        match listener.accept() {
            Ok((stream, _)) => workers.push(ControlChannel::new(stream)?),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= accept_deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "only {}/{} workers connected",
                            workers.len(),
                            cluster.n_workers
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    recorder.note(
        0,
        "accepted",
        format!("{} workers connected", workers.len()),
    );
    pgrid_obs::info!(
        "cluster::coordinator",
        "{} workers connected, assigning shards",
        workers.len()
    );
    for (index, worker) in workers.iter_mut().enumerate() {
        let (start, len) = shards[index];
        let kill_at_min = cluster
            .heal
            .kill
            .filter(|plan| plan.worker as usize == index)
            .map(|plan| plan.at_min);
        worker.send(&ClusterMsg::Welcome {
            worker_index: index as u32,
            n_workers: cluster.n_workers as u32,
            shard_start: start as u64,
            shard_len: len as u64,
            config: cluster.net.clone(),
            timeline: cluster.timeline,
            tracing: obs.tracing,
            heartbeat_ms: cluster.heal.heartbeat_ms,
            failure_timeout_ms: cluster.heal.failure_timeout_ms,
            heal: cluster.heal.heal,
            kill_at_min,
        })?;
    }

    // --- gather endpoints, broadcast the address book -----------------------
    let mut book: Vec<(u64, SocketAddr)> = Vec::with_capacity(cluster.net.n_peers);
    for (index, worker) in workers.iter_mut().enumerate() {
        let hello = worker.recv_timeout(PHASE_TIMEOUT)?;
        let ClusterMsg::Hello {
            shard_start,
            peer_addrs,
            metrics_addr,
        } = hello
        else {
            return Err(protocol_error("Hello", &hello));
        };
        observed.worker_metrics_addrs.push(metrics_addr);
        recorder.note(
            0,
            "hello",
            format!("worker={index} shard={shard_start} metrics={metrics_addr:?}"),
        );
        let (start, len) = shards[index];
        if shard_start as usize != start || peer_addrs.len() != len {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "worker {index} announced shard {shard_start}+{} instead of {start}+{len}",
                    peer_addrs.len()
                ),
            ));
        }
        book.extend(peer_addrs);
    }
    book.sort_unstable_by_key(|&(peer, _)| peer);
    for worker in &mut workers {
        worker.send(&ClusterMsg::AddressBook {
            peer_addrs: book.clone(),
        })?;
    }

    // --- barriers with failure detection and healing ------------------------
    let mut slots: Vec<Slot> = workers
        .into_iter()
        .map(|ctl| Slot {
            ctl,
            alive: true,
            done: false,
            last_seen: Instant::now(),
        })
        .collect();
    let mut host_of = vec![0usize; cluster.net.n_peers];
    for (index, &(start, len)) in shards.iter().enumerate() {
        for host in &mut host_of[start..start + len] {
            *host = index;
        }
    }
    let mut membership = Membership {
        shards: shards.clone(),
        host_of,
        last_paths: vec![Path::root(); cluster.net.n_peers],
        epoch: 0,
        book,
    };
    let mut bandwidth: HashMap<u64, BandwidthSample> = HashMap::new();

    for phase in PHASE_WIRED..=PHASE_DONE {
        let newly_failed = collect_barrier(
            &mut slots,
            phase,
            cluster,
            &mut merge,
            observed,
            &mut bandwidth,
            &mut membership,
            recorder,
            obs,
        )?;
        if !newly_failed.is_empty() && cluster.heal.heal {
            heal_round(
                &mut slots,
                &listener,
                &newly_failed,
                phase,
                cluster,
                obs,
                &mut merge,
                observed,
                &mut bandwidth,
                &mut membership,
                recorder,
            )?;
        }
        // Every surviving worker reached the barrier (and any orphaned
        // shard was reassigned): refresh the merged live view before
        // releasing them into the next phase.
        merge.barrier_publish(phase, cluster, obs, observed);
        recorder.note(0, "barrier", format!("phase={phase} released"));
        pgrid_obs::debug!("cluster::coordinator", "phase {phase} barrier released");
        for slot in slots.iter_mut().filter(|s| s.alive) {
            slot.ctl.send(&ClusterMsg::Proceed { phase })?;
        }
    }

    // --- final reports -------------------------------------------------------
    let mut reports: Vec<ShardReport> = Vec::with_capacity(cluster.n_workers);
    for index in 0..slots.len() {
        if !slots[index].alive {
            continue;
        }
        let deadline = Instant::now() + PHASE_TIMEOUT;
        loop {
            match poll_routine(
                index,
                &mut slots[index],
                &mut merge,
                observed,
                &mut bandwidth,
                &mut membership,
            ) {
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(Error::new(
                            ErrorKind::TimedOut,
                            format!("worker {index} never sent its report"),
                        ));
                    }
                }
                Ok(Some(ClusterMsg::Report(report))) => {
                    reports.push(report);
                    break;
                }
                Ok(Some(other)) => return Err(protocol_error("Report", &other)),
                Err(e) => {
                    // A worker dying after its last barrier can no longer
                    // be healed (the run is over); record the failure and
                    // assemble a partial report.
                    mark_failed(&mut slots, index, cluster, observed, recorder, obs, &e);
                    break;
                }
            }
        }
    }

    observed.registry = merge.barrier_publish(PHASE_DONE, cluster, obs, observed);
    if let Some(path) = &obs.trace_out {
        let mut file = std::fs::File::create(path)?;
        for chain in assemble(&observed.trace_events).values() {
            for event in chain {
                writeln!(file, "{}", event.to_json())?;
            }
        }
        pgrid_obs::info!(
            "cluster::coordinator",
            "merged trace ({} events) written to {}",
            observed.trace_events.len(),
            path.display()
        );
    }
    Ok(merge_reports(
        cluster,
        &membership.shards,
        &membership.last_paths,
        bandwidth,
        reports,
    ))
}

/// Declares worker `index` dead: stops polling it, records the failure in
/// the observability report, and dumps the flight recorder.
fn mark_failed(
    slots: &mut [Slot],
    index: usize,
    cluster: &ClusterConfig,
    observed: &mut ObsReport,
    recorder: &mut FlightRecorder,
    obs: &ObsOptions,
    error: &Error,
) {
    if !slots[index].alive {
        return;
    }
    slots[index].alive = false;
    let detected_after_ms = slots[index].last_seen.elapsed().as_millis() as u64;
    let shards = shard_assignment(cluster.net.n_peers, cluster.n_workers);
    let (start, len) = shards[index];
    recorder.note(
        0,
        "worker_failed",
        format!("worker={index} shard={start}+{len} after_ms={detected_after_ms} error={error}"),
    );
    if let Some(path) = &obs.flight_dump {
        let _ = recorder.dump_to(path, "worker failure");
    }
    pgrid_obs::error!(
        "cluster::coordinator",
        "worker {index} (shard {start}+{len}) died: {error} \
         (detected after {detected_after_ms}ms)"
    );
    observed.failures.push(WorkerFailure {
        worker: index as u32,
        shard_start: start as u64,
        shard_len: len as u64,
        detected_after_ms,
        healed: false,
        recovery_ms: 0,
        recovered_replica: 0,
        recovered_local: 0,
        rejoined: false,
        recovered_warm: 0,
    });
}

/// Collects `PhaseDone(phase)` from every live worker, detecting failures
/// along the way (connection EOF, heartbeat silence).  Returns the indices
/// of workers that died during this barrier.
#[allow(clippy::too_many_arguments)]
fn collect_barrier(
    slots: &mut [Slot],
    phase: u8,
    cluster: &ClusterConfig,
    merge: &mut ObsMerge,
    observed: &mut ObsReport,
    bandwidth: &mut HashMap<u64, BandwidthSample>,
    membership: &mut Membership,
    recorder: &mut FlightRecorder,
    obs: &ObsOptions,
) -> Result<Vec<usize>> {
    for slot in slots.iter_mut() {
        slot.done = false;
        // Liveness clocks restart per barrier: a worker is only expected
        // to be silent for as long as its phase lasts minus heartbeats.
        slot.last_seen = Instant::now();
    }
    let heartbeats = cluster.heal.heartbeat_ms > 0;
    let failure_timeout = Duration::from_millis(cluster.heal.failure_timeout_ms.max(1));
    let deadline = Instant::now() + PHASE_TIMEOUT;
    let mut newly_failed = Vec::new();
    while slots.iter().any(|s| s.alive && !s.done) {
        for index in 0..slots.len() {
            if !slots[index].alive || slots[index].done {
                continue;
            }
            match poll_routine(
                index,
                &mut slots[index],
                merge,
                observed,
                bandwidth,
                membership,
            ) {
                Ok(None) => {}
                Ok(Some(ClusterMsg::PhaseDone { phase: p })) if p == phase => {
                    slots[index].done = true;
                }
                Ok(Some(other)) => {
                    return Err(Error::new(
                        ErrorKind::InvalidData,
                        format!("worker {index}: expected PhaseDone({phase}), got {other:?}"),
                    ))
                }
                Err(e) => {
                    mark_failed(slots, index, cluster, observed, recorder, obs, &e);
                    newly_failed.push(index);
                    continue;
                }
            }
            if heartbeats && slots[index].last_seen.elapsed() > failure_timeout {
                let e = Error::new(
                    ErrorKind::TimedOut,
                    format!(
                        "no heartbeat for {}ms",
                        slots[index].last_seen.elapsed().as_millis()
                    ),
                );
                mark_failed(slots, index, cluster, observed, recorder, obs, &e);
                newly_failed.push(index);
            }
        }
        if Instant::now() >= deadline {
            return Err(Error::new(
                ErrorKind::TimedOut,
                format!("phase {phase} barrier never completed"),
            ));
        }
    }
    Ok(newly_failed)
}

/// Polls the rendezvous listener for up to `rejoin_grace_ms` for the
/// relaunched worker `failed` to reconnect with a matching [`Rejoin`]
/// (same shard, same seed — a durable log from another run is rejected),
/// replays the initial handshake against it (Welcome, Hello, AddressBook
/// with the re-bound endpoints), tells it which phase to resume at, and
/// waits for its local log replay to finish.  Returns the number of peers
/// it restored, or `None` when no valid rejoin arrived in time and the
/// caller must fall back to reassignment.
///
/// [`Rejoin`]: ClusterMsg::Rejoin
#[allow(clippy::too_many_arguments)]
fn try_rejoin(
    slots: &mut [Slot],
    listener: &TcpListener,
    failed: usize,
    phase: u8,
    epoch: u64,
    cluster: &ClusterConfig,
    obs: &ObsOptions,
    merge: &mut ObsMerge,
    observed: &mut ObsReport,
    bandwidth: &mut HashMap<u64, BandwidthSample>,
    membership: &mut Membership,
    recorder: &mut FlightRecorder,
) -> Result<Option<u64>> {
    let (start, len) = membership.shards[failed];
    let deadline = Instant::now() + Duration::from_millis(cluster.heal.rejoin_grace_ms);
    let mut ctl = loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let mut candidate = ControlChannel::new(stream)?;
                match candidate.recv_timeout(RECOVERY_TIMEOUT) {
                    Ok(ClusterMsg::Rejoin {
                        shard_start,
                        shard_len,
                        epoch: log_epoch,
                        phase: log_phase,
                        now_ms,
                        seed,
                    }) if shard_start as usize == start
                        && shard_len as usize == len
                        && seed == cluster.net.seed =>
                    {
                        recorder.note(
                            0,
                            "rejoin",
                            format!(
                                "worker={failed} shard={start}+{len} log_epoch={log_epoch} \
                                 log_phase={log_phase} log_ms={now_ms}"
                            ),
                        );
                        break candidate;
                    }
                    Ok(other) => {
                        pgrid_obs::warn!(
                            "cluster::coordinator",
                            "rejected rejoin connection for worker {failed}: {other:?}"
                        );
                    }
                    Err(e) => {
                        pgrid_obs::warn!(
                            "cluster::coordinator",
                            "rejoin connection for worker {failed} died during handshake: {e}"
                        );
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    };

    // The initial handshake, replayed: the rejoiner re-binds its shard
    // endpoints at fresh ports, everyone learns the new address book, and
    // the rejoiner is told which phase the cluster is parked at.  No kill
    // plan the second time around.
    ctl.send(&ClusterMsg::Welcome {
        worker_index: failed as u32,
        n_workers: cluster.n_workers as u32,
        shard_start: start as u64,
        shard_len: len as u64,
        config: cluster.net.clone(),
        timeline: cluster.timeline,
        tracing: obs.tracing,
        heartbeat_ms: cluster.heal.heartbeat_ms,
        failure_timeout_ms: cluster.heal.failure_timeout_ms,
        heal: cluster.heal.heal,
        kill_at_min: None,
    })?;
    let hello = ctl.recv_timeout(RECOVERY_TIMEOUT)?;
    let ClusterMsg::Hello {
        shard_start,
        peer_addrs,
        metrics_addr,
    } = hello
    else {
        return Err(protocol_error("Hello", &hello));
    };
    if shard_start as usize != start || peer_addrs.len() != len {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!(
                "rejoined worker {failed} announced shard {shard_start}+{} instead of \
                 {start}+{len}",
                peer_addrs.len()
            ),
        ));
    }
    for (peer, addr) in peer_addrs {
        match membership.book.iter_mut().find(|(p, _)| *p == peer) {
            Some(entry) => entry.1 = addr,
            None => membership.book.push((peer, addr)),
        }
    }
    membership.book.sort_unstable_by_key(|&(peer, _)| peer);
    if let Some(slot_addr) = observed.worker_metrics_addrs.get_mut(failed) {
        *slot_addr = metrics_addr;
    }
    ctl.send(&ClusterMsg::AddressBook {
        peer_addrs: membership.book.clone(),
    })?;
    for slot in slots.iter_mut().filter(|slot| slot.alive) {
        slot.ctl.send(&ClusterMsg::AddressBook {
            peer_addrs: membership.book.clone(),
        })?;
    }
    ctl.send(&ClusterMsg::Resume { epoch, phase })?;
    // The barrier for `phase` was already collected without this worker:
    // it re-enters the protocol parked (`done`), waiting for Proceed.
    slots[failed] = Slot {
        ctl,
        alive: true,
        done: true,
        last_seen: Instant::now(),
    };

    let deadline = Instant::now() + RECOVERY_TIMEOUT;
    loop {
        match poll_routine(
            failed,
            &mut slots[failed],
            merge,
            observed,
            bandwidth,
            membership,
        )? {
            None => {
                if Instant::now() >= deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!("rejoined worker {failed} never sent RecoveryDone"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Some(ClusterMsg::RecoveryDone {
                epoch: e,
                recovered,
            }) if e == epoch => {
                let warm = recovered.len() as u64;
                for (peer, _) in recovered {
                    if (peer as usize) < membership.host_of.len() {
                        membership.host_of[peer as usize] = failed;
                    }
                }
                recorder.note(0, "rejoin_done", format!("worker={failed} warm={warm}"));
                pgrid_obs::info!(
                    "cluster::coordinator",
                    "epoch {epoch}: worker {failed} rejoined warm, replayed {warm} peers \
                     from its durable log"
                );
                return Ok(Some(warm));
            }
            Some(other) => return Err(protocol_error("RecoveryDone", &other)),
        }
    }
}

/// One healing round: announce the new epoch, give each dead worker's
/// relaunched process a chance to reclaim its own shard from its durable
/// log (warm rejoin), reassign the remaining orphans onto the survivors,
/// collect the takeover addresses, re-broadcast the address book, and wait
/// for the replica rebuilds to finish.
#[allow(clippy::too_many_arguments)]
fn heal_round(
    slots: &mut [Slot],
    listener: &TcpListener,
    newly_failed: &[usize],
    phase: u8,
    cluster: &ClusterConfig,
    obs: &ObsOptions,
    merge: &mut ObsMerge,
    observed: &mut ObsReport,
    bandwidth: &mut HashMap<u64, BandwidthSample>,
    membership: &mut Membership,
    recorder: &mut FlightRecorder,
) -> Result<()> {
    if slots.iter().all(|s| !s.alive) && cluster.heal.rejoin_grace_ms == 0 {
        pgrid_obs::error!(
            "cluster::coordinator",
            "no survivors left to heal onto; degrading"
        );
        return Ok(());
    }
    let heal_started = Instant::now();
    membership.epoch += 1;
    let epoch = membership.epoch;

    // Warm rejoin first: a relaunched worker holding the shard's durable
    // log replays it locally, which beats rebuilding every orphan over the
    // data plane from replicas.
    let mut remaining: Vec<usize> = Vec::new();
    for &failed in newly_failed {
        let warm = if cluster.heal.rejoin_grace_ms > 0 {
            try_rejoin(
                slots, listener, failed, phase, epoch, cluster, obs, merge, observed, bandwidth,
                membership, recorder,
            )?
        } else {
            None
        };
        match warm {
            Some(recovered_warm) => {
                let recovery_ms = heal_started.elapsed().as_millis() as u64;
                if let Some(failure) = observed
                    .failures
                    .iter_mut()
                    .rev()
                    .find(|f| f.worker as usize == failed && !f.healed)
                {
                    failure.healed = true;
                    failure.rejoined = true;
                    failure.recovery_ms = recovery_ms;
                    failure.recovered_warm = recovered_warm;
                }
            }
            None => remaining.push(failed),
        }
    }
    if remaining.is_empty() {
        return Ok(());
    }
    // Rejoined workers count as survivors for the remaining orphans: they
    // are parked at the barrier and absorb reassignments like anyone else.
    let survivors: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].alive).collect();
    if survivors.is_empty() {
        pgrid_obs::error!(
            "cluster::coordinator",
            "no survivors left to heal onto; degrading"
        );
        return Ok(());
    }
    let newly_failed: &[usize] = &remaining;
    for &failed in newly_failed {
        let (start, len) = membership.shards[failed];
        for &index in &survivors {
            slots[index].ctl.send(&ClusterMsg::WorkerFailed {
                epoch,
                worker_index: failed as u32,
                shard_start: start as u64,
                shard_len: len as u64,
            })?;
        }
    }

    // Map every orphan onto a survivor (round robin keeps the adopted load
    // even) with a replica hint: the live peer whose last barrier path
    // shares the longest prefix with the orphan's — an exact match *is* a
    // replica of the orphan's partition.
    let failed_set: BTreeSet<usize> = newly_failed.iter().copied().collect();
    let dead_workers: BTreeSet<usize> = (0..slots.len()).filter(|&i| !slots[i].alive).collect();
    let mut moves: Vec<ReassignMove> = Vec::new();
    let mut rr = 0usize;
    for &failed in &failed_set {
        let (start, len) = membership.shards[failed];
        for peer in start..start + len {
            if membership.host_of[peer] != failed {
                continue; // previously adopted elsewhere
            }
            let to_worker = survivors[rr % survivors.len()];
            rr += 1;
            let path = membership.last_paths[peer];
            // Prefer true replicas (identical path) over mere prefix
            // neighbours ...
            let score = |p: usize| {
                let lcp = common_prefix(&path, &membership.last_paths[p]);
                (usize::from(membership.last_paths[p] == path), lcp)
            };
            let candidates: Vec<usize> = (0..cluster.net.n_peers)
                .filter(|&p| p != peer && !dead_workers.contains(&membership.host_of[p]))
                .collect();
            let source = match candidates.iter().copied().map(score).max() {
                // ... and rotate through equally-good sources, so a batch
                // of orphans does not pile its rebuilt state onto one
                // replica's partition.
                Some(best) => {
                    let tied: Vec<usize> = candidates
                        .into_iter()
                        .filter(|&p| score(p) == best)
                        .collect();
                    tied[peer % tied.len()]
                }
                None => peer,
            };
            moves.push(ReassignMove {
                peer: peer as u64,
                to_worker: to_worker as u32,
                source_peer: source as u64,
                path,
            });
        }
    }
    recorder.note(
        0,
        "shard_reassign",
        format!("epoch={epoch} moves={}", moves.len()),
    );
    for &index in &survivors {
        slots[index].ctl.send(&ClusterMsg::ShardReassign {
            epoch,
            moves: moves.clone(),
        })?;
    }

    // Endpoint takeovers: every adopter re-binds the orphaned endpoints
    // locally and reports the fresh addresses.
    let adopters: BTreeSet<usize> = moves.iter().map(|m| m.to_worker as usize).collect();
    let mut new_addrs: Vec<(u64, SocketAddr)> = Vec::new();
    for &index in &adopters {
        let deadline = Instant::now() + RECOVERY_TIMEOUT;
        loop {
            match poll_routine(
                index,
                &mut slots[index],
                merge,
                observed,
                bandwidth,
                membership,
            )? {
                None => {
                    if Instant::now() >= deadline {
                        return Err(Error::new(
                            ErrorKind::TimedOut,
                            format!("worker {index} never sent RecoveryAddrs"),
                        ));
                    }
                }
                Some(ClusterMsg::RecoveryAddrs {
                    epoch: e,
                    peer_addrs,
                }) if e == epoch => {
                    new_addrs.extend(peer_addrs);
                    break;
                }
                Some(other) => return Err(protocol_error("RecoveryAddrs", &other)),
            }
        }
    }
    for (peer, addr) in &new_addrs {
        match membership.book.iter_mut().find(|(p, _)| p == peer) {
            Some(entry) => entry.1 = *addr,
            None => membership.book.push((*peer, *addr)),
        }
    }
    membership.book.sort_unstable_by_key(|&(peer, _)| peer);
    for &index in &survivors {
        slots[index].ctl.send(&ClusterMsg::AddressBook {
            peer_addrs: membership.book.clone(),
        })?;
    }

    // Replica rebuilds: each adopter pulls the orphans' state from live
    // replicas over the data plane (local seeded fallback guarantees
    // termination) and acknowledges.
    let mut recovered_replica = 0u64;
    let mut recovered_local = 0u64;
    for &index in &adopters {
        let deadline = Instant::now() + RECOVERY_TIMEOUT;
        loop {
            match poll_routine(
                index,
                &mut slots[index],
                merge,
                observed,
                bandwidth,
                membership,
            )? {
                None => {
                    if Instant::now() >= deadline {
                        return Err(Error::new(
                            ErrorKind::TimedOut,
                            format!("worker {index} never sent RecoveryDone"),
                        ));
                    }
                }
                Some(ClusterMsg::RecoveryDone {
                    epoch: e,
                    recovered,
                }) if e == epoch => {
                    for (peer, via_replica) in recovered {
                        membership.host_of[peer as usize] = index;
                        if via_replica {
                            recovered_replica += 1;
                        } else {
                            recovered_local += 1;
                        }
                    }
                    break;
                }
                Some(other) => return Err(protocol_error("RecoveryDone", &other)),
            }
        }
    }
    recorder.note(
        0,
        "recovery_done",
        format!("epoch={epoch} replica={recovered_replica} local={recovered_local}"),
    );
    pgrid_obs::info!(
        "cluster::coordinator",
        "epoch {epoch}: healed {} orphans ({recovered_replica} from replicas, \
         {recovered_local} locally)",
        recovered_replica + recovered_local
    );
    // Attribute the recovery to the failures healed this round.
    let per_failure = newly_failed.len().max(1) as u64;
    let recovery_ms = heal_started.elapsed().as_millis() as u64;
    for failure in observed.failures.iter_mut().rev() {
        if failed_set.contains(&(failure.worker as usize)) && !failure.healed {
            failure.healed = true;
            failure.recovery_ms = recovery_ms;
            failure.recovered_replica = recovered_replica / per_failure;
            failure.recovered_local = recovered_local / per_failure;
        }
    }
    Ok(())
}

/// Merges the shard reports into the single-process report shape: paths at
/// their global indices, query aggregates folded, counters summed.
///
/// `last_paths` seeds the path vector so peers of a dead, unhealed shard
/// keep their last barrier-observed path in the partial report; live
/// shards and adopted peers overwrite their entries.
fn merge_reports(
    cluster: &ClusterConfig,
    shards: &[(usize, usize)],
    last_paths: &[Path],
    bandwidth: HashMap<u64, BandwidthSample>,
    reports: Vec<ShardReport>,
) -> DeploymentReport {
    // The ground-truth data assignment is a function of the seed; the
    // coordinator reproduces it exactly as every worker's runtime did.
    let mut rng = StdRng::seed_from_u64(cluster.net.seed);
    let (_, original_entries) = generate_peers(&cluster.net, &mut rng);

    let mut paths = last_paths.to_vec();
    paths.resize(cluster.net.n_peers, Path::root());
    let mut queries = pgrid_net::runtime::QueryAggregates::default();
    let mut online_at_end = 0usize;
    let mut transport = TransportStats::default();
    for report in &reports {
        let start = report.shard_start as usize;
        debug_assert!(shards
            .iter()
            .any(|&(s, l)| s == start && l == report.paths.len()));
        for (offset, path) in report.paths.iter().enumerate() {
            paths[start + offset] = *path;
        }
        for (peer, path) in &report.extra_paths {
            if (*peer as usize) < paths.len() {
                paths[*peer as usize] = *path;
            }
        }
        // Histograms, counters and per-minute buckets all merge by
        // addition, so the fold is order-independent across shards.
        for (_, stats) in &report.query_stats {
            queries.merge(stats);
        }
        online_at_end += report.online_at_end as usize;
        // Sums the global counters and folds the per-peer link maps: a
        // peer's entry ends up holding the cluster-wide traffic concerning
        // it (frames sent *to* it by any shard, frames received *for* it by
        // its host).
        transport.merge(&report.transport);
    }

    let inputs = ReportInputs {
        n_peers: cluster.net.n_peers,
        params: cluster.net.balance_params(),
        original_keys: original_entries.iter().map(|e| e.key).collect(),
        paths,
        queries,
        bandwidth_per_minute: bandwidth,
        online_at_end,
        transport,
    };
    assemble_report(&inputs, &cluster.timeline)
}
