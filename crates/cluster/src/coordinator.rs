//! The rendezvous coordinator: one socket, N workers, one merged report.
//!
//! The coordinator owns no peers.  It assigns contiguous shards in accept
//! order, relays the address book so every worker can wire every foreign
//! peer as a transport remote, releases the phase barriers once all workers
//! reached them, and merges the streamed per-minute samples plus the final
//! shard reports into a single [`DeploymentReport`] through the same
//! [`assemble_report`] pipeline the single-process driver uses.

use crate::plan::shard_assignment;
use crate::proto::{ClusterMsg, ControlChannel, ShardReport, PHASE_DONE, PHASE_WIRED};
use pgrid_net::experiment::{assemble_report, DeploymentReport, ReportInputs, Timeline};
use pgrid_net::runtime::{generate_peers, BandwidthSample, NetConfig};
use pgrid_transport::TransportStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Error, ErrorKind, Result};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// How long the coordinator waits for all workers to connect.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(120);

/// How long the coordinator waits for one worker to finish a phase.
const PHASE_TIMEOUT: Duration = Duration::from_secs(600);

/// A cluster run description.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker processes that will connect.
    pub n_workers: usize,
    /// The deployment configuration every worker receives.
    pub net: NetConfig,
    /// The phase timeline every worker receives.
    pub timeline: Timeline,
}

fn protocol_error(what: &str, got: &ClusterMsg) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("expected {what}, got {got:?}"),
    )
}

/// Accepts `cluster.n_workers` workers on `listener`, runs the rendezvous
/// and the barrier protocol to completion, and returns the merged report.
pub fn run_coordinator(listener: TcpListener, cluster: &ClusterConfig) -> Result<DeploymentReport> {
    assert!(
        cluster.n_workers >= 1,
        "a cluster needs at least one worker"
    );
    let shards = shard_assignment(cluster.net.n_peers, cluster.n_workers);

    // --- accept and assign --------------------------------------------------
    listener.set_nonblocking(true)?;
    let accept_deadline = Instant::now() + ACCEPT_TIMEOUT;
    let mut workers: Vec<ControlChannel> = Vec::with_capacity(cluster.n_workers);
    while workers.len() < cluster.n_workers {
        match listener.accept() {
            Ok((stream, _)) => workers.push(ControlChannel::new(stream)?),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= accept_deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "only {}/{} workers connected",
                            workers.len(),
                            cluster.n_workers
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    for (index, worker) in workers.iter_mut().enumerate() {
        let (start, len) = shards[index];
        worker.send(&ClusterMsg::Welcome {
            worker_index: index as u32,
            n_workers: cluster.n_workers as u32,
            shard_start: start as u64,
            shard_len: len as u64,
            config: cluster.net.clone(),
            timeline: cluster.timeline,
        })?;
    }

    // --- gather endpoints, broadcast the address book -----------------------
    let mut book: Vec<(u64, std::net::SocketAddr)> = Vec::with_capacity(cluster.net.n_peers);
    for (index, worker) in workers.iter_mut().enumerate() {
        let hello = worker.recv_timeout(PHASE_TIMEOUT)?;
        let ClusterMsg::Hello {
            shard_start,
            peer_addrs,
        } = hello
        else {
            return Err(protocol_error("Hello", &hello));
        };
        let (start, len) = shards[index];
        if shard_start as usize != start || peer_addrs.len() != len {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "worker {index} announced shard {shard_start}+{} instead of {start}+{len}",
                    peer_addrs.len()
                ),
            ));
        }
        book.extend(peer_addrs);
    }
    book.sort_unstable_by_key(|&(peer, _)| peer);
    for worker in &mut workers {
        worker.send(&ClusterMsg::AddressBook {
            peer_addrs: book.clone(),
        })?;
    }

    // --- barriers, sample streaming, final reports --------------------------
    let mut bandwidth: HashMap<u64, BandwidthSample> = HashMap::new();
    let mut merge_minutes = |samples: Vec<(u64, u64, u64)>| {
        for (minute, maintenance, query) in samples {
            let entry = bandwidth.entry(minute).or_default();
            entry.maintenance_bytes += maintenance as usize;
            entry.query_bytes += query as usize;
        }
    };
    for phase in PHASE_WIRED..=PHASE_DONE {
        for (index, worker) in workers.iter_mut().enumerate() {
            loop {
                match worker.recv_timeout(PHASE_TIMEOUT)? {
                    ClusterMsg::Minutes { samples } => merge_minutes(samples),
                    ClusterMsg::PhaseDone { phase: p } if p == phase => break,
                    other => {
                        return Err(Error::new(
                            ErrorKind::InvalidData,
                            format!("worker {index}: expected PhaseDone({phase}), got {other:?}"),
                        ))
                    }
                }
            }
        }
        for worker in &mut workers {
            worker.send(&ClusterMsg::Proceed { phase })?;
        }
    }
    let mut reports: Vec<ShardReport> = Vec::with_capacity(cluster.n_workers);
    for (index, worker) in workers.iter_mut().enumerate() {
        loop {
            match worker.recv_timeout(PHASE_TIMEOUT)? {
                ClusterMsg::Minutes { samples } => merge_minutes(samples),
                ClusterMsg::Report(report) => {
                    reports.push(report);
                    break;
                }
                other => {
                    return Err(Error::new(
                        ErrorKind::InvalidData,
                        format!("worker {index}: expected Report, got {other:?}"),
                    ))
                }
            }
        }
    }

    Ok(merge_reports(cluster, &shards, bandwidth, reports))
}

/// Merges the shard reports into the single-process report shape: paths at
/// their global indices, query aggregates folded, counters summed.
fn merge_reports(
    cluster: &ClusterConfig,
    shards: &[(usize, usize)],
    bandwidth: HashMap<u64, BandwidthSample>,
    reports: Vec<ShardReport>,
) -> DeploymentReport {
    // The ground-truth data assignment is a function of the seed; the
    // coordinator reproduces it exactly as every worker's runtime did.
    let mut rng = StdRng::seed_from_u64(cluster.net.seed);
    let (_, original_entries) = generate_peers(&cluster.net, &mut rng);

    let mut paths = vec![pgrid_core::path::Path::root(); cluster.net.n_peers];
    let mut queries = pgrid_net::runtime::QueryAggregates::default();
    let mut online_at_end = 0usize;
    let mut transport = TransportStats::default();
    for report in &reports {
        let start = report.shard_start as usize;
        debug_assert!(shards
            .iter()
            .any(|&(s, l)| s == start && l == report.paths.len()));
        for (offset, path) in report.paths.iter().enumerate() {
            paths[start + offset] = *path;
        }
        // Histograms, counters and per-minute buckets all merge by
        // addition, so the fold is order-independent across shards.
        for (_, stats) in &report.query_stats {
            queries.merge(stats);
        }
        online_at_end += report.online_at_end as usize;
        // Sums the global counters and folds the per-peer link maps: a
        // peer's entry ends up holding the cluster-wide traffic concerning
        // it (frames sent *to* it by any shard, frames received *for* it by
        // its host).
        transport.merge(&report.transport);
    }

    let inputs = ReportInputs {
        n_peers: cluster.net.n_peers,
        params: cluster.net.balance_params(),
        original_keys: original_entries.iter().map(|e| e.key).collect(),
        paths,
        queries,
        bandwidth_per_minute: bandwidth,
        online_at_end,
        transport,
    };
    assemble_report(&inputs, &cluster.timeline)
}
