//! The rendezvous coordinator: one socket, N workers, one merged report.
//!
//! The coordinator owns no peers.  It assigns contiguous shards in accept
//! order, relays the address book so every worker can wire every foreign
//! peer as a transport remote, releases the phase barriers once all workers
//! reached them, and merges the streamed per-minute samples plus the final
//! shard reports into a single [`DeploymentReport`] through the same
//! [`assemble_report`] pipeline the single-process driver uses.

use crate::plan::shard_assignment;
use crate::proto::{ClusterMsg, ControlChannel, ShardReport, PHASE_DONE, PHASE_WIRED};
use pgrid_net::experiment::{assemble_report, DeploymentReport, ReportInputs, Timeline};
use pgrid_net::runtime::{generate_peers, BandwidthSample, NetConfig};
use pgrid_obs::recorder::FlightRecorder;
use pgrid_obs::registry::MetricsRegistry;
use pgrid_obs::scrape::{http_get, ScrapeState};
use pgrid_obs::trace::{assemble, TraceEvent};
use pgrid_transport::TransportStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Error, ErrorKind, Result, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the coordinator waits for all workers to connect.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(120);

/// How long the coordinator waits for one worker to finish a phase.
const PHASE_TIMEOUT: Duration = Duration::from_secs(600);

/// A cluster run description.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker processes that will connect.
    pub n_workers: usize,
    /// The deployment configuration every worker receives.
    pub net: NetConfig,
    /// The phase timeline every worker receives.
    pub timeline: Timeline,
}

/// Observability options of a coordinator run.
#[derive(Clone, Debug, Default)]
pub struct ObsOptions {
    /// Enable structured tracing on every worker; the coordinator merges
    /// the shipped batches into cluster-wide hop chains.
    pub tracing: bool,
    /// A caller-owned scrape state the coordinator publishes the merged
    /// registry and traces into at every phase barrier (the caller binds
    /// the [`pgrid_obs::scrape::ScrapeServer`] itself, so it knows the
    /// address up front).
    pub scrape: Option<Arc<ScrapeState>>,
    /// Where the merged trace is written as JSONL when the run finishes.
    pub trace_out: Option<PathBuf>,
    /// Where the coordinator's flight recorder dumps when a worker fails.
    pub flight_dump: Option<PathBuf>,
    /// Where the merged Prometheus text is flushed at every phase barrier
    /// (and once more with the final report).
    pub metrics_out: Option<PathBuf>,
}

/// What the coordinator observed beyond the deployment report.
#[derive(Debug, Default)]
pub struct ObsReport {
    /// The merged registry at the end of the run (worker series labelled
    /// `worker="<index>"`).
    pub registry: MetricsRegistry,
    /// Every trace event shipped by any worker, in arrival order.
    pub trace_events: Vec<TraceEvent>,
    /// Scrape endpoint of each worker, in shard order (when serving).
    pub worker_metrics_addrs: Vec<Option<SocketAddr>>,
}

fn protocol_error(what: &str, got: &ClusterMsg) -> Error {
    Error::new(
        ErrorKind::InvalidData,
        format!("expected {what}, got {got:?}"),
    )
}

/// Coordinator-side observability merge state, rebuilt into one registry
/// at each phase barrier.
struct ObsMerge {
    /// Latest registry snapshot streamed by each worker.
    worker_regs: Vec<Option<MetricsRegistry>>,
    /// Successful mid-run `/metrics` probes of each worker so far.
    scrape_ok: Vec<u64>,
    /// Body size of each worker's most recent successful probe.
    scrape_bytes: Vec<u64>,
    /// Merged publications performed (one per barrier plus the final one).
    flushes: u64,
    /// Trace events already pushed to the scrape state.
    published_events: usize,
}

impl ObsMerge {
    fn new(n_workers: usize) -> ObsMerge {
        ObsMerge {
            worker_regs: vec![None; n_workers],
            scrape_ok: vec![0; n_workers],
            scrape_bytes: vec![0; n_workers],
            flushes: 0,
            published_events: 0,
        }
    }

    /// Probes every announced worker scrape endpoint over real HTTP,
    /// rebuilds the cluster-wide registry (worker series labelled
    /// `worker="<index>"`), publishes it to the scrape state and the
    /// per-barrier metrics file, and returns it.
    fn barrier_publish(
        &mut self,
        phase: u8,
        cluster: &ClusterConfig,
        obs: &ObsOptions,
        observed: &ObsReport,
    ) -> MetricsRegistry {
        for (index, addr) in observed.worker_metrics_addrs.iter().enumerate() {
            let Some(addr) = addr else { continue };
            if let Ok(body) = http_get(*addr, "/metrics") {
                self.scrape_ok[index] += 1;
                self.scrape_bytes[index] = body.len() as u64;
            }
        }
        self.flushes += 1;
        let mut merged = MetricsRegistry::new();
        merged.gauge(
            "pgrid_cluster_workers",
            "Number of worker processes in the cluster.",
            &[],
            cluster.n_workers as f64,
        );
        merged.gauge(
            "pgrid_cluster_phase",
            "Latest phase barrier the whole cluster reached.",
            &[],
            phase as f64,
        );
        merged.counter(
            "pgrid_cluster_metrics_flushes_total",
            "Merged metrics publications (one per phase barrier).",
            &[],
            self.flushes,
        );
        for (index, registry) in self.worker_regs.iter().enumerate() {
            let worker = index.to_string();
            if let Some(registry) = registry {
                merged.absorb(registry, Some(("worker", &worker)));
            }
            if let Some(Some(addr)) = observed.worker_metrics_addrs.get(index) {
                merged.gauge(
                    "pgrid_cluster_worker_metrics_port",
                    "Bound /metrics port of a worker scrape endpoint.",
                    &[("worker", &worker)],
                    addr.port() as f64,
                );
                merged.counter(
                    "pgrid_cluster_worker_scrape_ok_total",
                    "Successful mid-run HTTP scrapes of a worker's /metrics.",
                    &[("worker", &worker)],
                    self.scrape_ok[index],
                );
                merged.gauge(
                    "pgrid_cluster_worker_scrape_bytes",
                    "Body size of the latest successful worker scrape.",
                    &[("worker", &worker)],
                    self.scrape_bytes[index] as f64,
                );
            }
        }
        let text = merged.encode();
        if let Some(state) = &obs.scrape {
            state.publish_metrics(text.clone());
            if observed.trace_events.len() > self.published_events {
                state.publish_trace_events(&observed.trace_events[self.published_events..]);
                self.published_events = observed.trace_events.len();
            }
        }
        if let Some(path) = &obs.metrics_out {
            let _ = std::fs::write(path, &text);
        }
        merged
    }
}

/// Accepts `cluster.n_workers` workers on `listener`, runs the rendezvous
/// and the barrier protocol to completion, and returns the merged report.
pub fn run_coordinator(listener: TcpListener, cluster: &ClusterConfig) -> Result<DeploymentReport> {
    run_coordinator_observed(listener, cluster, &ObsOptions::default()).map(|(report, _)| report)
}

/// [`run_coordinator`] with observability: merged metrics/trace publishing
/// at every barrier, worker `/metrics` probing, and a flight-recorder dump
/// when a worker fails mid-run.
pub fn run_coordinator_observed(
    listener: TcpListener,
    cluster: &ClusterConfig,
    obs: &ObsOptions,
) -> Result<(DeploymentReport, ObsReport)> {
    let mut recorder = FlightRecorder::default();
    let mut observed = ObsReport::default();
    match coordinate(listener, cluster, obs, &mut recorder, &mut observed) {
        Ok(report) => Ok((report, observed)),
        Err(e) => {
            recorder.note(0, "worker_failure", e.to_string());
            if let Some(path) = &obs.flight_dump {
                let _ = recorder.dump_to(path, "worker failure");
            }
            pgrid_obs::error!("cluster::coordinator", "cluster run failed: {e}");
            Err(e)
        }
    }
}

fn coordinate(
    listener: TcpListener,
    cluster: &ClusterConfig,
    obs: &ObsOptions,
    recorder: &mut FlightRecorder,
    observed: &mut ObsReport,
) -> Result<DeploymentReport> {
    assert!(
        cluster.n_workers >= 1,
        "a cluster needs at least one worker"
    );
    let shards = shard_assignment(cluster.net.n_peers, cluster.n_workers);
    let mut merge = ObsMerge::new(cluster.n_workers);

    // --- accept and assign --------------------------------------------------
    listener.set_nonblocking(true)?;
    let accept_deadline = Instant::now() + ACCEPT_TIMEOUT;
    let mut workers: Vec<ControlChannel> = Vec::with_capacity(cluster.n_workers);
    while workers.len() < cluster.n_workers {
        match listener.accept() {
            Ok((stream, _)) => workers.push(ControlChannel::new(stream)?),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= accept_deadline {
                    return Err(Error::new(
                        ErrorKind::TimedOut,
                        format!(
                            "only {}/{} workers connected",
                            workers.len(),
                            cluster.n_workers
                        ),
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    recorder.note(
        0,
        "accepted",
        format!("{} workers connected", workers.len()),
    );
    pgrid_obs::info!(
        "cluster::coordinator",
        "{} workers connected, assigning shards",
        workers.len()
    );
    for (index, worker) in workers.iter_mut().enumerate() {
        let (start, len) = shards[index];
        worker.send(&ClusterMsg::Welcome {
            worker_index: index as u32,
            n_workers: cluster.n_workers as u32,
            shard_start: start as u64,
            shard_len: len as u64,
            config: cluster.net.clone(),
            timeline: cluster.timeline,
            tracing: obs.tracing,
        })?;
    }

    // --- gather endpoints, broadcast the address book -----------------------
    let mut book: Vec<(u64, std::net::SocketAddr)> = Vec::with_capacity(cluster.net.n_peers);
    for (index, worker) in workers.iter_mut().enumerate() {
        let hello = worker.recv_timeout(PHASE_TIMEOUT)?;
        let ClusterMsg::Hello {
            shard_start,
            peer_addrs,
            metrics_addr,
        } = hello
        else {
            return Err(protocol_error("Hello", &hello));
        };
        observed.worker_metrics_addrs.push(metrics_addr);
        recorder.note(
            0,
            "hello",
            format!("worker={index} shard={shard_start} metrics={metrics_addr:?}"),
        );
        let (start, len) = shards[index];
        if shard_start as usize != start || peer_addrs.len() != len {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "worker {index} announced shard {shard_start}+{} instead of {start}+{len}",
                    peer_addrs.len()
                ),
            ));
        }
        book.extend(peer_addrs);
    }
    book.sort_unstable_by_key(|&(peer, _)| peer);
    for worker in &mut workers {
        worker.send(&ClusterMsg::AddressBook {
            peer_addrs: book.clone(),
        })?;
    }

    // --- barriers, sample streaming, final reports --------------------------
    let mut bandwidth: HashMap<u64, BandwidthSample> = HashMap::new();
    let mut merge_minutes = |samples: Vec<(u64, u64, u64)>| {
        for (minute, maintenance, query) in samples {
            let entry = bandwidth.entry(minute).or_default();
            entry.maintenance_bytes += maintenance as usize;
            entry.query_bytes += query as usize;
        }
    };
    for phase in PHASE_WIRED..=PHASE_DONE {
        for (index, worker) in workers.iter_mut().enumerate() {
            loop {
                match worker.recv_timeout(PHASE_TIMEOUT)? {
                    ClusterMsg::Minutes { samples } => merge_minutes(samples),
                    ClusterMsg::TraceBatch { events } => observed.trace_events.extend(events),
                    ClusterMsg::MetricsSnapshot { registry } => {
                        merge.worker_regs[index] = Some(
                            MetricsRegistry::decode_wire(&registry)
                                .map_err(|e| Error::new(ErrorKind::InvalidData, e))?,
                        );
                    }
                    ClusterMsg::PhaseDone { phase: p } if p == phase => break,
                    other => {
                        return Err(Error::new(
                            ErrorKind::InvalidData,
                            format!("worker {index}: expected PhaseDone({phase}), got {other:?}"),
                        ))
                    }
                }
            }
        }
        // Every worker reached the barrier: refresh the merged live view
        // before releasing them into the next phase.
        merge.barrier_publish(phase, cluster, obs, observed);
        recorder.note(0, "barrier", format!("phase={phase} released"));
        pgrid_obs::debug!("cluster::coordinator", "phase {phase} barrier released");
        for worker in &mut workers {
            worker.send(&ClusterMsg::Proceed { phase })?;
        }
    }
    let mut reports: Vec<ShardReport> = Vec::with_capacity(cluster.n_workers);
    for (index, worker) in workers.iter_mut().enumerate() {
        loop {
            match worker.recv_timeout(PHASE_TIMEOUT)? {
                ClusterMsg::Minutes { samples } => merge_minutes(samples),
                ClusterMsg::TraceBatch { events } => observed.trace_events.extend(events),
                ClusterMsg::MetricsSnapshot { registry } => {
                    merge.worker_regs[index] = Some(
                        MetricsRegistry::decode_wire(&registry)
                            .map_err(|e| Error::new(ErrorKind::InvalidData, e))?,
                    );
                }
                ClusterMsg::Report(report) => {
                    reports.push(report);
                    break;
                }
                other => {
                    return Err(Error::new(
                        ErrorKind::InvalidData,
                        format!("worker {index}: expected Report, got {other:?}"),
                    ))
                }
            }
        }
    }

    observed.registry = merge.barrier_publish(PHASE_DONE, cluster, obs, observed);
    if let Some(path) = &obs.trace_out {
        let mut file = std::fs::File::create(path)?;
        for chain in assemble(&observed.trace_events).values() {
            for event in chain {
                writeln!(file, "{}", event.to_json())?;
            }
        }
        pgrid_obs::info!(
            "cluster::coordinator",
            "merged trace ({} events) written to {}",
            observed.trace_events.len(),
            path.display()
        );
    }
    Ok(merge_reports(cluster, &shards, bandwidth, reports))
}

/// Merges the shard reports into the single-process report shape: paths at
/// their global indices, query aggregates folded, counters summed.
fn merge_reports(
    cluster: &ClusterConfig,
    shards: &[(usize, usize)],
    bandwidth: HashMap<u64, BandwidthSample>,
    reports: Vec<ShardReport>,
) -> DeploymentReport {
    // The ground-truth data assignment is a function of the seed; the
    // coordinator reproduces it exactly as every worker's runtime did.
    let mut rng = StdRng::seed_from_u64(cluster.net.seed);
    let (_, original_entries) = generate_peers(&cluster.net, &mut rng);

    let mut paths = vec![pgrid_core::path::Path::root(); cluster.net.n_peers];
    let mut queries = pgrid_net::runtime::QueryAggregates::default();
    let mut online_at_end = 0usize;
    let mut transport = TransportStats::default();
    for report in &reports {
        let start = report.shard_start as usize;
        debug_assert!(shards
            .iter()
            .any(|&(s, l)| s == start && l == report.paths.len()));
        for (offset, path) in report.paths.iter().enumerate() {
            paths[start + offset] = *path;
        }
        // Histograms, counters and per-minute buckets all merge by
        // addition, so the fold is order-independent across shards.
        for (_, stats) in &report.query_stats {
            queries.merge(stats);
        }
        online_at_end += report.online_at_end as usize;
        // Sums the global counters and folds the per-peer link maps: a
        // peer's entry ends up holding the cluster-wide traffic concerning
        // it (frames sent *to* it by any shard, frames received *for* it by
        // its host).
        transport.merge(&report.transport);
    }

    let inputs = ReportInputs {
        n_peers: cluster.net.n_peers,
        params: cluster.net.balance_params(),
        original_keys: original_entries.iter().map(|e| e.key).collect(),
        paths,
        queries,
        bandwidth_per_minute: bandwidth,
        online_at_end,
        transport,
    };
    assemble_report(&inputs, &cluster.timeline)
}
