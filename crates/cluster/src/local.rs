//! Local cluster mode: coordinator in-process, workers as real child
//! processes.
//!
//! This is the zero-setup way to cross a process boundary — used by the
//! multi-process e2e test and the `pgrid-cluster local` subcommand.  The
//! coordinator binds an ephemeral loopback socket, spawns N copies of the
//! worker binary pointed at it, and runs the rendezvous exactly as it would
//! for workers started by hand on other machines.

use crate::coordinator::{
    run_coordinator_observed, ClusterConfig, HealConfig, ObsOptions, ObsReport,
};
use crate::worker::{TransportChoice, KILL_EXIT_CODE};
use pgrid_net::experiment::{DeploymentReport, Timeline};
use pgrid_net::runtime::NetConfig;
use std::io::{Error, Result};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Options of a local (self-spawned) cluster run.
#[derive(Clone, Debug)]
pub struct LocalOptions {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Path of the worker executable; `None` uses the current executable
    /// (correct when the caller *is* the `pgrid-cluster` binary — tests
    /// pass their `CARGO_BIN_EXE_pgrid-cluster` instead).
    pub worker_exe: Option<PathBuf>,
    /// Whether worker stderr is passed through (stdout is always null —
    /// workers print nothing on success).
    pub inherit_stderr: bool,
    /// Coordinator-side observability (tracing, merged scrape state,
    /// trace/metrics files, flight dump).
    pub obs: ObsOptions,
    /// Spawn every worker with `--metrics-addr 127.0.0.1:0`, so each one
    /// serves a live `/metrics` endpoint the coordinator probes mid-run.
    pub worker_metrics: bool,
    /// Directory the workers write their flight-recorder dumps into
    /// (`worker-<index>.jsonl`).
    pub worker_flight_dir: Option<PathBuf>,
    /// Failure detection and self-healing parameters (including the
    /// optional kill-worker fault injection).
    pub heal: HealConfig,
    /// Base directory for per-worker durable logs: worker `i` is spawned
    /// with `--data-dir <base>/worker-<i>`.  `None` runs without
    /// persistence (the pre-v6 behaviour).
    pub data_dir: Option<PathBuf>,
    /// Respawn a worker that exits with [`KILL_EXIT_CODE`] (fault
    /// injection) with identical arguments, so it can warm-rejoin from its
    /// durable log.  Requires `data_dir` to be useful and a
    /// `heal.rejoin_grace_ms > 0` coordinator to be accepted.
    pub relaunch: bool,
    /// Data-plane backend every spawned worker hosts its shard on
    /// (`--transport` passthrough).
    pub transport: TransportChoice,
    /// Reactor event threads per worker (0 = one per core); forwarded as
    /// `--event-threads` when non-zero.
    pub n_event_threads: usize,
}

impl Default for LocalOptions {
    fn default() -> LocalOptions {
        LocalOptions {
            workers: 2,
            worker_exe: None,
            inherit_stderr: true,
            obs: ObsOptions::default(),
            worker_metrics: false,
            worker_flight_dir: None,
            heal: HealConfig::default(),
            data_dir: None,
            relaunch: false,
            transport: TransportChoice::default(),
            n_event_threads: 0,
        }
    }
}

/// Kills whatever children are still running when the coordinator bails
/// out, so a failed run never leaks worker processes.
struct Reaper {
    children: Vec<Child>,
}

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Runs a full deployment as one coordinator (this process) plus
/// `options.workers` spawned worker processes, and returns the merged
/// report.
pub fn run_local(
    config: &NetConfig,
    timeline: &Timeline,
    options: &LocalOptions,
) -> Result<DeploymentReport> {
    run_local_observed(config, timeline, options).map(|(report, _)| report)
}

/// [`run_local`] returning the coordinator's observability report (merged
/// registry, trace events, worker scrape endpoints) alongside the
/// deployment report.
pub fn run_local_observed(
    config: &NetConfig,
    timeline: &Timeline,
    options: &LocalOptions,
) -> Result<(DeploymentReport, ObsReport)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let exe = match &options.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()?,
    };

    let spawn = |index: usize| -> Result<Child> {
        let mut command = Command::new(&exe);
        command.arg("worker").arg("--connect").arg(addr.to_string());
        if options.worker_metrics {
            command.arg("--metrics-addr").arg("127.0.0.1:0");
        }
        if let Some(dir) = &options.worker_flight_dir {
            command
                .arg("--flight-dump")
                .arg(dir.join(format!("worker-{index}.jsonl")));
        }
        if let Some(dir) = &options.data_dir {
            command
                .arg("--data-dir")
                .arg(dir.join(format!("worker-{index}")));
        }
        if options.transport != TransportChoice::default() {
            command
                .arg("--transport")
                .arg(options.transport.to_string());
        }
        if options.n_event_threads > 0 {
            command
                .arg("--event-threads")
                .arg(options.n_event_threads.to_string());
        }
        command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(if options.inherit_stderr {
                Stdio::inherit()
            } else {
                Stdio::null()
            })
            .spawn()
    };

    let mut reaper = Reaper {
        children: Vec::with_capacity(options.workers),
    };
    for index in 0..options.workers {
        reaper.children.push(spawn(index)?);
    }

    let cluster = ClusterConfig {
        n_workers: options.workers,
        net: config.clone(),
        timeline: *timeline,
        heal: options.heal.clone(),
    };
    let result = if options.relaunch {
        // Hand the children to a monitor thread that respawns any worker
        // exiting with the fault-injection code — with identical arguments,
        // so it finds its durable log and warm-rejoins.  The slot index IS
        // the spawn index (a replacement takes its predecessor's slot).
        let stop = AtomicBool::new(false);
        let children = std::mem::take(&mut reaper.children);
        let monitor_loop = |mut children: Vec<Child>| -> Vec<Child> {
            while !stop.load(Ordering::SeqCst) {
                for (index, child) in children.iter_mut().enumerate() {
                    let Ok(Some(status)) = child.try_wait() else {
                        continue;
                    };
                    if status.code() != Some(KILL_EXIT_CODE) {
                        continue;
                    }
                    match spawn(index) {
                        Ok(replacement) => {
                            pgrid_obs::info!(
                                "cluster::local",
                                "worker process in slot {index} exited with the kill code; \
                                 relaunching it with the same arguments"
                            );
                            *child = replacement;
                        }
                        Err(e) => {
                            pgrid_obs::warn!(
                                "cluster::local",
                                "relaunch of worker process in slot {index} failed: {e}"
                            );
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            children
        };
        std::thread::scope(|scope| {
            let monitor = scope.spawn(|| monitor_loop(children));
            let result = run_coordinator_observed(listener, &cluster, &options.obs);
            stop.store(true, Ordering::SeqCst);
            reaper.children = monitor.join().expect("relaunch monitor panicked");
            result
        })
    } else {
        run_coordinator_observed(listener, &cluster, &options.obs)
    };
    let (report, observed) = result?;

    // A clean run means every worker exits on its own with status 0 —
    // except the workers the coordinator itself watched die (injected
    // kills, real crashes): each observed failure excuses exactly one
    // non-success child exit.
    let mut failures_budget = observed.failures.len();
    let children = std::mem::take(&mut reaper.children);
    drop(reaper);
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            if failures_budget > 0 {
                failures_budget -= 1;
                pgrid_obs::info!(
                    "cluster::local",
                    "worker process exited with {status} (coordinator-observed failure)"
                );
            } else {
                return Err(Error::other(format!("worker process exited with {status}")));
            }
        }
    }
    Ok((report, observed))
}
