//! Local cluster mode: coordinator in-process, workers as real child
//! processes.
//!
//! This is the zero-setup way to cross a process boundary — used by the
//! multi-process e2e test and the `pgrid-cluster local` subcommand.  The
//! coordinator binds an ephemeral loopback socket, spawns N copies of the
//! worker binary pointed at it, and runs the rendezvous exactly as it would
//! for workers started by hand on other machines.

use crate::coordinator::{run_coordinator, ClusterConfig};
use pgrid_net::experiment::{DeploymentReport, Timeline};
use pgrid_net::runtime::NetConfig;
use std::io::{Error, Result};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

/// Options of a local (self-spawned) cluster run.
#[derive(Clone, Debug)]
pub struct LocalOptions {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Path of the worker executable; `None` uses the current executable
    /// (correct when the caller *is* the `pgrid-cluster` binary — tests
    /// pass their `CARGO_BIN_EXE_pgrid-cluster` instead).
    pub worker_exe: Option<PathBuf>,
    /// Whether worker stderr is passed through (stdout is always null —
    /// workers print nothing on success).
    pub inherit_stderr: bool,
}

impl Default for LocalOptions {
    fn default() -> LocalOptions {
        LocalOptions {
            workers: 2,
            worker_exe: None,
            inherit_stderr: true,
        }
    }
}

/// Kills whatever children are still running when the coordinator bails
/// out, so a failed run never leaks worker processes.
struct Reaper {
    children: Vec<Child>,
}

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Runs a full deployment as one coordinator (this process) plus
/// `options.workers` spawned worker processes, and returns the merged
/// report.
pub fn run_local(
    config: &NetConfig,
    timeline: &Timeline,
    options: &LocalOptions,
) -> Result<DeploymentReport> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let exe = match &options.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()?,
    };

    let mut reaper = Reaper {
        children: Vec::with_capacity(options.workers),
    };
    for _ in 0..options.workers {
        let child = Command::new(&exe)
            .arg("worker")
            .arg("--connect")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(if options.inherit_stderr {
                Stdio::inherit()
            } else {
                Stdio::null()
            })
            .spawn()?;
        reaper.children.push(child);
    }

    let cluster = ClusterConfig {
        n_workers: options.workers,
        net: config.clone(),
        timeline: *timeline,
    };
    let report = run_coordinator(listener, &cluster)?;

    // A clean run means every worker exits on its own with status 0.
    let children = std::mem::take(&mut reaper.children);
    drop(reaper);
    for mut child in children {
        let status = child.wait()?;
        if !status.success() {
            return Err(Error::other(format!("worker process exited with {status}")));
        }
    }
    Ok(report)
}
