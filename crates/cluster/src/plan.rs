//! Deterministic schedules every worker derives independently.
//!
//! A sharded runtime only hosts part of the peer population, but three
//! pieces of *global* knowledge must still be consistent across processes:
//! the unstructured-overlay adjacency (the random-walk contact sampling and
//! query routing read neighbour lists of peers a worker does not host), the
//! join ramp, and the churn schedule (routing uses scheduled liveness of
//! remote peers as its failure detector — exactly the information a real
//! deployment would gossip).  Rather than replicating this state through
//! messages, every worker computes it from the shared seed: same
//! [`NetConfig`], same plan, in every process — the coordinator never has
//! to ship it.

use pgrid_core::routing::PeerId;
use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::NetConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Milliseconds per minute of virtual time.
pub const MINUTE_MS: u64 = 60_000;

/// Bootstrap fanout of the join phase (the Section 5.1 driver uses 6).
pub const JOIN_FANOUT: usize = 6;

// The plans produce the scenario API's event types directly, so they slot
// into `Phase::JoinSchedule` / `Phase::ChurnSchedule` without conversion.
pub use pgrid_scenario::scenario::{ChurnEvent, JoinEvent};

/// The join ramp: peer `i` joins at `i * join_end / n` with
/// [`JOIN_FANOUT`] contacts drawn uniformly from the already-joined
/// population, mirroring the single-process driver's
/// `Runtime::join_peer` selection.
pub fn join_plan(config: &NetConfig, timeline: &Timeline) -> Vec<JoinEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x4A01_4E5F);
    let join_end = timeline.join_end_min * MINUTE_MS;
    let mut joined: Vec<PeerId> = Vec::with_capacity(config.n_peers);
    let mut events = Vec::with_capacity(config.n_peers);
    for peer in 0..config.n_peers {
        let at = (peer as u64 * join_end) / config.n_peers as u64;
        let mut neighbours = joined.clone();
        neighbours.shuffle(&mut rng);
        neighbours.truncate(JOIN_FANOUT);
        events.push(JoinEvent {
            at,
            peer,
            neighbours,
        });
        joined.push(PeerId(peer as u64));
    }
    events
}

/// The churn schedule of the final phase: each peer independently goes
/// offline for 1–5 minutes every 5–10 minutes between the query and the
/// end boundary, as in the paper's Section 5.1.
pub fn churn_plan(config: &NetConfig, timeline: &Timeline) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC4_5211);
    let query_end = timeline.query_end_min * MINUTE_MS;
    let churn_end = timeline.end_min * MINUTE_MS;
    let mut events = Vec::new();
    for peer in 0..config.n_peers {
        let mut at = query_end + rng.gen_range(0..5 * MINUTE_MS);
        while at < churn_end {
            let downtime = rng.gen_range(MINUTE_MS..=5 * MINUTE_MS);
            events.push(ChurnEvent { peer, at, downtime });
            at += downtime + rng.gen_range(5 * MINUTE_MS..=10 * MINUTE_MS);
        }
    }
    events
}

/// Splits `n_peers` into `n_workers` contiguous shards, as even as
/// possible: the first `n_peers % n_workers` shards get one extra peer.
/// Returns `(start, len)` per worker.
pub fn shard_assignment(n_peers: usize, n_workers: usize) -> Vec<(usize, usize)> {
    assert!(n_workers >= 1, "a cluster needs at least one worker");
    assert!(
        n_workers <= n_peers,
        "cannot split {n_peers} peers across {n_workers} workers"
    );
    let base = n_peers / n_workers;
    let extra = n_peers % n_workers;
    let mut shards = Vec::with_capacity(n_workers);
    let mut start = 0;
    for worker in 0..n_workers {
        let len = base + usize::from(worker < extra);
        shards.push((start, len));
        start += len;
    }
    debug_assert_eq!(start, n_peers);
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n_peers: usize) -> NetConfig {
        NetConfig {
            n_peers,
            seed: 99,
            ..NetConfig::default()
        }
    }

    #[test]
    fn plans_are_reproducible_and_seed_sensitive() {
        let timeline = Timeline::default();
        let a = join_plan(&config(64), &timeline);
        let b = join_plan(&config(64), &timeline);
        assert_eq!(a, b, "same seed, same plan");
        let other = join_plan(
            &NetConfig {
                seed: 100,
                ..config(64)
            },
            &timeline,
        );
        assert_ne!(a, other, "the plan must depend on the seed");
        assert_eq!(
            churn_plan(&config(64), &timeline),
            churn_plan(&config(64), &timeline)
        );
    }

    #[test]
    fn join_plan_covers_every_peer_within_the_join_phase() {
        let timeline = Timeline::default();
        let plan = join_plan(&config(48), &timeline);
        assert_eq!(plan.len(), 48);
        for (i, event) in plan.iter().enumerate() {
            assert_eq!(event.peer, i);
            assert!(event.at < timeline.join_end_min * MINUTE_MS);
            assert!(event.neighbours.len() <= JOIN_FANOUT);
            // contacts are always peers that joined earlier
            for n in &event.neighbours {
                assert!((n.0 as usize) < i);
            }
        }
        // everyone after the bootstrap founders has contacts
        assert!(plan[7].neighbours.len() >= 3);
    }

    #[test]
    fn churn_plan_stays_inside_the_churn_window() {
        let timeline = Timeline::default();
        let plan = churn_plan(&config(32), &timeline);
        assert!(!plan.is_empty());
        for event in &plan {
            assert!(event.at >= timeline.query_end_min * MINUTE_MS);
            assert!(event.at < timeline.end_min * MINUTE_MS);
            assert!((MINUTE_MS..=5 * MINUTE_MS).contains(&event.downtime));
        }
    }

    #[test]
    fn shards_are_contiguous_and_exhaustive() {
        for (n_peers, n_workers) in [(10, 3), (64, 2), (7, 7), (100, 8)] {
            let shards = shard_assignment(n_peers, n_workers);
            assert_eq!(shards.len(), n_workers);
            let mut next = 0;
            for (start, len) in shards {
                assert_eq!(start, next);
                assert!(len >= 1);
                next = start + len;
            }
            assert_eq!(next, n_peers);
        }
    }
}
