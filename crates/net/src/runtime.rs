//! Event-driven deployment runtime over a pluggable [`Transport`].
//!
//! Every peer is an isolated state machine that communicates exclusively
//! through encoded [`Message`]s carried as framed batches by a
//! [`pgrid_transport::Transport`] backend.  With the deterministic loopback
//! backend this replaces the paper's PlanetLab testbed (seeded latency and
//! jitter, emulated loss, reproducible experiments); with the TCP backend
//! the very same protocol code paths run over real sockets.  Messages sent
//! to the same destination while one event is processed are batched into a
//! single frame (the per-tick batching of exchange messages) unless
//! [`NetConfig::batch_per_tick`] is disabled.

use crate::message::{ExchangeOutcome, Message};
use bytes::Bytes;
use pgrid_core::exchange::{ExchangeDecision, ExchangeEngine};
use pgrid_core::histogram::LogHistogram;
use pgrid_core::index::IndexId;
use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::peer::PeerState;
use pgrid_core::reference::BalanceParams;
use pgrid_core::routing::{PeerId, RoutingEntry};
use pgrid_core::store::{KeyStore, StoreRead};
use pgrid_obs::recorder::FlightRecorder;
use pgrid_obs::trace::{Tracer, AMBIENT_TRACE, NO_TRACE};
use pgrid_transport::frame;
use pgrid_transport::loopback::{LoopbackConfig, LoopbackTransport};
use pgrid_transport::{LinkFault, PeerAddr, Transport, TransportError, TransportStats};
use pgrid_workload::distributions::Distribution;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, VecDeque};

/// Milliseconds of virtual time.
pub type Millis = u64;

/// How many consecutive empty polls a real-time transport may stall the
/// virtual clock while frames are in flight (at 200µs each) before the
/// runtime proceeds anyway.
const MAX_REALTIME_STALLS: u32 = 500;

/// Per-frame payload budget, well below [`frame::MAX_FRAME_BYTES`]: batches
/// whose encoded size would exceed it are split across frames instead of
/// producing a frame the receiver rejects.
const MAX_FRAME_PAYLOAD_BYTES: usize = frame::MAX_FRAME_BYTES / 4;

/// Configuration of the emulated network and protocol constants.
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// Number of peers.
    pub n_peers: usize,
    /// Keys initially held per peer.
    pub keys_per_peer: usize,
    /// Minimum replication factor.
    pub n_min: usize,
    /// Storage bound; `None` uses `keys_per_peer * n_min`.
    pub delta_max: Option<usize>,
    /// Minimum one-way message latency in milliseconds.
    pub latency_min_ms: u64,
    /// Maximum one-way message latency in milliseconds.
    pub latency_max_ms: u64,
    /// Probability that a message is lost in transit.
    pub loss_probability: f64,
    /// Interval between construction ticks of a peer.
    pub construct_interval_ms: u64,
    /// Query timeout (a query unanswered for this long counts as failed).
    pub query_timeout_ms: u64,
    /// Routing table fanout.
    pub routing_fanout: usize,
    /// Random seed.
    pub seed: u64,
    /// The key distribution.
    pub distribution: pgrid_workload::distributions::Distribution,
    /// Whether messages to the same destination produced while one event is
    /// processed are batched into a single frame (on by default; turning it
    /// off sends every message as its own frame, the configuration the
    /// transport bench compares against).
    pub batch_per_tick: bool,
    /// Whether peers memoise their prefix-routing resolution per
    /// `(index, mismatch level)` on the query hot path.  Off by default:
    /// the cache skips the per-hop random reference shuffle, which changes
    /// the deployment's random trajectory (the Section-5 reference figures
    /// are pinned to the uncached path).  The query bench reports the
    /// before/after delta.
    pub route_cache: bool,
    /// How many resolved query/range records are retained verbatim for
    /// debugging, per runtime.  Query statistics are always aggregated into
    /// [`QueryAggregates`] (bounded memory at any rate); the sample rings
    /// only keep the most recent `query_sample_cap` records.
    pub query_sample_cap: usize,
    /// Base interval between re-issues of an unanswered recovery
    /// `ReplicaPull`, in virtual milliseconds.  Each retry doubles the
    /// wait (capped by [`NetConfig::recovery_retry_max_ms`]), so a large
    /// shard recovering many peers does not stampede its replica sources.
    pub recovery_retry_ms: u64,
    /// Upper bound of the recovery re-issue backoff.
    pub recovery_retry_max_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            n_peers: 128,
            keys_per_peer: 10,
            n_min: 5,
            delta_max: None,
            latency_min_ms: 20,
            latency_max_ms: 250,
            loss_probability: 0.01,
            construct_interval_ms: 5_000,
            query_timeout_ms: 20_000,
            routing_fanout: 5,
            seed: 0xBEEF,
            distribution: pgrid_workload::distributions::Distribution::Text {
                vocabulary: 5_000,
                exponent: 1.0,
            },
            batch_per_tick: true,
            route_cache: false,
            query_sample_cap: DEFAULT_QUERY_SAMPLE_CAP,
            recovery_retry_ms: 2_000,
            recovery_retry_max_ms: 16_000,
        }
    }
}

impl NetConfig {
    /// Effective balance parameters.
    pub fn balance_params(&self) -> BalanceParams {
        match self.delta_max {
            Some(d) => BalanceParams::new(d, self.n_min),
            None => BalanceParams::recommended(self.keys_per_peer as f64, self.n_min),
        }
    }
}

/// One peer of the deployment.
#[derive(Clone, Debug)]
pub struct Node {
    /// Overlay state (path, store, routing table, replica list).
    pub state: PeerState,
    /// Unstructured-overlay neighbours (bootstrap contacts).
    pub neighbours: Vec<PeerId>,
    /// Whether the peer participates in construction ticks.
    pub constructing: bool,
    /// Whether a construction tick is currently scheduled.  A tick firing
    /// while the peer is offline ends the chain (`tick_armed` drops to
    /// `false`, matching the paper's reference run, where a returning peer
    /// does not restart maintenance by itself); a later
    /// [`Runtime::start_construction_on`] re-arms dead chains.
    pub tick_armed: bool,
    /// Consecutive fruitless exchanges.
    pub fruitless: u32,
    /// Whether the peer has joined the network at all.
    pub joined: bool,
}

/// Classified bandwidth counters for one time bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BandwidthSample {
    /// Bytes of maintenance traffic (join, replicate, exchange).
    pub maintenance_bytes: usize,
    /// Bytes of query traffic.
    pub query_bytes: usize,
}

/// Default capacity of the debug sample rings (see
/// [`NetConfig::query_sample_cap`]).
pub const DEFAULT_QUERY_SAMPLE_CAP: usize = 256;

/// Record of one *resolved* query (answered or timed out), kept in the
/// capped debug sample ring.  All statistics live in [`QueryAggregates`];
/// these records exist only to inspect recent individual queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryRecord {
    /// The index the query ran against ([`IndexId::PRIMARY`] unless the
    /// deployment hosts secondary indexes).
    pub index: IndexId,
    /// Virtual time the query was issued.
    pub issued_at: Millis,
    /// Latency in milliseconds (`None` for a timeout).
    pub latency_ms: Option<Millis>,
    /// Hops reported by the response.
    pub hops: u32,
    /// Whether the query succeeded.
    pub success: bool,
}

/// Record of one resolved range query, kept in the capped debug sample
/// ring; correctness tests read the collected entries from here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeSample {
    /// The index the range query ran against.
    pub index: IndexId,
    /// The query identifier [`Runtime::issue_range_query_on`] returned.
    pub id: u64,
    /// Inclusive lower bound of the requested range.
    pub lo: Key,
    /// Inclusive upper bound of the requested range.
    pub hi: Key,
    /// Virtual time the range query was issued.
    pub issued_at: Millis,
    /// Latency in milliseconds (`None` for a timeout).
    pub latency_ms: Option<Millis>,
    /// Whether the returned slices covered the whole range.
    pub complete: bool,
    /// Largest hop count reported by any slice of the walk.
    pub hops: u32,
    /// The merged, deduplicated entries collected from all slices.
    pub entries: Vec<DataEntry>,
}

/// Latency aggregate of one minute bucket: count, sum and sum of squares
/// in seconds, keyed by the minute the query was *issued* in.  Mean and
/// standard deviation per minute derive from these three numbers, which is
/// what lets the runtime drop the per-query records.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MinuteLatency {
    /// Queries answered whose issue time fell into this minute.
    pub count: u64,
    /// Sum of their latencies in seconds.
    pub sum_s: f64,
    /// Sum of their squared latencies in seconds².
    pub sum_sq_s: f64,
}

impl MinuteLatency {
    /// Folds one latency observation (in seconds) into the bucket.
    pub fn record(&mut self, latency_s: f64) {
        self.count += 1;
        self.sum_s += latency_s;
        self.sum_sq_s += latency_s * latency_s;
    }

    /// Adds another bucket into this one (shard merge).
    pub fn merge(&mut self, other: &MinuteLatency) {
        self.count += other.count;
        self.sum_s += other.sum_s;
        self.sum_sq_s += other.sum_sq_s;
    }

    /// Mean latency in seconds (0.0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }

    /// Population standard deviation in seconds (0.0 when empty).
    pub fn std_s(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean_s();
        (self.sum_sq_s / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }
}

/// Bounded-memory query statistics of one index.
///
/// Every counter is monotone and every component merges by addition, so
/// sharded cluster workers ship these aggregates instead of raw query
/// records and the coordinator folds them with [`QueryAggregates::merge`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryAggregates {
    /// Lookups issued.
    pub issued: u64,
    /// Lookups answered before their timeout.
    pub answered: u64,
    /// Of those, lookups answered successfully.
    pub succeeded: u64,
    /// Lookups that expired unanswered.
    pub timed_out: u64,
    /// Responses that arrived after their query had already timed out
    /// (counted here, never as a success — the timeout verdict is final).
    pub late_responses: u64,
    /// Total hops over all successful lookups.
    pub hops_sum_successful: u64,
    /// Latency distribution of answered lookups, in milliseconds.
    pub latency: LogHistogram,
    /// Range queries issued.
    pub ranges_issued: u64,
    /// Range queries whose slices covered the whole requested range.
    pub ranges_complete: u64,
    /// Latency distribution of completed range queries, in milliseconds.
    pub range_latency: LogHistogram,
    /// Per-minute latency aggregates of answered lookups, keyed by the
    /// minute the query was issued in (the Section-5 latency timeline).
    pub per_minute: BTreeMap<u64, MinuteLatency>,
}

impl QueryAggregates {
    /// Fraction of issued lookups that succeeded (0.0 when none issued).
    pub fn success_rate(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.succeeded as f64 / self.issued as f64
        }
    }

    /// Mean hops over successful lookups (0.0 when none succeeded).
    pub fn mean_hops_successful(&self) -> f64 {
        if self.succeeded == 0 {
            0.0
        } else {
            self.hops_sum_successful as f64 / self.succeeded as f64
        }
    }

    /// Adds another shard's aggregates into this one.
    pub fn merge(&mut self, other: &QueryAggregates) {
        self.issued += other.issued;
        self.answered += other.answered;
        self.succeeded += other.succeeded;
        self.timed_out += other.timed_out;
        self.late_responses += other.late_responses;
        self.hops_sum_successful += other.hops_sum_successful;
        self.latency.merge(&other.latency);
        self.ranges_issued += other.ranges_issued;
        self.ranges_complete += other.ranges_complete;
        self.range_latency.merge(&other.range_latency);
        for (minute, bucket) in &other.per_minute {
            self.per_minute.entry(*minute).or_default().merge(bucket);
        }
    }
}

/// Aggregate statistics collected by the runtime.
#[derive(Clone, Debug)]
pub struct NetMetrics {
    /// Bandwidth per one-minute bucket of virtual time.
    pub bandwidth_per_minute: HashMap<u64, BandwidthSample>,
    /// Bounded per-index query statistics (entries appear once an index
    /// sees its first query).
    pub query_stats: BTreeMap<IndexId, QueryAggregates>,
    /// The most recent resolved lookups, capped at
    /// [`NetMetrics::sample_cap`].
    pub query_samples: VecDeque<QueryRecord>,
    /// The most recent resolved range queries, capped at
    /// [`NetMetrics::sample_cap`].
    pub range_samples: VecDeque<RangeSample>,
    /// Capacity of the two sample rings (from
    /// [`NetConfig::query_sample_cap`]).
    pub sample_cap: usize,
    /// Messages lost in transit.
    pub messages_lost: usize,
    /// Messages delivered.
    pub messages_delivered: usize,
    /// Messages dropped because the destination was offline.
    pub messages_to_offline: usize,
    /// Frames or messages that arrived but could not be decoded (wire
    /// corruption or version skew with a remote peer); distinguishes a
    /// broken stream from ordinary loss.
    pub decode_failures: usize,
    /// Frames that carried more than one message (the per-tick batching at
    /// work; always zero with [`NetConfig::batch_per_tick`] disabled).
    pub multi_message_frames: usize,
    /// Links that entered the Suspect state (a send to the peer failed and
    /// the link backed off); always zero on virtual-time transports.
    pub links_suspected: usize,
    /// Links declared Dead after repeated send failures.
    pub links_dead: usize,
    /// Peers adopted from a failed worker's shard.
    pub peers_adopted: usize,
    /// Adopted peers whose state was rebuilt from a live P-Grid replica.
    pub peers_recovered_replica: usize,
    /// Adopted peers rebuilt from the locally regenerated data assignment
    /// (no live replica answered in time).
    pub peers_recovered_local: usize,
    /// Peers restored from a local durability log (warm restart) instead
    /// of a replica pull or the regenerated assignment.
    pub peers_recovered_warm: usize,
    /// Warm-restored peers that finished an anti-entropy reconciliation
    /// with a live replica after replay.
    pub peers_reconciled: usize,
    /// Entries merged into warm-restored peers by reconciliation (what
    /// the log had missed since its last sync).
    pub reconciled_entries: usize,
}

impl Default for NetMetrics {
    fn default() -> Self {
        NetMetrics {
            bandwidth_per_minute: HashMap::new(),
            query_stats: BTreeMap::new(),
            query_samples: VecDeque::new(),
            range_samples: VecDeque::new(),
            sample_cap: DEFAULT_QUERY_SAMPLE_CAP,
            messages_lost: 0,
            messages_delivered: 0,
            messages_to_offline: 0,
            decode_failures: 0,
            multi_message_frames: 0,
            links_suspected: 0,
            links_dead: 0,
            peers_adopted: 0,
            peers_recovered_replica: 0,
            peers_recovered_local: 0,
            peers_recovered_warm: 0,
            peers_reconciled: 0,
            reconciled_entries: 0,
        }
    }
}

impl NetMetrics {
    /// The aggregates of one index (a default/empty one when the index has
    /// not seen queries yet).
    pub fn stats(&self, index: IndexId) -> QueryAggregates {
        self.query_stats.get(&index).cloned().unwrap_or_default()
    }

    /// Mutable aggregates of one index, created on first use.
    pub fn stats_mut(&mut self, index: IndexId) -> &mut QueryAggregates {
        self.query_stats.entry(index).or_default()
    }

    /// All indexes' aggregates merged into one (what the totals of the
    /// Prometheus exposition report).
    pub fn merged_stats(&self) -> QueryAggregates {
        let mut merged = QueryAggregates::default();
        for agg in self.query_stats.values() {
            merged.merge(agg);
        }
        merged
    }

    fn push_query_sample(&mut self, record: QueryRecord) {
        if self.sample_cap == 0 {
            return;
        }
        if self.query_samples.len() == self.sample_cap {
            self.query_samples.pop_front();
        }
        self.query_samples.push_back(record);
    }

    fn push_range_sample(&mut self, sample: RangeSample) {
        if self.sample_cap == 0 {
            return;
        }
        if self.range_samples.len() == self.sample_cap {
            self.range_samples.pop_front();
        }
        self.range_samples.push_back(sample);
    }

    /// Populates `registry` with the runtime counters — message-level
    /// totals, merged query aggregates (plus per-index attribution when
    /// secondary indexes saw traffic), latency percentile gauges and the
    /// full latency histogram.  The one producer the text renderer and
    /// the live scrape endpoint share.
    pub fn to_registry(&self, registry: &mut pgrid_obs::registry::MetricsRegistry) {
        let totals = self.merged_stats();
        let queries_answered = totals.answered as usize;
        let queries_succeeded = totals.succeeded as usize;
        for (name, help, value) in [
            (
                "pgrid_net_messages_delivered_total",
                "Protocol messages delivered to peers.",
                self.messages_delivered,
            ),
            (
                "pgrid_net_messages_lost_total",
                "Protocol messages lost in transit.",
                self.messages_lost,
            ),
            (
                "pgrid_net_messages_to_offline_total",
                "Messages dropped because the destination was offline.",
                self.messages_to_offline,
            ),
            (
                "pgrid_net_decode_failures_total",
                "Frames or messages that arrived but could not be decoded.",
                self.decode_failures,
            ),
            (
                "pgrid_net_multi_message_frames_total",
                "Frames that carried more than one message.",
                self.multi_message_frames,
            ),
            (
                "pgrid_net_links_suspected_total",
                "Links that entered the Suspect state after a send failure.",
                self.links_suspected,
            ),
            (
                "pgrid_net_links_dead_total",
                "Links declared Dead after repeated send failures.",
                self.links_dead,
            ),
            (
                "pgrid_net_peers_adopted_total",
                "Peers adopted from a failed worker's shard.",
                self.peers_adopted,
            ),
            (
                "pgrid_net_peers_recovered_replica_total",
                "Adopted peers rebuilt from a live P-Grid replica.",
                self.peers_recovered_replica,
            ),
            (
                "pgrid_net_peers_recovered_local_total",
                "Adopted peers rebuilt from the regenerated data assignment.",
                self.peers_recovered_local,
            ),
            (
                "pgrid_net_peers_recovered_warm_total",
                "Peers restored from a local durability log (warm restart).",
                self.peers_recovered_warm,
            ),
            (
                "pgrid_net_peers_reconciled_total",
                "Warm-restored peers reconciled with a live replica.",
                self.peers_reconciled,
            ),
            (
                "pgrid_net_reconciled_entries_total",
                "Entries merged into warm-restored peers by reconciliation.",
                self.reconciled_entries,
            ),
            (
                "pgrid_net_queries_issued_total",
                "Queries issued.",
                totals.issued as usize,
            ),
            (
                "pgrid_net_queries_answered_total",
                "Queries answered before their timeout.",
                queries_answered,
            ),
            (
                "pgrid_net_queries_succeeded_total",
                "Queries answered successfully.",
                queries_succeeded,
            ),
            (
                "pgrid_net_queries_timed_out_total",
                "Queries that expired unanswered.",
                totals.timed_out as usize,
            ),
            (
                "pgrid_net_query_late_responses_total",
                "Responses that arrived after their query timed out.",
                totals.late_responses as usize,
            ),
            (
                "pgrid_net_range_queries_issued_total",
                "Range queries issued.",
                totals.ranges_issued as usize,
            ),
            (
                "pgrid_net_range_queries_complete_total",
                "Range queries that covered their whole requested range.",
                totals.ranges_complete as usize,
            ),
            (
                "pgrid_net_maintenance_bytes_total",
                "Bytes of maintenance traffic (join, replicate, exchange).",
                self.bandwidth_per_minute
                    .values()
                    .map(|b| b.maintenance_bytes)
                    .sum(),
            ),
            (
                "pgrid_net_query_bytes_total",
                "Bytes of query traffic.",
                self.bandwidth_per_minute
                    .values()
                    .map(|b| b.query_bytes)
                    .sum(),
            ),
        ] {
            registry.counter(name, help, &[], value as u64);
        }
        for (name, help, value) in [
            (
                "pgrid_net_query_latency_p50_ms",
                "Median lookup latency in milliseconds.",
                totals.latency.p50().unwrap_or(0),
            ),
            (
                "pgrid_net_query_latency_p99_ms",
                "99th-percentile lookup latency in milliseconds.",
                totals.latency.p99().unwrap_or(0),
            ),
            (
                "pgrid_net_query_latency_p999_ms",
                "99.9th-percentile lookup latency in milliseconds.",
                totals.latency.p999().unwrap_or(0),
            ),
        ] {
            registry.gauge(name, help, &[], value as f64);
        }
        registry.histogram(
            "pgrid_net_query_latency_ms",
            "Latency distribution of answered lookups in virtual milliseconds.",
            &[],
            &totals.latency,
        );
        // Per-index attribution, only once secondary indexes exist (a
        // single-index exposition stays exactly the totals above).
        if self.query_stats.len() > 1 {
            for (index, agg) in &self.query_stats {
                let idx = index.0.to_string();
                let labels = [("index", idx.as_str())];
                registry.counter(
                    "pgrid_net_index_queries_issued_total",
                    "Queries issued on this index.",
                    &labels,
                    agg.issued,
                );
                registry.counter(
                    "pgrid_net_index_queries_succeeded_total",
                    "Queries answered successfully on this index.",
                    &labels,
                    agg.succeeded,
                );
                registry.counter(
                    "pgrid_net_index_queries_timed_out_total",
                    "Queries that expired unanswered on this index.",
                    &labels,
                    agg.timed_out,
                );
                registry.histogram(
                    "pgrid_net_index_query_latency_ms",
                    "Latency distribution of answered lookups per index.",
                    &labels,
                    &agg.latency,
                );
            }
        }
    }

    /// Renders the runtime counters in the Prometheus text exposition
    /// format through the shared [`pgrid_obs::registry::MetricsRegistry`]
    /// encoder (companion to
    /// [`pgrid_transport::TransportStats::metrics_text`]), including the
    /// query latency histogram and its p50/p99/p999 gauges.
    pub fn metrics_text(&self) -> String {
        let mut registry = pgrid_obs::registry::MetricsRegistry::new();
        self.to_registry(&mut registry);
        registry.encode()
    }

    fn account(&mut self, now: Millis, message: &Message) {
        let bucket = now / 60_000;
        let entry = self.bandwidth_per_minute.entry(bucket).or_default();
        let size = message.wire_size();
        if message.is_query_traffic() {
            entry.query_bytes += size;
        } else {
            entry.maintenance_bytes += size;
        }
    }
}

#[derive(Debug)]
enum EventKind {
    ConstructTick { index: IndexId, peer: usize },
    GoOffline { peer: usize },
    GoOnline { peer: usize },
}

/// Origin-side bookkeeping of one outstanding lookup.
#[derive(Clone, Copy, Debug)]
struct PendingQuery {
    index: IndexId,
    issued_at: Millis,
    /// Trace of this lookup ([`NO_TRACE`] when tracing is off).
    trace_id: u64,
}

/// A set of merged, disjoint key intervals — the origin-side coverage
/// accounting of a range query.  Slices may arrive out of order (network
/// reordering) or not at all (loss), so completion is only declared when
/// the union of received intervals covers the whole requested range.
#[derive(Clone, Debug, Default)]
struct Coverage {
    /// Sorted, disjoint, non-adjacent inclusive intervals.
    intervals: Vec<(Key, Key)>,
}

impl Coverage {
    /// Merges the inclusive interval `[from, upto]` into the set.
    fn add(&mut self, from: Key, upto: Key) {
        if from > upto {
            return;
        }
        self.intervals.push((from, upto));
        self.intervals.sort_unstable();
        let mut merged: Vec<(Key, Key)> = Vec::with_capacity(self.intervals.len());
        for &(a, b) in &self.intervals {
            match merged.last_mut() {
                // Merge overlapping or adjacent intervals ([x, k] and
                // [k+1, y] are contiguous key ranges).
                Some(last) if a.0 <= last.1 .0.saturating_add(1) => {
                    last.1 = last.1.max(b);
                }
                _ => merged.push((a, b)),
            }
        }
        self.intervals = merged;
    }

    /// Whether one merged interval covers all of `[lo, hi]`.
    fn covers(&self, lo: Key, hi: Key) -> bool {
        self.intervals.iter().any(|&(a, b)| a <= lo && b >= hi)
    }

    /// The smallest key of `[lo, hi]` not yet covered, if any — where a
    /// stalled walk must resume.
    fn first_uncovered(&self, lo: Key, hi: Key) -> Option<Key> {
        let mut cursor = lo;
        for &(a, b) in &self.intervals {
            if a > cursor {
                break;
            }
            if b >= cursor {
                if b >= hi {
                    return None;
                }
                cursor = Key(b.0.saturating_add(1));
            }
        }
        (cursor <= hi).then_some(cursor)
    }
}

/// Origin-side bookkeeping of one outstanding range query.
#[derive(Clone, Debug)]
struct RangeState {
    index: IndexId,
    issued_at: Millis,
    lo: Key,
    hi: Key,
    coverage: Coverage,
    entries: Vec<DataEntry>,
    hops: u32,
    /// Current expiry: extended by a full timeout window on every partial
    /// response, so a walk only expires after a window *without progress*
    /// (a long walk over many partitions is not a failure).
    deadline: Millis,
    /// Stall recoveries performed so far (bounded by
    /// [`MAX_RANGE_RETRIES`]): a walk killed by frame loss is restarted
    /// from the first uncovered key instead of giving up.
    retries: u32,
    /// Trace of this range walk ([`NO_TRACE`] when tracing is off).
    trace_id: u64,
}

/// How often a stalled range walk is restarted before the origin reports
/// the range incomplete.
const MAX_RANGE_RETRIES: u32 = 3;

/// Overlay state of one *secondary* index hosted by the peer population.
///
/// The peer population, its liveness, its unstructured bootstrap overlay
/// and its transport endpoints are owned by the primary index (the
/// [`Node`] vector); a secondary index only adds the per-peer protocol
/// state that is index-specific — path, store, routing table, replica
/// list — plus its own construction bookkeeping and ground-truth data
/// assignment.
#[derive(Clone, Debug)]
pub struct SecondaryIndex {
    /// The index identifier (never [`IndexId::PRIMARY`]).
    pub id: IndexId,
    /// Per-peer overlay state of this index (index = peer id).  The
    /// `online` flag of these states is unused: liveness is shared and
    /// owned by the primary [`Node`]s.
    pub states: Vec<PeerState>,
    /// The ground-truth data assignment of this index.
    pub original_entries: Vec<DataEntry>,
    /// Whether each peer participates in construction ticks of this index.
    constructing: Vec<bool>,
    /// Whether each peer's tick chain is currently scheduled (see
    /// [`Node::tick_armed`]).
    tick_armed: Vec<bool>,
    /// Consecutive fruitless exchanges per peer on this index.
    fruitless: Vec<u32>,
}

/// Resolves the per-index peer state through disjoint field borrows, so a
/// caller can mutate it while also holding `&mut rng` (the same split the
/// single-index code achieved by naming `self.nodes[..]` directly).
fn index_state_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut PeerState {
    if index.is_primary() {
        &mut nodes[peer].state
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.states[peer]
    }
}

/// Immutable counterpart of [`index_state_mut`].
fn index_state<'a>(
    nodes: &'a [Node],
    secondary: &'a [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a PeerState {
    if index.is_primary() {
        &nodes[peer].state
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &slot.states[peer]
    }
}

/// Per-index fruitless-exchange counter of a peer.
fn index_fruitless_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut u32 {
    if index.is_primary() {
        &mut nodes[peer].fruitless
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.fruitless[peer]
    }
}

/// Read-only counterpart of [`index_fruitless_mut`].
fn index_fruitless(
    nodes: &[Node],
    secondary: &[SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> u32 {
    if index.is_primary() {
        nodes[peer].fruitless
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        slot.fruitless[peer]
    }
}

/// Per-index constructing flag of a peer.
fn index_constructing_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut bool {
    if index.is_primary() {
        &mut nodes[peer].constructing
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.constructing[peer]
    }
}

/// Read-only counterpart of [`index_constructing_mut`].
fn index_constructing(
    nodes: &[Node],
    secondary: &[SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> bool {
    if index.is_primary() {
        nodes[peer].constructing
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        slot.constructing[peer]
    }
}

/// Per-index tick-armed flag of a peer (see [`Node::tick_armed`]).
fn index_tick_armed_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut bool {
    if index.is_primary() {
        &mut nodes[peer].tick_armed
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.tick_armed[peer]
    }
}

/// Read-only counterpart of [`index_tick_armed_mut`].
fn index_tick_armed(
    nodes: &[Node],
    secondary: &[SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> bool {
    if index.is_primary() {
        nodes[peer].tick_armed
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        slot.tick_armed[peer]
    }
}

struct Event {
    time: Millis,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// First backoff window after a send failure marks a link Suspect;
/// doubles per further failure, capped at [`LINK_BACKOFF_CAP_MS`].
const LINK_SUSPECT_BACKOFF_MS: Millis = 250;

/// Upper bound of the Suspect retry backoff.
const LINK_BACKOFF_CAP_MS: Millis = 2_000;

/// Consecutive send failures after which a link is declared Dead.
const LINK_DEAD_AFTER: u32 = 3;

/// Life-cycle of the link to one (remote) peer, driven by transport send
/// failures.  Virtual-time transports never fail a send, so every link
/// stays `Connected` in single-process runs; over TCP a dead worker's
/// endpoints walk Connected → Suspect → Dead, and the data plane keeps
/// advancing — sends to a suppressed link count as loss instead of
/// stalling the virtual clock on connect timeouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkHealth {
    /// Sends flow normally.
    Connected,
    /// A recent send failed; further sends are dropped (as loss) until
    /// `retry_at`, with exponential backoff per consecutive failure.
    Suspect {
        /// Virtual time at which the next send may be attempted.
        retry_at: Millis,
        /// Consecutive failures so far.
        failures: u32,
    },
    /// Too many consecutive failures: sends are suppressed and the peer is
    /// skipped as a query-forwarding candidate until the link is revived
    /// by recovery ([`Runtime::revive_link`]).
    Dead,
}

/// The deployment runtime: peers, a frame transport and the virtual clock.
///
/// Generic over the [`Transport`] backend; [`Runtime::new`] builds the
/// deterministic loopback deployment (the emulated wide-area network of the
/// paper's experiments), [`Runtime::with_transport`] accepts any backend —
/// in particular [`pgrid_transport::tcp::TcpTransport`] for runs over real
/// sockets.
///
/// A runtime normally hosts every peer of the deployment, but it can also
/// host only a contiguous *shard* of them
/// ([`Runtime::with_transport_sharded`]): peers outside the shard exist as
/// bookkeeping stubs (identity, data assignment, scheduled liveness) whose
/// protocol state lives in another process, reachable through the
/// transport's remote registrations.  That is the substrate of the
/// `pgrid-cluster` multi-process deployment.
pub struct Runtime<T: Transport = LoopbackTransport> {
    /// Configuration.
    pub config: NetConfig,
    /// All peers (index = peer id).
    pub nodes: Vec<Node>,
    /// Collected metrics.
    pub metrics: NetMetrics,
    /// The original entries assigned to peers (ground truth for queries).
    pub original_entries: Vec<DataEntry>,
    /// Secondary indexes hosted by the same peer population (empty unless
    /// [`Runtime::register_index`] was called).
    pub secondary: Vec<SecondaryIndex>,
    engine: ExchangeEngine,
    transport: T,
    addrs: Vec<PeerAddr>,
    /// The contiguous range of peer ids this runtime hosts (all peers in
    /// single-process mode).
    shard: std::ops::Range<usize>,
    /// Peers adopted from a failed worker's shard, hosted here beyond
    /// `shard`.  Empty in single-process runs and in healthy clusters.
    adopted: BTreeSet<usize>,
    /// Adopted peers whose replica pull is still outstanding.
    recovering: BTreeSet<usize>,
    /// Warm-restored peers whose anti-entropy reconciliation with a live
    /// replica is still outstanding.  Unlike `recovering`, these peers
    /// are already online serving their replayed state; a replica's
    /// answer is *merged into* it instead of replacing it.
    reconciling: BTreeSet<usize>,
    /// Link life-cycle per destination peer (absent = Connected).  Only
    /// ever populated by transport send failures, which virtual-time
    /// backends never produce.
    link_health: HashMap<usize, LinkHealth>,
    /// Per-destination batch buffer, flushed as one frame per destination
    /// after every processed event (BTreeMap so the flush order — and with
    /// it the loss and latency draws — is deterministic).
    pending: BTreeMap<usize, Vec<Message>>,
    /// First sending peer of each pending per-destination batch — the
    /// sender identity a frame is stamped with so link-level faults
    /// (partitions) can tell which side of a split it crosses.
    pending_from: HashMap<usize, usize>,
    /// The peer whose handler/event is currently executing (the `from` of
    /// anything it sends).
    current_actor: usize,
    queue: BinaryHeap<Reverse<Event>>,
    now: Millis,
    seq: u64,
    next_query_id: u64,
    outstanding_queries: HashMap<u64, PendingQuery>,
    outstanding_ranges: HashMap<u64, RangeState>,
    /// Expiry deadlines of outstanding queries in issue order.  The
    /// timeout is a constant, so the queue is naturally sorted and expiry
    /// is a lazy front-sweep instead of one heap event per query (the
    /// per-query event heap was the old accounting's hot-path cost).
    timeout_queue: VecDeque<(Millis, u64)>,
    /// Expiry deadlines of outstanding *range* queries.  Kept separate
    /// from `timeout_queue` because range deadlines extend on progress: a
    /// new entry is pushed per extension (keeping the queue sorted) and
    /// stale entries are skipped against [`RangeState::deadline`].
    range_timeout_queue: VecDeque<(Millis, u64)>,
    /// Hosted peers that are joined and online, ascending — the exact
    /// content `issue_query_on` used to recompute per query.  Rebuilt on
    /// join and liveness changes so the origin draw consumes the RNG
    /// identically to the uncached code.
    online_hosted: Vec<usize>,
    /// Memoised prefix-routing resolution per `(peer, index, mismatch
    /// level)`; only consulted with [`NetConfig::route_cache`] on, and
    /// invalidated whenever a peer's path or routing table changes.
    route_cache: HashMap<(usize, IndexId, usize), PeerId>,
    /// Structured tracing sink — disabled by default (enable with
    /// [`Runtime::enable_tracing`]).  Recording never consumes the RNG,
    /// and a disabled tracer hands out no trace IDs, so pinned seeds and
    /// wire bytes are bit-identical with tracing off.
    pub tracer: Tracer,
    /// Always-on bounded ring of coarse events (phase starts, timeouts,
    /// churn), dumped as JSONL when something goes wrong.
    pub recorder: FlightRecorder,
    /// When set, a query timeout or an incomplete range walk dumps the
    /// flight-recorder ring to this path.
    pub flight_dump: Option<std::path::PathBuf>,
    /// Trace context of the message currently being handled
    /// ([`NO_TRACE`] outside traced handling) — what [`Runtime::send`]
    /// stamps onto outgoing query traffic.
    current_trace: u64,
    /// Frames shipped while tracing is enabled (drives the 1-in-64
    /// sampling of ambient frame-send trace events).
    frames_traced: u64,
    rng: StdRng,
}

impl Runtime<LoopbackTransport> {
    /// Creates a runtime over the deterministic loopback transport, with
    /// `n_peers` peers, each pre-loaded with `keys_per_peer` keys from the
    /// configured distribution.  Peers start offline/not-joined; the
    /// experiment driver joins them over time.
    pub fn new(config: NetConfig) -> Runtime<LoopbackTransport> {
        let transport = LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: config.latency_min_ms,
            latency_max_ms: config.latency_max_ms,
            seed: config.seed ^ 0x7A4E,
        });
        Runtime::with_transport(config, transport).expect("loopback registration cannot fail")
    }
}

/// Generates every peer's initial state and the ground-truth entry list.
///
/// This is the exact RNG consumption [`Runtime::with_transport`] performs
/// during construction (`keys_per_peer` draws per peer, in peer order), so
/// any component that needs the deployment's data assignment without a
/// runtime — the cluster coordinator assembling a merged report, every
/// cluster worker building the same stub population — reproduces it by
/// seeding a [`StdRng`] with `config.seed` and calling this.
pub fn generate_peers(config: &NetConfig, rng: &mut StdRng) -> (Vec<Node>, Vec<DataEntry>) {
    let mut nodes = Vec::with_capacity(config.n_peers);
    let mut original_entries = Vec::new();
    for i in 0..config.n_peers {
        let mut state = PeerState::new(PeerId(i as u64), config.routing_fanout);
        for j in 0..config.keys_per_peer {
            let entry = DataEntry::new(
                config.distribution.sample(rng),
                pgrid_core::key::DataId((i * config.keys_per_peer + j) as u64),
            );
            state.store.insert(entry);
            original_entries.push(entry);
        }
        state.online = false;
        nodes.push(Node {
            state,
            neighbours: Vec::new(),
            constructing: false,
            tick_armed: false,
            fruitless: 0,
            joined: false,
        });
    }
    (nodes, original_entries)
}

impl<T: Transport> Runtime<T> {
    /// Creates a runtime over the given transport backend, registering an
    /// endpoint for every peer.
    pub fn with_transport(config: NetConfig, transport: T) -> Result<Runtime<T>, TransportError> {
        let n_peers = config.n_peers;
        Runtime::with_transport_sharded(config, transport, 0..n_peers)
    }

    /// Creates a runtime that hosts only the peers in `shard`.
    ///
    /// Hosted peers get a transport endpoint registered here; every peer
    /// outside the shard must already be reachable through the transport
    /// (e.g. via [`pgrid_transport::tcp::TcpTransport::register_remote`]) —
    /// otherwise this fails with [`TransportError::UnknownPeer`].  All peers
    /// are generated (same seed, same data assignment in every process);
    /// non-hosted ones stay local stubs that only track identity, neighbour
    /// links and scheduled liveness for routing decisions, while their
    /// protocol state lives in the process that hosts them.
    pub fn with_transport_sharded(
        config: NetConfig,
        mut transport: T,
        shard: std::ops::Range<usize>,
    ) -> Result<Runtime<T>, TransportError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let params = config.balance_params();
        let (nodes, original_entries) = generate_peers(&config, &mut rng);
        let mut addrs = Vec::with_capacity(config.n_peers);
        for i in 0..config.n_peers {
            let peer = PeerId(i as u64);
            if let Some(addr) = transport.addr_of(peer) {
                // Already wired: a hosted endpoint the caller registered up
                // front (to publish its address during rendezvous) or a
                // remote registration.
                addrs.push(addr);
            } else if shard.contains(&i) {
                addrs.push(transport.register(peer)?);
            } else {
                return Err(TransportError::UnknownPeer(peer));
            }
        }
        let metrics = NetMetrics {
            sample_cap: config.query_sample_cap,
            ..NetMetrics::default()
        };
        Ok(Runtime {
            config,
            nodes,
            metrics,
            original_entries,
            secondary: Vec::new(),
            engine: ExchangeEngine::new(params),
            transport,
            addrs,
            shard,
            adopted: BTreeSet::new(),
            recovering: BTreeSet::new(),
            reconciling: BTreeSet::new(),
            link_health: HashMap::new(),
            pending: BTreeMap::new(),
            pending_from: HashMap::new(),
            current_actor: 0,
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            next_query_id: 0,
            outstanding_queries: HashMap::new(),
            outstanding_ranges: HashMap::new(),
            timeout_queue: VecDeque::new(),
            range_timeout_queue: VecDeque::new(),
            online_hosted: Vec::new(),
            route_cache: HashMap::new(),
            tracer: Tracer::disabled(),
            recorder: FlightRecorder::default(),
            flight_dump: None,
            current_trace: NO_TRACE,
            frames_traced: 0,
            rng,
        })
    }

    /// Enables structured tracing with the default buffer capacity.
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// Enables structured tracing and gives this runtime's trace IDs a
    /// disjoint `base` ID space (cluster workers pass their shard index
    /// so merged trace IDs never collide across processes).
    pub fn enable_tracing_with_base(&mut self, base: u64) {
        let mut tracer = Tracer::enabled();
        tracer.set_id_base(base);
        self.tracer = tracer;
    }

    /// Dumps the flight-recorder ring to the configured
    /// [`Runtime::flight_dump`] path (a no-op without one).
    fn dump_flight(&self, reason: &str) {
        if let Some(path) = &self.flight_dump {
            let _ = self.recorder.dump_to(path, reason);
        }
    }

    /// Balance parameters the exchange engine decides with (derived from
    /// the configuration; the engine owns the single copy).
    pub fn params(&self) -> BalanceParams {
        *self.engine.params()
    }

    // ----- multi-index management --------------------------------------------

    /// Registers a *secondary* index over the same peer population: every
    /// peer receives `keys_per_peer` fresh keys drawn from `distribution`
    /// into a dedicated per-index overlay state (path, store, routing
    /// table), while liveness, bootstrap neighbours and the transport are
    /// shared with the primary index.
    ///
    /// The assignment is drawn from a dedicated RNG stream derived from
    /// the seed and the index id, so registering an index never perturbs
    /// the primary index's random trajectory, and sharded runtimes of the
    /// same deployment reproduce an identical assignment in every process.
    ///
    /// # Panics
    ///
    /// Panics when `id` is the (implicit) primary index or already
    /// registered.
    pub fn register_index(&mut self, id: IndexId, distribution: &Distribution) {
        assert!(
            !id.is_primary(),
            "the primary index is implicit and cannot be registered"
        );
        assert!(!self.has_index_state(id), "{id} is already registered");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x1DE0 ^ ((id.0 as u64) << 20));
        let n = self.config.n_peers;
        let mut states = Vec::with_capacity(n);
        let mut original_entries = Vec::with_capacity(n * self.config.keys_per_peer);
        for i in 0..n {
            let mut state = PeerState::new(PeerId(i as u64), self.config.routing_fanout);
            for j in 0..self.config.keys_per_peer {
                let entry = DataEntry::new(
                    distribution.sample(&mut rng),
                    DataId((i * self.config.keys_per_peer + j) as u64),
                );
                state.store.insert(entry);
                original_entries.push(entry);
            }
            states.push(state);
        }
        self.secondary.push(SecondaryIndex {
            id,
            states,
            original_entries,
            constructing: vec![false; n],
            tick_armed: vec![false; n],
            fruitless: vec![0; n],
        });
    }

    /// Whether `index` is hosted by this runtime (the primary index always
    /// is).
    pub fn has_index_state(&self, index: IndexId) -> bool {
        index.is_primary() || self.secondary.iter().any(|s| s.id == index)
    }

    /// All hosted index ids, primary first.
    pub fn index_ids(&self) -> Vec<IndexId> {
        let mut ids = vec![IndexId::PRIMARY];
        ids.extend(self.secondary.iter().map(|s| s.id));
        ids
    }

    /// The ground-truth data assignment of an index.
    pub fn original_entries_of(&self, index: IndexId) -> &[DataEntry] {
        if index.is_primary() {
            &self.original_entries
        } else {
            let slot = self
                .secondary
                .iter()
                .find(|s| s.id == index)
                .expect("unregistered index");
            &slot.original_entries
        }
    }

    /// The overlay state of `peer` on `index`.
    pub fn peer_state(&self, index: IndexId, peer: usize) -> &PeerState {
        index_state(&self.nodes, &self.secondary, index, peer)
    }

    /// Assigns fresh `keys` to `peer` on `index`: the entries extend the
    /// index's ground truth (continuing its `DataId` numbering) and, when
    /// the peer is hosted here, its local store.  Construction anti-entropy
    /// spreads them to replicas from there (the re-indexing / distribution
    /// shift workload).
    pub fn insert_entries(&mut self, index: IndexId, peer: usize, keys: Vec<Key>) {
        let hosted = self.hosted(peer);
        for key in keys {
            let entry = {
                let originals = if index.is_primary() {
                    &mut self.original_entries
                } else {
                    let slot = self
                        .secondary
                        .iter_mut()
                        .find(|s| s.id == index)
                        .expect("unregistered index");
                    &mut slot.original_entries
                };
                let entry = DataEntry::new(key, DataId(originals.len() as u64));
                originals.push(entry);
                entry
            };
            if hosted {
                index_state_mut(&mut self.nodes, &mut self.secondary, index, peer)
                    .store
                    .insert(entry);
            }
        }
    }

    /// Whether construction has settled: every hosted, online peer whose
    /// tick chain is still live (on any index) has reached the back-off
    /// regime — repeated fruitless exchanges and no local evidence that
    /// its partition still needs splitting.  Dead tick chains (a tick
    /// fired while the peer was offline) do not block quiescence: they do
    /// nothing until re-armed.  `true` when no peer is constructing at
    /// all.
    pub fn construction_quiescent(&self) -> bool {
        for index in self.index_ids() {
            for peer in self.hosted_peers() {
                if !self.nodes[peer].joined || !self.nodes[peer].state.online {
                    continue;
                }
                if !index_constructing(&self.nodes, &self.secondary, index, peer)
                    || !index_tick_armed(&self.nodes, &self.secondary, index, peer)
                {
                    continue;
                }
                let fruitless = index_fruitless(&self.nodes, &self.secondary, index, peer);
                let state = index_state(&self.nodes, &self.secondary, index, peer);
                if fruitless < 4 || self.engine.locally_overloaded(state) {
                    return false;
                }
            }
        }
        true
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Number of peers currently online.
    pub fn online_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.joined && n.state.online)
            .count()
    }

    /// The transport address of a peer.
    pub fn peer_addr(&self, peer: usize) -> PeerAddr {
        self.addrs[peer]
    }

    /// The contiguous range of peer ids hosted by this runtime.
    pub fn shard(&self) -> std::ops::Range<usize> {
        self.shard.clone()
    }

    /// Whether `peer`'s protocol state lives in this runtime (as opposed to
    /// a remote process reachable through the transport): part of the
    /// contiguous shard, or adopted from a failed worker.
    pub fn hosted(&self, peer: usize) -> bool {
        self.shard.contains(&peer) || self.adopted.contains(&peer)
    }

    /// Every peer hosted by this runtime: the contiguous shard plus any
    /// adopted peers (ascending within each group; adopted peers always
    /// come from other shards, so there are no duplicates).
    fn hosted_peers(&self) -> impl Iterator<Item = usize> + '_ {
        self.shard.clone().chain(self.adopted.iter().copied())
    }

    /// Number of hosted peers currently online.
    pub fn hosted_online_count(&self) -> usize {
        self.hosted_peers()
            .filter(|&i| self.nodes[i].joined && self.nodes[i].state.online)
            .count()
    }

    /// Drains whatever the transport has produced *right now*, handles the
    /// frames and flushes any responses, without advancing the virtual
    /// clock.  Returns the number of frames handled.
    ///
    /// Real-time backends only need this outside [`Runtime::run_until`]: a
    /// cluster worker parked at a phase barrier keeps calling it so
    /// cross-shard exchanges initiated by slower processes are still
    /// answered while the local timeline waits.
    pub fn service_network(&mut self) -> usize {
        let frames = self.transport.poll(self.now);
        let handled = frames.len();
        for (to, frame_bytes) in frames {
            self.deliver_frame(to, frame_bytes);
        }
        self.flush_pending();
        handled
    }

    /// Frame-level counters of the underlying transport.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// The transport backend, mutable — cluster shard reassignment uses
    /// this to take over a dead worker's endpoints
    /// ([`pgrid_transport::tcp::TcpTransport::register_takeover`]) and
    /// re-point moved ones.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Injects a link-level fault into the transport (per-link jitter, a
    /// healing partition window); returns whether the backend emulates it.
    pub fn inject_link_fault(&mut self, fault: LinkFault) -> bool {
        self.transport.inject_fault(fault)
    }

    /// Replaces the cached address of `peer` after its endpoint moved
    /// during recovery, and clears any Suspect/Dead link state towards it.
    pub fn set_peer_addr(&mut self, peer: usize, addr: PeerAddr) {
        self.addrs[peer] = addr;
        self.revive_link(peer);
    }

    /// Clears the link life-cycle state towards `peer` (its endpoint came
    /// back or moved to a live process).
    pub fn revive_link(&mut self, peer: usize) {
        self.link_health.remove(&peer);
    }

    // ----- shard reassignment & replica-driven recovery ---------------------

    /// Adopts a peer from a failed worker's shard: this runtime becomes the
    /// host of its protocol state.  The peer starts offline — its state is
    /// a stub until [`Runtime::begin_replica_pull`] rebuilds it from a live
    /// replica (or [`Runtime::recover_locally`] falls back to the
    /// regenerated data assignment) — so queries do not route into a
    /// hollow shell meanwhile.
    pub fn adopt_peer(&mut self, peer: usize) {
        if self.shard.contains(&peer) || !self.adopted.insert(peer) {
            return;
        }
        self.metrics.peers_adopted += 1;
        self.link_health.remove(&peer);
        self.nodes[peer].state.online = false;
        self.nodes[peer].tick_armed = false;
        self.rebuild_online_cache();
        self.recorder
            .note(self.now, "recovery", format!("adopted peer {peer}"));
    }

    /// Peers adopted from failed workers, ascending.
    pub fn adopted_peers(&self) -> Vec<usize> {
        self.adopted.iter().copied().collect()
    }

    /// Asks the live peer `source` for a replica snapshot on behalf of the
    /// adopted peer `peer`.  The answer (a [`Message::ReplicaPush`])
    /// rebuilds the peer's exact `KeyStore`, path and routing table and
    /// brings it back online.
    pub fn begin_replica_pull(&mut self, peer: usize, source: usize) {
        debug_assert!(self.hosted(peer), "only hosted peers recover here");
        self.recovering.insert(peer);
        self.current_actor = peer;
        self.tracer.record(
            AMBIENT_TRACE,
            "recovery_pull",
            peer as u64,
            self.now,
            || format!("source={source}"),
        );
        self.send(
            source,
            Message::ReplicaPull {
                origin: PeerId(peer as u64),
            },
        );
        self.flush_pending();
    }

    /// Number of adopted peers whose replica snapshot has not arrived yet.
    pub fn pending_recoveries(&self) -> usize {
        self.recovering.len()
    }

    /// Restores a hosted peer from a durability-log image (the warm
    /// restart path): exact path, entries, routing references and replica
    /// set, brought online immediately — no replica pull.  With
    /// `constructing` the peer's maintenance tick chain is re-armed, as
    /// [`Runtime::start_construction_on`] would.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_peer(
        &mut self,
        index: IndexId,
        peer: usize,
        path: Path,
        entries: Vec<DataEntry>,
        routing: Vec<(u8, PeerId, Path)>,
        replicas: Vec<PeerId>,
        constructing: bool,
    ) {
        debug_assert!(self.hosted(peer), "only hosted peers are restored here");
        let fanout = self.config.routing_fanout;
        let mut table = pgrid_core::routing::RoutingTable::new(fanout);
        for (level, rpeer, rpath) in routing {
            table.add(
                level as usize,
                RoutingEntry {
                    peer: rpeer,
                    path: rpath,
                },
                &mut self.rng,
            );
        }
        let path_len = path.len();
        let state = index_state_mut(&mut self.nodes, &mut self.secondary, index, peer);
        state.path = path;
        state.store = KeyStore::from_entries(entries);
        state.routing = table;
        state.replicas = replicas;
        state.replicas.retain(|p| p.0 as usize != peer);
        if index.is_primary() {
            self.nodes[peer].joined = true;
            self.nodes[peer].state.online = true;
            self.rebuild_online_cache();
        }
        self.invalidate_route_cache(peer, index);
        self.metrics.peers_recovered_warm += 1;
        if constructing && !self.nodes[peer].tick_armed {
            self.nodes[peer].tick_armed = true;
            self.nodes[peer].constructing = true;
            let jitter = self
                .rng
                .gen_range(0..self.config.construct_interval_ms.max(1));
            self.schedule(
                self.now + jitter,
                EventKind::ConstructTick {
                    index: IndexId::PRIMARY,
                    peer,
                },
            );
        }
        self.recorder.note(
            self.now,
            "recovery",
            format!("peer {peer} restored from durability log (path len {path_len})"),
        );
    }

    /// Asks the live peer `source` for a replica snapshot to *reconcile*
    /// the warm-restored peer `peer` with (anti-entropy): the answer is
    /// merged into the replayed state instead of replacing it, closing
    /// whatever gap the log's last sync left.  The peer keeps serving
    /// meanwhile — this is strictly background traffic.
    pub fn begin_replica_diff(&mut self, peer: usize, source: usize) {
        debug_assert!(self.hosted(peer), "only hosted peers reconcile here");
        self.reconciling.insert(peer);
        self.current_actor = peer;
        self.tracer.record(
            AMBIENT_TRACE,
            "recovery_diff",
            peer as u64,
            self.now,
            || format!("source={source}"),
        );
        self.send(
            source,
            Message::ReplicaPull {
                origin: PeerId(peer as u64),
            },
        );
        self.flush_pending();
    }

    /// Number of warm-restored peers whose reconciliation answer has not
    /// arrived yet.
    pub fn pending_reconciliations(&self) -> usize {
        self.reconciling.len()
    }

    /// Peers whose reconciliation is still outstanding, ascending.
    pub fn reconciling_peers(&self) -> Vec<usize> {
        self.reconciling.iter().copied().collect()
    }

    /// Copy-on-write snapshots of the hosted peers' primary stores, as
    /// `(peer, store)` pairs ascending by peer.  Each handle shares
    /// storage with the live peer (`Arc`-backed) until either side
    /// mutates, so this is O(1) per peer, not O(entries).
    pub fn capture_primary_stores(&self) -> Vec<(usize, KeyStore)> {
        let mut out: Vec<(usize, KeyStore)> = self
            .shard
            .clone()
            .map(|p| (p, self.nodes[p].state.store.clone()))
            .collect();
        out.extend(
            self.adopted
                .iter()
                .map(|&p| (p, self.nodes[p].state.store.clone())),
        );
        out.sort_unstable_by_key(|&(p, _)| p);
        out.dedup_by_key(|&mut (p, _)| p);
        out
    }

    /// Number of adopted peers rebuilt from a live replica so far.
    pub fn replica_recovered_count(&self) -> usize {
        self.metrics.peers_recovered_replica
    }

    /// Peers whose replica pull is still outstanding, ascending.
    pub fn recovering_peers(&self) -> Vec<usize> {
        self.recovering.iter().copied().collect()
    }

    /// A live hosted peer that lists `peer` as a replica, if any — the
    /// cheapest replica source for a pull, since the snapshot never leaves
    /// the process.
    pub fn find_replica_source(&self, peer: usize) -> Option<usize> {
        let target = PeerId(peer as u64);
        self.hosted_peers()
            .filter(|&p| p != peer && self.nodes[p].joined && self.nodes[p].state.online)
            .find(|&p| self.nodes[p].state.replicas.contains(&target))
    }

    /// Fallback recovery without a live replica: the peer keeps its
    /// regenerated original entries (every process derives the full data
    /// assignment from the seed) and adopts `path` — its last path known
    /// to the coordinator — then rejoins.  Used when no replica answers
    /// the pull within the healing window, so recovery always terminates.
    pub fn recover_locally(&mut self, peer: usize, path: Path) {
        self.recovering.remove(&peer);
        self.metrics.peers_recovered_local += 1;
        self.nodes[peer].state.path = path;
        self.recorder.note(
            self.now,
            "recovery",
            format!(
                "peer {peer} recovered locally (path len {})",
                self.nodes[peer].state.path.len()
            ),
        );
        self.finish_recovery(peer);
    }

    fn schedule(&mut self, time: Millis, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// [`Runtime::send`] qualified by an index: primary-index messages go
    /// out unchanged (the single-index wire format), secondary-index ones
    /// are enveloped in [`Message::ForIndex`].
    fn send_on(&mut self, index: IndexId, to: usize, message: Message) {
        if index.is_primary() {
            self.send(to, message);
        } else {
            self.send(
                to,
                Message::ForIndex {
                    index: index.0,
                    inner: Box::new(message),
                },
            );
        }
    }

    /// Queues a message for the next frame to `to`: accounts its bandwidth
    /// and either batches it until the current event finishes or (with
    /// batching disabled) flushes it as a single-message frame right away.
    ///
    /// Query traffic sent while handling a traced lookup is wrapped in a
    /// [`Message::Traced`] envelope carrying the trace ID to the next
    /// peer (and, through the transport, to the next worker process).
    /// With tracing disabled `current_trace` is always [`NO_TRACE`], so
    /// no envelope — and no extra wire byte — ever exists.
    fn send(&mut self, to: usize, message: Message) {
        let message = if self.current_trace != NO_TRACE && message.is_query_traffic() {
            Message::Traced {
                trace_id: self.current_trace,
                inner: Box::new(message),
            }
        } else {
            message
        };
        self.metrics.account(self.now, &message);
        self.pending.entry(to).or_default().push(message);
        self.pending_from.entry(to).or_insert(self.current_actor);
        if !self.config.batch_per_tick {
            if let Some(messages) = self.pending.remove(&to) {
                let from = self.pending_from.remove(&to).unwrap_or(to);
                self.flush_frame(from, to, messages);
            }
        }
    }

    /// Flushes every per-destination batch as one frame each.
    fn flush_pending(&mut self) {
        for (to, messages) in std::mem::take(&mut self.pending) {
            let from = self.pending_from.remove(&to).unwrap_or(to);
            self.flush_frame(from, to, messages);
        }
        self.pending_from.clear();
    }

    /// Encodes `messages` into frames for `to` and hands them to the
    /// transport.  A batch normally fits one frame; batches that would
    /// exceed the framing bounds (which the receiver rejects as corrupt)
    /// are split across several frames.
    fn flush_frame(&mut self, from: usize, to: usize, messages: Vec<Message>) {
        let mut chunk: Vec<Bytes> = Vec::with_capacity(messages.len());
        let mut chunk_bytes = 0usize;
        for message in &messages {
            let payload = message.encode();
            if !chunk.is_empty()
                && (chunk.len() >= frame::MAX_BATCH_LEN
                    || chunk_bytes + payload.len() + 4 > MAX_FRAME_PAYLOAD_BYTES)
            {
                let full = std::mem::take(&mut chunk);
                chunk_bytes = 0;
                self.ship_frame(from, to, full);
            }
            chunk_bytes += payload.len() + 4;
            chunk.push(payload);
        }
        if !chunk.is_empty() {
            self.ship_frame(from, to, chunk);
        }
    }

    /// Puts one frame on the wire, applying the emulated frame loss and the
    /// link life-cycle: frames to a Suspect link in its backoff window or
    /// to a Dead link are dropped as loss instead of hitting the transport,
    /// so a dead worker's endpoints cannot stall the clock on every send.
    fn ship_frame(&mut self, from: usize, to: usize, payloads: Vec<Bytes>) {
        if self
            .rng
            .gen_bool(self.config.loss_probability.clamp(0.0, 1.0))
        {
            self.metrics.messages_lost += payloads.len();
            return;
        }
        match self.link_health.get(&to) {
            Some(LinkHealth::Dead) => {
                self.metrics.messages_lost += payloads.len();
                return;
            }
            Some(LinkHealth::Suspect { retry_at, .. }) if self.now < *retry_at => {
                self.metrics.messages_lost += payloads.len();
                return;
            }
            _ => {}
        }
        if payloads.len() > 1 {
            self.metrics.multi_message_frames += 1;
        }
        // Frame-level tracing is sampled (1 in 64) so an enabled tracer's
        // buffer is not drowned in construction-phase frames.
        if self.tracer.is_enabled() {
            self.frames_traced += 1;
            if self.frames_traced % 64 == 1 {
                let n = payloads.len();
                self.tracer
                    .record(AMBIENT_TRACE, "frame_sent", to as u64, self.now, || {
                        format!("messages={n} sample=1/64")
                    });
            }
        }
        let frame = frame::encode_frame(&payloads);
        if self
            .transport
            .send_from(self.now, PeerId(from as u64), PeerId(to as u64), frame)
            .is_err()
        {
            // A broken connection behaves like loss on the wire — and
            // escalates the link's life-cycle state.
            self.metrics.messages_lost += payloads.len();
            self.record_link_failure(to);
        } else if self.link_health.contains_key(&to) {
            // A successful retry heals the link.
            self.link_health.remove(&to);
        }
    }

    /// Escalates the link to `to` after a transport send failure:
    /// Connected → Suspect (with exponential backoff per consecutive
    /// failure) → Dead after [`LINK_DEAD_AFTER`] failures.
    fn record_link_failure(&mut self, to: usize) {
        let failures = match self.link_health.get(&to) {
            Some(LinkHealth::Suspect { failures, .. }) => failures + 1,
            Some(LinkHealth::Dead) => return,
            _ => 1,
        };
        if failures >= LINK_DEAD_AFTER {
            self.metrics.links_dead += 1;
            self.link_health.insert(to, LinkHealth::Dead);
            self.recorder.note(
                self.now,
                "link_dead",
                format!("link to peer {to} declared dead after {failures} send failures"),
            );
        } else {
            if failures == 1 {
                self.metrics.links_suspected += 1;
            }
            let backoff = (LINK_SUSPECT_BACKOFF_MS << (failures - 1)).min(LINK_BACKOFF_CAP_MS);
            self.link_health.insert(
                to,
                LinkHealth::Suspect {
                    retry_at: self.now + backoff,
                    failures,
                },
            );
        }
    }

    /// The link life-cycle state towards `to` (Connected when no failure
    /// was ever recorded).
    pub fn link_health(&self, to: usize) -> LinkHealth {
        self.link_health
            .get(&to)
            .copied()
            .unwrap_or(LinkHealth::Connected)
    }

    /// Whether the link to `peer` is usable as a forwarding target (hosted
    /// peers always are; remote ones unless their link is Dead).
    fn link_ok(&self, peer: usize) -> bool {
        !matches!(self.link_health.get(&peer), Some(LinkHealth::Dead))
    }

    /// Decodes an arrived frame and handles its messages.
    fn deliver_frame(&mut self, to: PeerId, frame_bytes: Bytes) {
        let to = to.0 as usize;
        // A frame for a peer this runtime does not host can only come from
        // a mis-wired address book — or from a sender that has not yet
        // learnt about a shard reassignment; never apply it to a stub.
        if !self.hosted(to) {
            self.metrics.decode_failures += 1;
            return;
        }
        let Ok(payloads) = frame::decode_frame(&frame_bytes) else {
            self.metrics.decode_failures += 1;
            self.recorder.note(
                self.now,
                "decode_failure",
                format!(
                    "undecodable frame of {} bytes for peer {to}",
                    frame_bytes.len()
                ),
            );
            return;
        };
        if self.tracer.is_enabled() && self.frames_traced % 64 == 1 {
            let n = payloads.len();
            self.tracer
                .record(AMBIENT_TRACE, "frame_received", to as u64, self.now, || {
                    format!("messages={n} sample=1/64")
                });
        }
        for payload in payloads {
            let Some(message) = Message::decode(payload) else {
                self.metrics.decode_failures += 1;
                continue;
            };
            // A replica snapshot is what brings a recovering peer back
            // online, so it must reach the peer while it is still offline.
            if !self.nodes[to].state.online && !matches!(message, Message::ReplicaPush { .. }) {
                self.metrics.messages_to_offline += 1;
                continue;
            }
            self.metrics.messages_delivered += 1;
            self.current_actor = to;
            self.handle_message(to, message);
        }
    }

    // ----- experiment-facing control actions --------------------------------

    /// Brings a peer online and connects it to `fanout` random already-online
    /// peers (its unstructured-overlay neighbours), as the bootstrap phase of
    /// Section 5.1 does.
    pub fn join_peer(&mut self, peer: usize, fanout: usize) {
        let online: Vec<PeerId> = self
            .nodes
            .iter()
            .filter(|n| n.joined && n.state.online)
            .map(|n| n.state.id)
            .collect();
        let node = &mut self.nodes[peer];
        node.joined = true;
        node.state.online = true;
        let mut neighbours = online;
        neighbours.shuffle(&mut self.rng);
        neighbours.truncate(fanout);
        // Simulate the join handshake traffic.
        if let Some(first) = neighbours.first() {
            let join = Message::Join {
                peer: PeerId(peer as u64),
            };
            self.metrics.account(self.now, &join);
            let ack = Message::JoinAck {
                neighbours: neighbours.clone(),
            };
            self.metrics.account(self.now, &ack);
            let _ = first;
        }
        self.nodes[peer].neighbours = neighbours;
        // Symmetric neighbour links keep the unstructured overlay connected.
        for n in self.nodes[peer].neighbours.clone() {
            let other = n.0 as usize;
            if !self.nodes[other].neighbours.contains(&PeerId(peer as u64)) {
                self.nodes[other].neighbours.push(PeerId(peer as u64));
            }
        }
        self.rebuild_online_cache();
    }

    /// Brings a peer online with a pre-computed neighbour list instead of a
    /// locally drawn one.
    ///
    /// This is [`Runtime::join_peer`] minus the random selection: the
    /// cluster's join plan fixes every peer's bootstrap contacts up front
    /// (deterministically from the seed) so that all worker processes agree
    /// on the unstructured overlay — including the adjacency of peers they
    /// do not host, which the random-walk contact sampling and query
    /// routing read.  Join handshake bandwidth is only accounted by the
    /// process hosting the joiner.
    pub fn join_peer_with_neighbours(&mut self, peer: usize, neighbours: Vec<PeerId>) {
        let node = &mut self.nodes[peer];
        node.joined = true;
        node.state.online = true;
        if self.hosted(peer) && !neighbours.is_empty() {
            let join = Message::Join {
                peer: PeerId(peer as u64),
            };
            self.metrics.account(self.now, &join);
            let ack = Message::JoinAck {
                neighbours: neighbours.clone(),
            };
            self.metrics.account(self.now, &ack);
        }
        self.nodes[peer].neighbours = neighbours;
        // The same symmetric backlinks as `join_peer`: applied identically
        // in every process, they keep the replicated adjacency consistent.
        for n in self.nodes[peer].neighbours.clone() {
            let other = n.0 as usize;
            if !self.nodes[other].neighbours.contains(&PeerId(peer as u64)) {
                self.nodes[other].neighbours.push(PeerId(peer as u64));
            }
        }
        self.rebuild_online_cache();
    }

    /// Replicates every online peer's original entries to `n_min` random
    /// neighbours-of-neighbours (the replication phase of the primary
    /// index).
    pub fn replication_phase(&mut self) {
        self.replication_phase_on(IndexId::PRIMARY);
    }

    /// The replication phase of one index.
    pub fn replication_phase_on(&mut self, index: IndexId) {
        self.recorder.note(
            self.now,
            "phase",
            format!("replication phase started on index {}", index.0),
        );
        let n_min = self.config.n_min;
        let hosted: Vec<usize> = self.hosted_peers().collect();
        for peer in hosted {
            if !self.nodes[peer].state.online {
                continue;
            }
            self.current_actor = peer;
            let entries: Vec<DataEntry> = index_state(&self.nodes, &self.secondary, index, peer)
                .store
                .iter()
                .copied()
                .collect();
            for _ in 0..n_min {
                if let Some(target) = self.random_contact(peer) {
                    self.send_on(
                        index,
                        target,
                        Message::Replicate {
                            entries: entries.clone(),
                        },
                    );
                }
            }
            // Flush per source peer: each peer's replica pushes form one
            // frame per destination, so a loss draw drops one source's
            // copies, not a destination's entire replication phase.
            self.flush_pending();
        }
    }

    /// Starts periodic construction ticks on every hosted online peer (the
    /// primary index).
    pub fn start_construction(&mut self) {
        self.start_construction_on(IndexId::PRIMARY);
    }

    /// Starts periodic construction ticks of one index on every hosted
    /// online peer.  Peers whose tick chain is still scheduled are left
    /// alone (re-arming would double their tick rate); peers whose chain
    /// died — a tick fired while they were offline during churn — are
    /// re-armed, so a scenario can re-engage construction after a churn
    /// window (or after [`Runtime::insert_entries`] shifted the data).
    pub fn start_construction_on(&mut self, index: IndexId) {
        self.recorder.note(
            self.now,
            "phase",
            format!("construction started on index {}", index.0),
        );
        let hosted: Vec<usize> = self.hosted_peers().collect();
        for peer in hosted {
            if self.nodes[peer].state.online {
                let armed = index_tick_armed_mut(&mut self.nodes, &mut self.secondary, index, peer);
                if *armed {
                    continue;
                }
                *armed = true;
                *index_constructing_mut(&mut self.nodes, &mut self.secondary, index, peer) = true;
                let jitter = self
                    .rng
                    .gen_range(0..self.config.construct_interval_ms.max(1));
                self.schedule(self.now + jitter, EventKind::ConstructTick { index, peer });
            }
        }
    }

    /// Issues a lookup for `key` from a random hosted online peer (the
    /// primary index); the result is folded into
    /// [`NetMetrics::query_stats`].
    pub fn issue_query(&mut self, key: Key) {
        self.issue_query_on(IndexId::PRIMARY, key);
    }

    /// Issues a lookup for `key` against `index` from a random hosted
    /// online peer.
    pub fn issue_query_on(&mut self, index: IndexId, key: Key) {
        if self.online_hosted.is_empty() {
            return;
        }
        self.issue_one_query(index, key);
        self.flush_pending();
    }

    /// Issues a whole batch of lookups against `index`, flushing outgoing
    /// frames once for the entire batch instead of once per query.  This is
    /// the high-throughput issue path of the query bench: first-hop
    /// forwards to the same destination share frames, and the per-query
    /// flush disappears from the hot path.
    pub fn issue_query_batch_on(&mut self, index: IndexId, keys: &[Key]) {
        if self.online_hosted.is_empty() {
            return;
        }
        for &key in keys {
            self.issue_one_query(index, key);
        }
        self.flush_pending();
    }

    /// Shared issue path: draws the origin, registers the outstanding
    /// query and its lazy timeout, and lets the origin handle the query
    /// locally first (it might be responsible itself).  Does not flush.
    fn issue_one_query(&mut self, index: IndexId, key: Key) {
        let origin = self.online_hosted[self.rng.gen_range(0..self.online_hosted.len())];
        let id = self.next_query_id;
        self.next_query_id += 1;
        self.metrics.stats_mut(index).issued += 1;
        let trace_id = self.tracer.new_trace();
        self.tracer
            .record(trace_id, "query_issued", origin as u64, self.now, || {
                format!("id={id} index={} key={}", index.0, key.0)
            });
        self.outstanding_queries.insert(
            id,
            PendingQuery {
                index,
                issued_at: self.now,
                trace_id,
            },
        );
        self.timeout_queue
            .push_back((self.now + self.config.query_timeout_ms, id));
        let message = Message::Query {
            origin: PeerId(origin as u64),
            id,
            key,
            hops: 0,
        };
        // Handle locally under the lookup's trace context, so everything
        // the origin sends on (a forward or its own response) carries it.
        let previous = self.current_trace;
        self.current_trace = trace_id;
        self.current_actor = origin;
        self.handle_message_on(origin, index, message);
        self.current_trace = previous;
    }

    /// Issues a range query for `[lo, hi]` (inclusive) from a random hosted
    /// online peer on the primary index; returns the query id, or `None`
    /// when no hosted peer is online.
    pub fn issue_range_query(&mut self, lo: Key, hi: Key) -> Option<u64> {
        self.issue_range_query_on(IndexId::PRIMARY, lo, hi)
    }

    /// Issues a range query for `[lo, hi]` (inclusive) against `index`.
    ///
    /// The walk is the message-based counterpart of
    /// [`pgrid_core::search::range_query`]: it routes to the partition
    /// holding `lo`, collects that peer's slice, and follows the trie
    /// rightwards partition by partition; each responsible peer answers
    /// its slice straight to the origin.  Completion (the slices covering
    /// the whole range) and the collected entries are recorded in
    /// [`NetMetrics::query_stats`] / [`NetMetrics::range_samples`].  An
    /// empty range (`lo > hi`) completes immediately with no entries.  A
    /// walk expires incomplete only after [`NetConfig::query_timeout_ms`]
    /// *without progress* — every partial response extends the deadline,
    /// so wide ranges spanning many partitions are not penalised.
    pub fn issue_range_query_on(&mut self, index: IndexId, lo: Key, hi: Key) -> Option<u64> {
        if self.online_hosted.is_empty() {
            return None;
        }
        let origin = self.online_hosted[self.rng.gen_range(0..self.online_hosted.len())];
        let id = self.next_query_id;
        self.next_query_id += 1;
        let agg = self.metrics.stats_mut(index);
        agg.ranges_issued += 1;
        if lo > hi {
            agg.ranges_complete += 1;
            agg.range_latency.record(0);
            self.metrics.push_range_sample(RangeSample {
                index,
                id,
                lo,
                hi,
                issued_at: self.now,
                latency_ms: Some(0),
                complete: true,
                hops: 0,
                entries: Vec::new(),
            });
            return Some(id);
        }
        let deadline = self.now + self.config.query_timeout_ms;
        let trace_id = self.tracer.new_trace();
        self.tracer
            .record(trace_id, "range_issued", origin as u64, self.now, || {
                format!("id={id} index={} lo={} hi={}", index.0, lo.0, hi.0)
            });
        self.outstanding_ranges.insert(
            id,
            RangeState {
                index,
                issued_at: self.now,
                lo,
                hi,
                coverage: Coverage::default(),
                entries: Vec::new(),
                hops: 0,
                deadline,
                retries: 0,
                trace_id,
            },
        );
        self.range_timeout_queue.push_back((deadline, id));
        let previous = self.current_trace;
        self.current_trace = trace_id;
        self.current_actor = origin;
        self.handle_range_message(index, origin, PeerId(origin as u64), id, lo, hi, lo, 0);
        self.current_trace = previous;
        self.flush_pending();
        Some(id)
    }

    /// Takes a peer offline at `at` and brings it back `downtime` later
    /// (the churn pattern of the final experiment phase).
    pub fn schedule_churn(&mut self, peer: usize, at: Millis, downtime: Millis) {
        self.schedule(at, EventKind::GoOffline { peer });
        self.schedule(at + downtime, EventKind::GoOnline { peer });
    }

    /// Advances virtual time to `until`, processing timer events and frame
    /// deliveries in order.
    ///
    /// With a virtual-time transport (loopback) frame arrivals are merged
    /// deterministically with the timer queue.  With a real-time transport
    /// (TCP) arrived frames are always drained first, and while frames are
    /// still in flight the virtual clock briefly waits for the wire instead
    /// of racing ahead (bounded by [`MAX_REALTIME_STALLS`]).
    pub fn run_until(&mut self, until: Millis) {
        self.flush_pending();
        let mut stalls = 0u32;
        loop {
            if self.transport.is_realtime() {
                // Expire overdue queries *before* draining the wire: a
                // response that arrives after its deadline must count as a
                // late response, never as a success (the timeout verdict
                // is final — see `expire_timeouts`).
                self.expire_timeouts(self.now, false);
                let frames = self.transport.poll(self.now);
                if !frames.is_empty() {
                    stalls = 0;
                    for (to, frame_bytes) in frames {
                        self.deliver_frame(to, frame_bytes);
                    }
                    self.flush_pending();
                    continue;
                }
                if self.transport.in_flight() > 0 && stalls < MAX_REALTIME_STALLS {
                    stalls += 1;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
            }
            let frame_due = self.transport.next_due().filter(|&t| t <= until);
            let timer_due = self
                .queue
                .peek()
                .map(|Reverse(e)| e.time)
                .filter(|&t| t <= until);
            match (frame_due, timer_due) {
                (Some(f), t) if t.map_or(true, |t| f <= t) => {
                    self.now = self.now.max(f);
                    // Deadlines strictly before this instant have expired;
                    // a response arriving at exactly its deadline still
                    // counts (frames win ties, as with the old per-query
                    // timeout events).
                    self.expire_timeouts(self.now, false);
                    for (to, frame_bytes) in self.transport.poll(self.now) {
                        self.deliver_frame(to, frame_bytes);
                    }
                    self.flush_pending();
                }
                (_, Some(_)) => {
                    let Reverse(event) = self.queue.pop().expect("peeked above");
                    self.now = event.time.max(self.now);
                    self.expire_timeouts(self.now, false);
                    self.dispatch(event.kind);
                    self.flush_pending();
                }
                (_, None) => break,
            }
        }
        self.now = self.now.max(until);
        // End-of-window sweep: deadlines at or before `until` have fired
        // (as the per-query heap events would have by now).
        self.expire_timeouts(self.now, true);
    }

    // ----- event dispatch ----------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::ConstructTick { index, peer } => self.construct_tick(index, peer),
            EventKind::GoOffline { peer } => {
                self.nodes[peer].state.online = false;
                self.recorder
                    .note(self.now, "churn", format!("peer {peer} went offline"));
                self.rebuild_online_cache();
            }
            EventKind::GoOnline { peer } => {
                if self.nodes[peer].joined {
                    self.nodes[peer].state.online = true;
                }
                self.recorder
                    .note(self.now, "churn", format!("peer {peer} came back online"));
                self.rebuild_online_cache();
            }
        }
    }

    /// Recomputes the cached list of hosted online peers (ascending, the
    /// exact filter the per-query scan used to apply).  Adopted peers sort
    /// into place; without adoptions the shard range is already ascending
    /// and the sort is a no-op, so the origin draws are unchanged.
    fn rebuild_online_cache(&mut self) {
        self.online_hosted = self
            .hosted_peers()
            .filter(|&i| self.nodes[i].joined && self.nodes[i].state.online)
            .collect();
        self.online_hosted.sort_unstable();
    }

    /// Expires every queued deadline up to `cutoff` (strictly below it
    /// unless `inclusive`): outstanding lookups count as timed out,
    /// outstanding range queries resolve incomplete.  Deadlines of queries
    /// that were answered in time are simply discarded.  The queue is in
    /// issue order and the timeout is constant, so this is a front sweep.
    fn expire_timeouts(&mut self, cutoff: Millis, inclusive: bool) {
        while let Some(&(deadline, id)) = self.timeout_queue.front() {
            let due = if inclusive {
                deadline <= cutoff
            } else {
                deadline < cutoff
            };
            if !due {
                break;
            }
            self.timeout_queue.pop_front();
            if let Some(pending) = self.outstanding_queries.remove(&id) {
                self.metrics.stats_mut(pending.index).timed_out += 1;
                self.tracer.record(
                    pending.trace_id,
                    "query_timeout",
                    u64::MAX,
                    self.now,
                    || format!("id={id} issued_at={}", pending.issued_at),
                );
                self.recorder.note(
                    self.now,
                    "query_timeout",
                    format!(
                        "query {id} on index {} issued at {} expired unanswered",
                        pending.index.0, pending.issued_at
                    ),
                );
                self.dump_flight("query timeout");
                self.metrics.push_query_sample(QueryRecord {
                    index: pending.index,
                    issued_at: pending.issued_at,
                    latency_ms: None,
                    hops: 0,
                    success: false,
                });
            }
        }
        while let Some(&(deadline, id)) = self.range_timeout_queue.front() {
            let due = if inclusive {
                deadline <= cutoff
            } else {
                deadline < cutoff
            };
            if !due {
                break;
            }
            self.range_timeout_queue.pop_front();
            // A later entry supersedes this one: the walk made progress
            // and its deadline was extended.
            if self
                .outstanding_ranges
                .get(&id)
                .is_some_and(|state| state.deadline > deadline)
            {
                continue;
            }
            // A stalled walk (typically killed by frame loss) is restarted
            // from the first uncovered key before the origin gives up.
            let restart = self
                .outstanding_ranges
                .get(&id)
                .filter(|state| state.retries < MAX_RANGE_RETRIES)
                .map(|state| {
                    let cursor = state
                        .coverage
                        .first_uncovered(state.lo, state.hi)
                        .expect("an uncovering walk always has a gap");
                    (
                        state.index,
                        state.lo,
                        state.hi,
                        cursor,
                        state.hops,
                        state.trace_id,
                    )
                });
            if let Some((index, lo, hi, cursor, hops, trace_id)) = restart {
                if !self.online_hosted.is_empty() {
                    let peer = self.online_hosted[self.rng.gen_range(0..self.online_hosted.len())];
                    let state = self.outstanding_ranges.get_mut(&id).expect("checked above");
                    state.retries += 1;
                    state.deadline = self.now + self.config.query_timeout_ms;
                    let new_deadline = state.deadline;
                    self.range_timeout_queue.push_back((new_deadline, id));
                    self.tracer
                        .record(trace_id, "range_retry", peer as u64, self.now, || {
                            format!("id={id} cursor={} hops={hops}", cursor.0)
                        });
                    let previous = self.current_trace;
                    self.current_trace = trace_id;
                    self.current_actor = peer;
                    self.handle_range_message(
                        index,
                        peer,
                        PeerId(peer as u64),
                        id,
                        lo,
                        hi,
                        cursor,
                        hops,
                    );
                    self.current_trace = previous;
                    continue;
                }
            }
            if let Some(mut state) = self.outstanding_ranges.remove(&id) {
                state.entries.sort_unstable();
                state.entries.dedup();
                self.tracer.record(
                    state.trace_id,
                    "range_incomplete",
                    u64::MAX,
                    self.now,
                    || format!("id={id} hops={} retries={}", state.hops, state.retries),
                );
                self.recorder.note(
                    self.now,
                    "range_timeout",
                    format!(
                        "range {id} on index {} gave up after {} retries",
                        state.index.0, state.retries
                    ),
                );
                self.dump_flight("range timeout");
                self.metrics.push_range_sample(RangeSample {
                    index: state.index,
                    id,
                    lo: state.lo,
                    hi: state.hi,
                    issued_at: state.issued_at,
                    latency_ms: None,
                    complete: false,
                    hops: state.hops,
                    entries: state.entries,
                });
            }
        }
    }

    fn handle_message(&mut self, to: usize, message: Message) {
        match message {
            Message::ForIndex { index, inner } => {
                let index = IndexId(index);
                if !self.has_index_state(index) {
                    // An envelope for an index this runtime never
                    // registered: version skew, not ordinary traffic.
                    self.metrics.decode_failures += 1;
                    return;
                }
                self.handle_message_on(to, index, *inner);
            }
            Message::Traced { trace_id, inner } => {
                // Adopt the sender's trace context for the inner message:
                // everything it triggers (forwards, responses) carries the
                // same trace ID onwards.
                let previous = self.current_trace;
                self.current_trace = trace_id;
                self.handle_message(to, *inner);
                self.current_trace = previous;
            }
            other => self.handle_message_on(to, IndexId::PRIMARY, other),
        }
    }

    fn handle_message_on(&mut self, to: usize, index: IndexId, message: Message) {
        match message {
            Message::Join { .. } | Message::JoinAck { .. } => {
                // Join traffic is handled synchronously in `join_peer`; these
                // messages only exist for bandwidth accounting.
            }
            Message::Replicate { entries } => {
                index_state_mut(&mut self.nodes, &mut self.secondary, index, to)
                    .store
                    .merge_from(entries);
            }
            Message::Exchange {
                from,
                path,
                entries,
            } => {
                let reply = self.decide_exchange(index, to, from, path, &entries);
                if self.tracer.is_enabled() {
                    let outcome = match &reply {
                        ExchangeOutcome::Split { .. } => "split",
                        ExchangeOutcome::Replicate { .. } => "replicate",
                        ExchangeOutcome::Refer { .. } => "refer",
                        ExchangeOutcome::Nothing => "nothing",
                    };
                    self.tracer.record(
                        AMBIENT_TRACE,
                        "exchange_decision",
                        to as u64,
                        self.now,
                        || format!("from={} index={} outcome={outcome}", from.0, index.0),
                    );
                }
                let responder_path = self.peer_state(index, to).path;
                self.send_on(
                    index,
                    from.0 as usize,
                    Message::ExchangeReply {
                        from: PeerId(to as u64),
                        path: responder_path,
                        outcome: reply,
                    },
                );
                // An exchange may have changed this peer's path or routing
                // table; drop its memoised routing resolutions.
                self.invalidate_route_cache(to, index);
            }
            Message::ExchangeReply {
                from,
                path,
                outcome,
            } => {
                self.apply_exchange_reply(index, to, from, path, outcome);
                self.invalidate_route_cache(to, index);
            }
            Message::Query {
                origin,
                id,
                key,
                hops,
            } => {
                self.handle_query_message(index, to, origin, id, key, hops);
            }
            Message::QueryResponse {
                id,
                entries,
                hops,
                found,
            } => {
                if let Some(pending) = self.outstanding_queries.remove(&id) {
                    let latency = self.now - pending.issued_at;
                    let success = found && !entries.is_empty();
                    self.tracer.record(
                        pending.trace_id,
                        "query_resolved",
                        to as u64,
                        self.now,
                        || format!("id={id} hops={hops} latency_ms={latency} success={success}"),
                    );
                    let agg = self.metrics.stats_mut(pending.index);
                    agg.answered += 1;
                    if success {
                        agg.succeeded += 1;
                        agg.hops_sum_successful += hops as u64;
                    }
                    agg.latency.record(latency);
                    agg.per_minute
                        .entry(pending.issued_at / 60_000)
                        .or_default()
                        .record(latency as f64 / 1000.0);
                    self.metrics.push_query_sample(QueryRecord {
                        index: pending.index,
                        issued_at: pending.issued_at,
                        latency_ms: Some(latency),
                        hops,
                        success,
                    });
                } else {
                    // The query already timed out (or was never issued
                    // here): count the late response, never the success.
                    self.metrics.stats_mut(index).late_responses += 1;
                }
                let _ = to;
            }
            Message::RangeQuery {
                origin,
                id,
                lo,
                hi,
                cursor,
                hops,
            } => {
                self.handle_range_message(index, to, origin, id, lo, hi, cursor, hops);
            }
            Message::RangeResponse {
                id,
                from,
                upto,
                entries,
                hops,
            } => {
                let deadline = self.now + self.config.query_timeout_ms;
                let slice = if let Some(state) = self.outstanding_ranges.get_mut(&id) {
                    state.coverage.add(from, upto);
                    state.entries.extend(entries);
                    state.hops = state.hops.max(hops);
                    // Progress resets the clock: the walk may legitimately
                    // cross many partitions, it just must not stall.
                    state.deadline = deadline;
                    Some((state.trace_id, state.coverage.covers(state.lo, state.hi)))
                } else {
                    self.metrics.stats_mut(index).late_responses += 1;
                    None
                };
                if let Some((trace_id, covered)) = slice {
                    self.tracer
                        .record(trace_id, "range_slice", to as u64, self.now, || {
                            format!(
                                "id={id} from={} upto={} hops={hops} complete={covered}",
                                from.0, upto.0
                            )
                        });
                }
                let finished = slice.is_some_and(|(_, covered)| covered);
                if self.outstanding_ranges.contains_key(&id) && !finished {
                    self.range_timeout_queue.push_back((deadline, id));
                }
                if finished {
                    let mut state = self
                        .outstanding_ranges
                        .remove(&id)
                        .expect("checked just above");
                    let latency = self.now - state.issued_at;
                    state.entries.sort_unstable();
                    state.entries.dedup();
                    let agg = self.metrics.stats_mut(state.index);
                    agg.ranges_complete += 1;
                    agg.range_latency.record(latency);
                    self.metrics.push_range_sample(RangeSample {
                        index: state.index,
                        id,
                        lo: state.lo,
                        hi: state.hi,
                        issued_at: state.issued_at,
                        latency_ms: Some(latency),
                        complete: true,
                        hops: state.hops,
                        entries: state.entries,
                    });
                }
                let _ = to;
            }
            Message::ReplicaPull { origin } => {
                // Snapshot this peer's partition for the recovering peer:
                // path, every stored entry, the routing table, and the
                // replica set — the paper's replication factor is exactly
                // what makes this answer possible.
                let state = index_state(&self.nodes, &self.secondary, index, to);
                let path = state.path;
                let entries: Vec<DataEntry> = state.store.iter().copied().collect();
                let routing: Vec<(u8, PeerId, Path)> = state
                    .routing
                    .entries()
                    .map(|(level, entry)| (level as u8, entry.peer, entry.path))
                    .collect();
                let mut replicas: Vec<PeerId> = state.replicas.clone();
                replicas.retain(|p| *p != origin);
                replicas.push(PeerId(to as u64));
                // The recovering peer becomes another replica of this
                // partition.
                let state = index_state_mut(&mut self.nodes, &mut self.secondary, index, to);
                if !state.replicas.contains(&origin) {
                    state.replicas.push(origin);
                }
                self.tracer
                    .record(AMBIENT_TRACE, "replica_pull", to as u64, self.now, || {
                        format!("origin={} index={}", origin.0, index.0)
                    });
                self.send_on(
                    index,
                    origin.0 as usize,
                    Message::ReplicaPush {
                        path,
                        entries,
                        routing,
                        replicas,
                    },
                );
            }
            Message::ReplicaPush {
                path,
                entries,
                routing,
                replicas,
            } => {
                self.apply_replica_push(index, to, path, entries, routing, replicas);
            }
            Message::ForIndex { .. } | Message::Traced { .. } => {
                // Nested envelopes are rejected at decode time; reaching
                // one here means a hand-crafted message — drop it.
                self.metrics.decode_failures += 1;
            }
        }
    }

    /// Rebuilds a recovering peer's state from a replica snapshot: exact
    /// key store, the replica's path, its routing references and replica
    /// set.  A snapshot for a peer that already finished recovering (a
    /// second replica answered late) is ignored.
    fn apply_replica_push(
        &mut self,
        index: IndexId,
        to: usize,
        path: Path,
        entries: Vec<DataEntry>,
        routing: Vec<(u8, PeerId, Path)>,
        replicas: Vec<PeerId>,
    ) {
        if self.reconciling.contains(&to) {
            self.apply_replica_diff(index, to, path, entries, routing, replicas);
            return;
        }
        if !self.recovering.contains(&to) {
            return;
        }
        let fanout = self.config.routing_fanout;
        let mut table = pgrid_core::routing::RoutingTable::new(fanout);
        for (level, peer, rpath) in routing {
            table.add(
                level as usize,
                RoutingEntry { peer, path: rpath },
                &mut self.rng,
            );
        }
        let state = index_state_mut(&mut self.nodes, &mut self.secondary, index, to);
        state.path = path;
        state.store = KeyStore::from_entries(entries);
        state.routing = table;
        state.replicas = replicas;
        state.replicas.retain(|p| p.0 as usize != to);
        self.recovering.remove(&to);
        self.metrics.peers_recovered_replica += 1;
        self.tracer.record(
            AMBIENT_TRACE,
            "replica_recovered",
            to as u64,
            self.now,
            || format!("index={} path_len={}", index.0, path.len()),
        );
        self.recorder.note(
            self.now,
            "recovery",
            format!(
                "peer {to} rebuilt from a live replica (path len {})",
                path.len()
            ),
        );
        self.finish_recovery(to);
    }

    /// Merges a replica's answer into a warm-restored peer (anti-entropy
    /// reconciliation).  Unlike the cold path above, the replayed state is
    /// the baseline: same partition path → union of entries, replicas and
    /// routing references; diverged path (the partition split or moved
    /// while the peer was down) → adopt the replica's identity wholesale
    /// and keep only the replayed entries it still covers.
    fn apply_replica_diff(
        &mut self,
        index: IndexId,
        to: usize,
        path: Path,
        entries: Vec<DataEntry>,
        routing: Vec<(u8, PeerId, Path)>,
        replicas: Vec<PeerId>,
    ) {
        let fanout = self.config.routing_fanout;
        let own_path = index_state(&self.nodes, &self.secondary, index, to).path;
        let merged = if own_path == path {
            let mut table = std::mem::replace(
                &mut index_state_mut(&mut self.nodes, &mut self.secondary, index, to).routing,
                pgrid_core::routing::RoutingTable::new(fanout),
            );
            for (level, peer, rpath) in routing {
                let level = level as usize;
                if !table.level(level).iter().any(|e| e.peer == peer) {
                    table.add(level, RoutingEntry { peer, path: rpath }, &mut self.rng);
                }
            }
            let state = index_state_mut(&mut self.nodes, &mut self.secondary, index, to);
            state.routing = table;
            for r in replicas {
                if r.0 as usize != to && !state.replicas.contains(&r) {
                    state.replicas.push(r);
                }
            }
            state.store.merge_batch(entries)
        } else {
            let mut table = pgrid_core::routing::RoutingTable::new(fanout);
            for (level, peer, rpath) in routing {
                table.add(
                    level as usize,
                    RoutingEntry { peer, path: rpath },
                    &mut self.rng,
                );
            }
            let state = index_state_mut(&mut self.nodes, &mut self.secondary, index, to);
            let old = state.store.drain();
            state.path = path;
            state.routing = table;
            state.store = KeyStore::from_entries(entries);
            state.replicas = replicas;
            state.replicas.retain(|p| p.0 as usize != to);
            let covered: Vec<DataEntry> = old.into_iter().filter(|e| path.covers(e.key)).collect();
            state.store.merge_batch(covered)
        };
        self.reconciling.remove(&to);
        self.metrics.peers_reconciled += 1;
        self.metrics.reconciled_entries += merged;
        self.invalidate_route_cache(to, index);
        self.tracer.record(
            AMBIENT_TRACE,
            "replica_reconciled",
            to as u64,
            self.now,
            || format!("index={} merged={merged}", index.0),
        );
        self.recorder.note(
            self.now,
            "recovery",
            format!("peer {to} reconciled with a live replica ({merged} entries merged)"),
        );
    }

    /// Brings a recovered peer back into service: joined + online, cache
    /// rebuilt, route-cache entries invalidated, and — when construction
    /// is still running on this index population — a re-armed tick chain
    /// so the peer keeps participating in the exchange protocol.
    fn finish_recovery(&mut self, peer: usize) {
        self.nodes[peer].joined = true;
        self.nodes[peer].state.online = true;
        self.rebuild_online_cache();
        self.invalidate_route_cache(peer, IndexId::PRIMARY);
        let construction_live = self
            .shard
            .clone()
            .any(|p| self.nodes[p].constructing && self.nodes[p].tick_armed);
        if construction_live && !self.nodes[peer].tick_armed {
            self.nodes[peer].tick_armed = true;
            self.nodes[peer].constructing = true;
            let jitter = self
                .rng
                .gen_range(0..self.config.construct_interval_ms.max(1));
            self.schedule(
                self.now + jitter,
                EventKind::ConstructTick {
                    index: IndexId::PRIMARY,
                    peer,
                },
            );
        }
    }

    // ----- construction protocol ---------------------------------------------

    fn construct_tick(&mut self, index: IndexId, peer: usize) {
        self.current_actor = peer;
        let constructing = index_constructing(&self.nodes, &self.secondary, index, peer);
        if !self.nodes[peer].state.online || !constructing {
            // The chain ends here (no reschedule, as in the paper's
            // reference run); `start_construction_on` can re-arm it.
            *index_tick_armed_mut(&mut self.nodes, &mut self.secondary, index, peer) = false;
            return;
        }
        // Back off after repeated fruitless exchanges unless the local store
        // clearly indicates an overloaded, still splittable partition.  A
        // backed-off peer does not stop entirely: it keeps exchanging at a
        // much lower rate, which provides the background anti-entropy that
        // keeps replicas converged during the operational phase (and shows
        // up as the residual maintenance bandwidth of Figure 8).
        let backing_off = {
            let fruitless = index_fruitless(&self.nodes, &self.secondary, index, peer);
            let state = index_state(&self.nodes, &self.secondary, index, peer);
            fruitless >= 4 && !self.engine.locally_overloaded(state)
        };
        if let Some(target) = self.random_contact(peer) {
            let state = index_state(&self.nodes, &self.secondary, index, peer);
            let entries: Vec<DataEntry> = state
                .store
                .restricted(&state.path)
                .entries()
                .copied()
                .collect();
            let message = Message::Exchange {
                from: PeerId(peer as u64),
                path: state.path,
                entries,
            };
            self.send_on(index, target, message);
        }
        let interval = if backing_off {
            self.config.construct_interval_ms * 10
        } else {
            self.config.construct_interval_ms
        };
        let jitter = self.rng.gen_range(0..interval.max(1));
        self.schedule(
            self.now + interval + jitter,
            EventKind::ConstructTick { index, peer },
        );
    }

    /// The contacted peer's local decision for an exchange (Figure 2).
    ///
    /// The protocol decision — assessment, probabilities and the random
    /// draw — is delegated to the shared [`pgrid_core::exchange`] engine;
    /// this method only translates the resulting [`ExchangeDecision`] into
    /// the wire protocol's [`ExchangeOutcome`] and the responder-side state
    /// transition.
    fn decide_exchange(
        &mut self,
        index: IndexId,
        responder: usize,
        initiator: PeerId,
        initiator_path: Path,
        initiator_entries: &[DataEntry],
    ) -> ExchangeOutcome {
        let responder_path = self.peer_state(index, responder).path;

        if ExchangeEngine::refer_level(&responder_path, &initiator_path).is_some() {
            // Refer the initiator to a peer for its own side, and learn a
            // reference ourselves.
            let level = responder_path.common_prefix_len(&initiator_path);
            index_state_mut(&mut self.nodes, &mut self.secondary, index, responder)
                .learn_reference(initiator, initiator_path, &mut self.rng);
            let referred = {
                let state = index_state(&self.nodes, &self.secondary, index, responder);
                state
                    .routing
                    .level(level)
                    .iter()
                    .map(|e| (e.peer, e.path))
                    .collect::<Vec<_>>()
            };
            return match referred.choose(&mut self.rng) {
                Some(&(peer, path)) if peer != initiator => ExchangeOutcome::Refer { peer, path },
                _ => ExchangeOutcome::Nothing,
            };
        }

        // Work on the shallower of the two paths; the engine decides on
        // behalf of the shallower ("lagging") peer.
        let partition = if responder_path.len() <= initiator_path.len() {
            responder_path
        } else {
            initiator_path
        };
        let initiator_store = KeyStore::from_entries(
            initiator_entries
                .iter()
                .copied()
                .filter(|e| partition.covers(e.key)),
        );
        // Zero-copy view of the responder's partition entries; everything
        // derived from it is computed before the responder's state is
        // mutated.
        let responder_store = index_state(&self.nodes, &self.secondary, index, responder)
            .store
            .restricted(&partition);
        let assessment = self
            .engine
            .assess(&initiator_store, &responder_store, &partition);

        if responder_path.len() == initiator_path.len() {
            // Two undecided peers at the same level.
            let decision =
                self.engine
                    .decide(initiator_path, responder_path, &assessment, &mut self.rng);
            return match decision {
                ExchangeDecision::Replicate => {
                    // Become replicas: hand over what the initiator is
                    // missing, pull what the responder is missing (it
                    // arrived with the request).
                    let to_initiator = responder_store.missing_in(&initiator_store);
                    let to_responder = initiator_store.missing_in(&responder_store);
                    let state =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, responder);
                    if !state.replicas.contains(&initiator) {
                        state.replicas.push(initiator);
                    }
                    state.store.merge_from(to_responder);
                    ExchangeOutcome::Replicate {
                        entries: to_initiator,
                    }
                }
                ExchangeDecision::Split {
                    bit: initiator_bit,
                    balanced: true,
                    ..
                } => {
                    // The responder extends its own path with the
                    // complementary bit and hands over the initiator's side.
                    let responder_bit = !initiator_bit;
                    let handover =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, responder)
                            .split_towards(
                                responder_bit,
                                RoutingEntry {
                                    peer: initiator,
                                    path: partition.child(initiator_bit),
                                },
                                &mut self.rng,
                            );
                    // Keep the initiator's entries that belong to our new
                    // side.
                    let state =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, responder);
                    let own_path = state.path;
                    state.store.merge_from(
                        initiator_entries
                            .iter()
                            .copied()
                            .filter(|e| own_path.covers(e.key)),
                    );
                    ExchangeOutcome::Split {
                        partition,
                        initiator_bit,
                        entries: handover,
                        complement: None,
                    }
                }
                _ => ExchangeOutcome::Nothing,
            };
        }

        if responder_path.len() > initiator_path.len() {
            // The initiator lags behind a peer (us) that has already decided
            // at this level: the engine applies the decided-peer rules
            // (cases 3/4) on its behalf; we ship the entries of its new side.
            let decision =
                self.engine
                    .decide(initiator_path, responder_path, &assessment, &mut self.rng);
            let ExchangeDecision::Split {
                bit: initiator_bit,
                balanced: false,
                ..
            } = decision
            else {
                return ExchangeOutcome::Nothing;
            };
            let responder_bit = responder_path.bit(partition.len());
            // When the initiator joins the responder's own side it needs a
            // reference to the complementary subtree, which the responder has
            // in its routing table for this level.
            let complement = if initiator_bit == responder_bit {
                let refs = index_state(&self.nodes, &self.secondary, index, responder)
                    .routing
                    .level(partition.len());
                match refs.choose(&mut self.rng) {
                    Some(entry) => Some((entry.peer, entry.path)),
                    None => return ExchangeOutcome::Nothing,
                }
            } else {
                None
            };
            let initiator_new_path = partition.child(initiator_bit);
            let handover: Vec<DataEntry> = responder_store
                .entries()
                .copied()
                .filter(|e| initiator_new_path.covers(e.key))
                .collect();
            return ExchangeOutcome::Split {
                partition,
                initiator_bit,
                entries: handover,
                complement,
            };
        }

        // The responder itself lags behind the initiator: catch up locally
        // using the initiator as the already-decided peer.  Only the
        // opposite-side decision can be completed here (it yields the
        // initiator as the routing reference); for the same-side decision we
        // would need one of the initiator's references, so we simply wait for
        // a later exchange.
        let decision =
            self.engine
                .decide(responder_path, initiator_path, &assessment, &mut self.rng);
        let ahead_bit = initiator_path.bit(partition.len());
        match decision {
            ExchangeDecision::Split {
                bit,
                balanced: false,
                ..
            } if bit != ahead_bit => {
                let shipped =
                    index_state_mut(&mut self.nodes, &mut self.secondary, index, responder)
                        .split_towards(
                            bit,
                            RoutingEntry {
                                peer: initiator,
                                path: initiator_path,
                            },
                            &mut self.rng,
                        );
                // The shipped entries belong to the initiator's half of the
                // partition; hand them over with the reply.
                ExchangeOutcome::Replicate { entries: shipped }
            }
            _ => ExchangeOutcome::Nothing,
        }
    }

    /// The initiator applies the responder's decision.
    fn apply_exchange_reply(
        &mut self,
        index: IndexId,
        initiator: usize,
        responder: PeerId,
        responder_path: Path,
        outcome: ExchangeOutcome,
    ) {
        // Always learn a routing reference from the encounter if possible.
        index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator).learn_reference(
            responder,
            responder_path,
            &mut self.rng,
        );
        match outcome {
            ExchangeOutcome::Nothing => {
                *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) += 1;
            }
            ExchangeOutcome::Refer { peer, path } => {
                index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator)
                    .learn_reference(peer, path, &mut self.rng);
                *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) += 1;
            }
            ExchangeOutcome::Replicate { entries } => {
                let added = {
                    let state =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator);
                    let added = state.store.merge_from(entries);
                    if !state.replicas.contains(&responder) {
                        state.replicas.push(responder);
                    }
                    added
                };
                let fruitless =
                    index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator);
                if added == 0 {
                    *fruitless += 1;
                } else {
                    *fruitless = 0;
                }
            }
            ExchangeOutcome::Split {
                partition,
                initiator_bit,
                entries,
                complement,
            } => {
                let node_path = self.peer_state(index, initiator).path;
                // The decision applies to the partition the responder saw in
                // the request; if the initiator has moved on in the meantime
                // (a concurrent exchange extended its path) the reply is
                // stale and must be ignored.
                if node_path == partition {
                    // Reference for the complementary subtree: the responder
                    // itself when we took the opposite side, otherwise the
                    // complement peer it referred us to.
                    let reference = match complement {
                        Some((peer, path)) => RoutingEntry { peer, path },
                        None => RoutingEntry {
                            peer: responder,
                            path: if responder_path.len() > node_path.len() {
                                responder_path
                            } else {
                                node_path.child(!initiator_bit)
                            },
                        },
                    };
                    let shipped =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator)
                            .split_towards(initiator_bit, reference, &mut self.rng);
                    index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator)
                        .store
                        .merge_from(entries);
                    // Hand the entries of the other side back to the
                    // responder (content exchange).
                    if !shipped.is_empty() {
                        self.send_on(
                            index,
                            responder.0 as usize,
                            Message::Replicate { entries: shipped },
                        );
                    }
                    *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) =
                        0;
                } else {
                    *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) +=
                        1;
                }
            }
        }
    }

    // ----- query routing -------------------------------------------------------

    fn handle_query_message(
        &mut self,
        index: IndexId,
        at: usize,
        origin: PeerId,
        id: u64,
        key: Key,
        hops: u32,
    ) {
        let trace = self.current_trace;
        let path = self.peer_state(index, at).path;
        let mismatch = (0..path.len()).find(|&i| path.bit(i) != key.bit(i));
        match mismatch {
            None => {
                // Responsible peer: answer directly to the origin.  If this
                // replica happens to miss the entry (it may still be in
                // transit from the construction phase), try an online
                // replica of the same partition before giving up — that is
                // exactly what the structural replication is for.
                let entries: Vec<DataEntry> = self
                    .peer_state(index, at)
                    .store
                    .range(key, key)
                    .copied()
                    .collect();
                if entries.is_empty() && (hops as usize) < pgrid_core::search::MAX_HOPS {
                    // Liveness is shared across indexes: the primary node
                    // state is the failure detector for all of them.
                    let replicas: Vec<PeerId> = self.peer_state(index, at).replicas.clone();
                    let next = replicas.iter().copied().find(|p| {
                        p.0 as usize != at
                            && self.nodes[p.0 as usize].state.online
                            && self.link_ok(p.0 as usize)
                    });
                    if let Some(peer) = next {
                        self.tracer.record(
                            trace,
                            "query_replica_forward",
                            at as u64,
                            self.now,
                            || format!("id={id} to={} hop={}", peer.0, hops + 1),
                        );
                        self.send_on(
                            index,
                            peer.0 as usize,
                            Message::Query {
                                origin,
                                id,
                                key,
                                hops: hops + 1,
                            },
                        );
                        return;
                    }
                }
                let found = !entries.is_empty();
                self.tracer
                    .record(trace, "query_answered", at as u64, self.now, || {
                        format!("id={id} found={found} hops={hops} path={path}")
                    });
                self.send_on(
                    index,
                    origin.0 as usize,
                    Message::QueryResponse {
                        id,
                        entries,
                        hops,
                        found,
                    },
                );
            }
            Some(level) => {
                // Hot path: with the route cache on, a repeated prefix
                // resolution at this peer/level skips the reference
                // shuffle entirely (an offline cached target falls back to
                // the full resolution below and is evicted).
                if self.config.route_cache {
                    if let Some(&peer) = self.route_cache.get(&(at, index, level)) {
                        if self.nodes[peer.0 as usize].state.online && self.link_ok(peer.0 as usize)
                        {
                            if hops as usize > pgrid_core::search::MAX_HOPS {
                                self.tracer.record(
                                    trace,
                                    "query_dead_end",
                                    at as u64,
                                    self.now,
                                    || format!("id={id} hops={hops} reason=hop_budget"),
                                );
                                self.send_on(
                                    index,
                                    origin.0 as usize,
                                    Message::QueryResponse {
                                        id,
                                        entries: Vec::new(),
                                        hops,
                                        found: false,
                                    },
                                );
                                return;
                            }
                            self.tracer
                                .record(trace, "query_hop", at as u64, self.now, || {
                                    format!(
                                        "id={id} level={level} to={} hop={} cached=true",
                                        peer.0,
                                        hops + 1
                                    )
                                });
                            self.send_on(
                                index,
                                peer.0 as usize,
                                Message::Query {
                                    origin,
                                    id,
                                    key,
                                    hops: hops + 1,
                                },
                            );
                            return;
                        }
                        self.route_cache.remove(&(at, index, level));
                    }
                }
                // Forward to an online reference at the mismatch level;
                // offline targets are detected (failed connection) and an
                // alternative is tried, as a socket implementation would.
                let mut refs: Vec<PeerId> = self
                    .peer_state(index, at)
                    .routing
                    .level(level)
                    .iter()
                    .map(|e| e.peer)
                    .collect();
                refs.shuffle(&mut self.rng);
                let next = refs
                    .into_iter()
                    .find(|p| self.nodes[p.0 as usize].state.online && self.link_ok(p.0 as usize));
                match next {
                    Some(peer) => {
                        if hops as usize > pgrid_core::search::MAX_HOPS {
                            self.tracer.record(
                                trace,
                                "query_dead_end",
                                at as u64,
                                self.now,
                                || format!("id={id} hops={hops} reason=hop_budget"),
                            );
                            self.send_on(
                                index,
                                origin.0 as usize,
                                Message::QueryResponse {
                                    id,
                                    entries: Vec::new(),
                                    hops,
                                    found: false,
                                },
                            );
                            return;
                        }
                        if self.config.route_cache {
                            self.route_cache.insert((at, index, level), peer);
                        }
                        self.tracer
                            .record(trace, "query_hop", at as u64, self.now, || {
                                format!(
                                    "id={id} level={level} to={} hop={} cached=false",
                                    peer.0,
                                    hops + 1
                                )
                            });
                        self.send_on(
                            index,
                            peer.0 as usize,
                            Message::Query {
                                origin,
                                id,
                                key,
                                hops: hops + 1,
                            },
                        );
                    }
                    None => {
                        self.tracer
                            .record(trace, "query_dead_end", at as u64, self.now, || {
                                format!("id={id} hops={hops} reason=no_online_reference")
                            });
                        self.send_on(
                            index,
                            origin.0 as usize,
                            Message::QueryResponse {
                                id,
                                entries: Vec::new(),
                                hops,
                                found: false,
                            },
                        );
                    }
                }
            }
        }
    }

    /// One step of the range-query trie walk at peer `at` (see
    /// [`Runtime::issue_range_query_on`] for the protocol).
    #[allow(clippy::too_many_arguments)]
    fn handle_range_message(
        &mut self,
        index: IndexId,
        at: usize,
        origin: PeerId,
        id: u64,
        lo: Key,
        hi: Key,
        cursor: Key,
        hops: u32,
    ) {
        // A range walk visits one partition per slice, so its hop budget
        // scales with the partition safety net of the core traversal, not
        // with a single lookup's.
        const RANGE_HOP_BUDGET: u32 = (pgrid_core::search::MAX_HOPS * 32) as u32;
        let trace = self.current_trace;
        let path = self.peer_state(index, at).path;
        let mismatch = (0..path.len()).find(|&i| path.bit(i) != cursor.bit(i));
        match mismatch {
            None => {
                // Responsible for the cursor's partition: answer the slice
                // this partition covers straight to the origin, then walk
                // on to the next partition if the range extends past it.
                let upper = path.upper_key();
                let upto = upper.min(hi);
                let entries: Vec<DataEntry> = self
                    .peer_state(index, at)
                    .store
                    .range(cursor, upto)
                    .copied()
                    .collect();
                self.tracer
                    .record(trace, "range_answered", at as u64, self.now, || {
                        format!(
                            "id={id} from={} upto={} entries={} hops={hops}",
                            cursor.0,
                            upto.0,
                            entries.len()
                        )
                    });
                self.send_on(
                    index,
                    origin.0 as usize,
                    Message::RangeResponse {
                        id,
                        from: cursor,
                        upto,
                        entries,
                        hops,
                    },
                );
                if upper < hi && upper < Key::MAX && hops < RANGE_HOP_BUDGET {
                    let next_cursor = Key(upper.0 + 1);
                    self.handle_range_message(index, at, origin, id, lo, hi, next_cursor, hops);
                }
            }
            Some(level) => {
                if hops >= RANGE_HOP_BUDGET {
                    // Runaway walk: stop forwarding; the origin times out
                    // and reports the range incomplete.
                    return;
                }
                if self.config.route_cache {
                    if let Some(&peer) = self.route_cache.get(&(at, index, level)) {
                        if self.nodes[peer.0 as usize].state.online && self.link_ok(peer.0 as usize)
                        {
                            self.tracer
                                .record(trace, "range_hop", at as u64, self.now, || {
                                    format!(
                                        "id={id} level={level} to={} hop={} cached=true",
                                        peer.0,
                                        hops + 1
                                    )
                                });
                            self.send_on(
                                index,
                                peer.0 as usize,
                                Message::RangeQuery {
                                    origin,
                                    id,
                                    lo,
                                    hi,
                                    cursor,
                                    hops: hops + 1,
                                },
                            );
                            return;
                        }
                        self.route_cache.remove(&(at, index, level));
                    }
                }
                let mut refs: Vec<PeerId> = self
                    .peer_state(index, at)
                    .routing
                    .level(level)
                    .iter()
                    .map(|e| e.peer)
                    .collect();
                refs.shuffle(&mut self.rng);
                let next = refs
                    .into_iter()
                    .find(|p| self.nodes[p.0 as usize].state.online && self.link_ok(p.0 as usize));
                if let Some(peer) = next {
                    if self.config.route_cache {
                        self.route_cache.insert((at, index, level), peer);
                    }
                    self.tracer
                        .record(trace, "range_hop", at as u64, self.now, || {
                            format!(
                                "id={id} level={level} to={} hop={} cached=false",
                                peer.0,
                                hops + 1
                            )
                        });
                    self.send_on(
                        index,
                        peer.0 as usize,
                        Message::RangeQuery {
                            origin,
                            id,
                            lo,
                            hi,
                            cursor,
                            hops: hops + 1,
                        },
                    );
                    return;
                }
                // No online reference at the required level (a routing-table
                // gap of the emergent overlay).  A lookup would fail here;
                // the range walk instead detours through a random online
                // peer and restarts prefix routing from there, spending a
                // hop against the budget.  Only when the whole population
                // is unreachable does the walk die and the origin time out
                // with whatever slices already arrived.
                let detour: Vec<usize> = self
                    .online_hosted
                    .iter()
                    .copied()
                    .filter(|&p| p != at)
                    .collect();
                if !detour.is_empty() {
                    let peer = detour[self.rng.gen_range(0..detour.len())];
                    self.tracer
                        .record(trace, "range_detour", at as u64, self.now, || {
                            format!("id={id} to={peer} hop={}", hops + 1)
                        });
                    self.send_on(
                        index,
                        peer,
                        Message::RangeQuery {
                            origin,
                            id,
                            lo,
                            hi,
                            cursor,
                            hops: hops + 1,
                        },
                    );
                }
            }
        }
    }

    /// Drops every memoised routing resolution of `peer` on `index`
    /// (no-op while the cache is disabled and therefore empty).
    fn invalidate_route_cache(&mut self, peer: usize, index: IndexId) {
        if self.route_cache.is_empty() {
            return;
        }
        self.route_cache
            .retain(|&(p, idx, _), _| p != peer || idx != index);
    }

    // ----- helpers ---------------------------------------------------------------

    /// Approximates a uniform random peer sample by a short random walk over
    /// the unstructured neighbour lists.
    fn random_contact(&mut self, from: usize) -> Option<usize> {
        let mut current = from;
        for _ in 0..6 {
            let neighbours = &self.nodes[current].neighbours;
            if neighbours.is_empty() {
                break;
            }
            let pick = neighbours[self.rng.gen_range(0..neighbours.len())].0 as usize;
            current = pick;
        }
        if current == from {
            // Fall back to a direct neighbour.
            let neighbours = &self.nodes[from].neighbours;
            if neighbours.is_empty() {
                return None;
            }
            current = neighbours[self.rng.gen_range(0..neighbours.len())].0 as usize;
        }
        (current != from).then_some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_runtime() -> Runtime {
        Runtime::new(NetConfig {
            n_peers: 48,
            seed: 3,
            ..NetConfig::default()
        })
    }

    #[test]
    fn peers_join_and_form_an_unstructured_overlay() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        assert_eq!(rt.online_count(), 48);
        // every peer except the very first has neighbours
        let lonely = rt.nodes.iter().filter(|n| n.neighbours.is_empty()).count();
        assert!(lonely <= 1, "{lonely} peers without neighbours");
    }

    #[test]
    fn construction_builds_a_trie_over_messages() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);
        let max_depth = rt.nodes.iter().map(|n| n.state.path.len()).max().unwrap();
        assert!(max_depth >= 2, "max depth {max_depth}");
        // routing tables stay consistent with paths
        for node in &rt.nodes {
            assert!(node.state.invariants_hold());
        }
        assert!(rt.metrics.messages_delivered > 100);
    }

    #[test]
    fn queries_succeed_after_construction() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);
        // query for existing keys
        let keys: Vec<_> = rt.original_entries.iter().map(|e| e.key).collect();
        for i in 0..100 {
            rt.issue_query(keys[i * 3 % keys.len()]);
            rt.run_until(rt.now() + 2_000);
        }
        rt.run_until(rt.now() + 30_000);
        let stats = rt.metrics.stats(IndexId::PRIMARY);
        assert_eq!(stats.issued, 100);
        assert_eq!(stats.answered + stats.timed_out, 100);
        assert!(
            stats.succeeded >= 85,
            "only {}/100 queries succeeded",
            stats.succeeded
        );
        assert!(
            stats.answered >= 90,
            "only {}/100 queries answered",
            stats.answered
        );
        assert_eq!(stats.latency.total(), stats.answered);
        assert!(stats.latency.p99().is_some());
        // the debug sample ring kept (at most a cap of) resolved queries
        assert_eq!(
            rt.metrics.query_samples.len(),
            100.min(rt.metrics.sample_cap)
        );
    }

    #[test]
    fn sample_ring_is_capped_and_can_be_disabled() {
        let mut rt = Runtime::new(NetConfig {
            n_peers: 16,
            seed: 9,
            query_sample_cap: 8,
            ..NetConfig::default()
        });
        for i in 0..16 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(200_000);
        let keys: Vec<_> = rt.original_entries.iter().map(|e| e.key).collect();
        for i in 0..40 {
            rt.issue_query(keys[i % keys.len()]);
            rt.run_until(rt.now() + 2_000);
        }
        rt.run_until(rt.now() + 30_000);
        assert_eq!(rt.metrics.stats(IndexId::PRIMARY).issued, 40);
        assert_eq!(rt.metrics.query_samples.len(), 8);

        let mut quiet = Runtime::new(NetConfig {
            n_peers: 16,
            seed: 9,
            query_sample_cap: 0,
            ..NetConfig::default()
        });
        for i in 0..16 {
            quiet.join_peer(i, 4);
        }
        quiet.replication_phase();
        quiet.run_until(10_000);
        quiet.start_construction();
        quiet.run_until(200_000);
        let keys: Vec<_> = quiet.original_entries.iter().map(|e| e.key).collect();
        quiet.issue_query(keys[0]);
        quiet.run_until(quiet.now() + 30_000);
        assert_eq!(quiet.metrics.stats(IndexId::PRIMARY).issued, 1);
        assert!(quiet.metrics.query_samples.is_empty());
    }

    #[test]
    fn late_responses_never_flip_a_timeout_verdict() {
        // A 1ms timeout with a 50ms network guarantees every response
        // arrives after its query expired: the timeout verdict must stand
        // and the late response must be counted separately, exactly once.
        let mut rt = Runtime::new(NetConfig {
            n_peers: 2,
            seed: 5,
            query_timeout_ms: 1,
            latency_min_ms: 50,
            latency_max_ms: 60,
            ..NetConfig::default()
        });
        for i in 0..2 {
            rt.join_peer(i, 2);
        }
        rt.replication_phase();
        rt.run_until(5_000);
        rt.start_construction();
        rt.run_until(100_000);
        let key = rt.original_entries[0].key;
        rt.issue_query(key);
        rt.run_until(rt.now() + 10_000);
        let stats = rt.metrics.stats(IndexId::PRIMARY);
        assert_eq!(stats.issued, 1);
        assert_eq!(stats.timed_out, 1, "query must expire before any response");
        assert_eq!(stats.answered, 0);
        assert_eq!(stats.succeeded, 0);
        assert!(
            stats.late_responses >= 1,
            "the post-timeout response must be counted as late"
        );
        assert_eq!(stats.latency.total(), 0);
    }

    #[test]
    fn empty_and_whole_keyspace_ranges_resolve() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);

        // lo > hi: resolves immediately as complete and empty
        let id = rt
            .issue_range_query(Key::MAX, Key::MIN)
            .expect("peers online");
        let empty = rt
            .metrics
            .range_samples
            .iter()
            .find(|s| s.id == id)
            .expect("empty range resolved synchronously");
        assert!(empty.complete);
        assert!(empty.entries.is_empty());

        // whole keyspace: must return every stored key
        let id = rt
            .issue_range_query(Key::MIN, Key::MAX)
            .expect("peers online");
        rt.run_until(rt.now() + rt.config.query_timeout_ms + 60_000);
        let whole = rt
            .metrics
            .range_samples
            .iter()
            .find(|s| s.id == id)
            .expect("whole-keyspace range resolved");
        assert!(whole.complete, "whole-keyspace walk did not cover [0, MAX]");
        let got: Vec<Key> = whole.entries.iter().map(|e| e.key).collect();
        // Completeness guarantee of a replicated overlay: a key that every
        // online replica of its partition stores must be returned (one of
        // those replicas answered its slice).
        for key in certainly_stored_keys(&rt, Key::MIN, Key::MAX) {
            assert!(got.contains(&key), "missing key {key:?}");
        }
        let stats = rt.metrics.stats(IndexId::PRIMARY);
        assert_eq!(stats.ranges_issued, 2);
        assert_eq!(stats.ranges_complete, 2);
    }

    /// Keys of the ground-truth corpus in `[lo, hi]` that *every* online
    /// replica of their partition stores — the set a single-replica-per-slice
    /// range walk is guaranteed to return regardless of which replica
    /// answers each slice.
    fn certainly_stored_keys(rt: &Runtime, lo: Key, hi: Key) -> Vec<Key> {
        let mut keys: Vec<Key> = rt
            .original_entries
            .iter()
            .map(|e| e.key)
            .filter(|k| *k >= lo && *k <= hi)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.retain(|&key| {
            let holders: Vec<_> = rt
                .nodes
                .iter()
                .filter(|n| n.joined && n.state.online && n.state.path.covers(key))
                .collect();
            !holders.is_empty() && holders.iter().all(|n| n.state.store.contains_key(key))
        });
        keys
    }

    mod range_parity {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(6))]

            // Parity against brute force on randomly seeded overlays and
            // random bounds: sound (corpus keys inside the range only) and
            // complete up to the certainty bound (keys every online
            // covering replica stores at issue time).
            #[test]
            fn prop_net_range_matches_brute_force(
                seed in 0u64..1000,
                a in 0.0f64..1.0,
                b in 0.0f64..1.0,
            ) {
                let mut rt = Runtime::new(NetConfig {
                    n_peers: 24,
                    seed,
                    ..NetConfig::default()
                });
                for i in 0..24 {
                    rt.join_peer(i, 4);
                }
                rt.replication_phase();
                rt.run_until(10_000);
                rt.start_construction();
                rt.run_until(250_000);
                let (lo, hi) = (
                    Key::from_fraction(a.min(b)),
                    Key::from_fraction(a.max(b)),
                );
                let certain_pre = certainly_stored_keys(&rt, lo, hi);
                let id = rt.issue_range_query(lo, hi).expect("peers online");
                rt.run_until(rt.now() + rt.config.query_timeout_ms + 60_000);
                let sample = rt
                    .metrics
                    .range_samples
                    .iter()
                    .find(|s| s.id == id)
                    .expect("range resolved");
                prop_assert!(sample.complete, "seed {seed} range incomplete");
                let mut corpus: Vec<Key> =
                    rt.original_entries.iter().map(|e| e.key).collect();
                corpus.sort_unstable();
                corpus.dedup();
                let got: Vec<Key> = sample.entries.iter().map(|e| e.key).collect();
                for key in &got {
                    prop_assert!(*key >= lo && *key <= hi, "{key:?} outside range");
                    prop_assert!(corpus.binary_search(key).is_ok(), "fabricated {key:?}");
                }
                let certain_post = certainly_stored_keys(&rt, lo, hi);
                for key in certain_pre.iter().filter(|k| certain_post.contains(k)) {
                    prop_assert!(got.contains(key), "seed {seed} missing {key:?}");
                }
            }
        }
    }

    #[test]
    fn range_queries_match_brute_force_on_loopback() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);
        let mut corpus: Vec<Key> = rt.original_entries.iter().map(|e| e.key).collect();
        corpus.sort_unstable();
        corpus.dedup();
        for (frac_lo, frac_hi) in [(0.1, 0.3), (0.4, 0.45), (0.0, 0.9), (0.7, 0.71)] {
            let lo = Key::from_fraction(frac_lo);
            let hi = Key::from_fraction(frac_hi);
            // Background anti-entropy keeps mutating stores, so evaluate the
            // completeness oracle at issue time (the state the walk reads)
            // and keep only keys still certain after it resolved.
            let certain_pre = certainly_stored_keys(&rt, lo, hi);
            let id = rt.issue_range_query(lo, hi).expect("peers online");
            rt.run_until(rt.now() + rt.config.query_timeout_ms + 60_000);
            let sample = rt
                .metrics
                .range_samples
                .iter()
                .find(|s| s.id == id)
                .expect("range resolved");
            assert!(sample.complete, "range [{frac_lo}, {frac_hi}] incomplete");
            let got: Vec<Key> = sample.entries.iter().map(|e| e.key).collect();
            // Soundness: every returned key is a corpus key inside the range.
            for key in &got {
                assert!(*key >= lo && *key <= hi, "key {key:?} outside range");
                assert!(corpus.binary_search(key).is_ok(), "fabricated key {key:?}");
            }
            // Completeness: every key all replicas agree on must be present.
            let certain_post = certainly_stored_keys(&rt, lo, hi);
            let certain: Vec<Key> = certain_pre
                .into_iter()
                .filter(|k| certain_post.contains(k))
                .collect();
            for key in &certain {
                assert!(
                    got.contains(key),
                    "range [{frac_lo}, {frac_hi}] missing {key:?}"
                );
            }
            // The walk should not be systematically lossy either: nearly the
            // whole brute-force corpus slice comes back.
            let in_range = corpus.iter().filter(|k| **k >= lo && **k <= hi).count();
            assert!(
                got.len() * 100 >= in_range * 95,
                "range [{frac_lo}, {frac_hi}] returned {}/{in_range}",
                got.len()
            );
        }
    }

    #[test]
    fn route_cache_returns_the_same_results() {
        let run = |route_cache: bool| {
            let mut rt = Runtime::new(NetConfig {
                n_peers: 48,
                seed: 3,
                route_cache,
                ..NetConfig::default()
            });
            for i in 0..48 {
                rt.join_peer(i, 4);
            }
            rt.replication_phase();
            rt.run_until(10_000);
            rt.start_construction();
            rt.run_until(400_000);
            let keys: Vec<_> = rt.original_entries.iter().map(|e| e.key).collect();
            for i in 0..100 {
                rt.issue_query(keys[i * 3 % keys.len()]);
                rt.run_until(rt.now() + 2_000);
            }
            rt.run_until(rt.now() + 30_000);
            rt.metrics.stats(IndexId::PRIMARY)
        };
        let cold = run(false);
        let warm = run(true);
        assert_eq!(cold.issued, warm.issued);
        // The cache changes routing trajectories (no per-hop shuffle), not
        // outcomes: success counts must stay in the same band.
        assert!(
            warm.succeeded >= cold.succeeded.saturating_sub(5),
            "cache degraded success rate: {} vs {}",
            warm.succeeded,
            cold.succeeded
        );
    }

    #[test]
    fn bandwidth_is_accounted_per_class() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(20_000);
        let maintenance: usize = rt
            .metrics
            .bandwidth_per_minute
            .values()
            .map(|b| b.maintenance_bytes)
            .sum();
        assert!(maintenance > 1_000);
        let query: usize = rt
            .metrics
            .bandwidth_per_minute
            .values()
            .map(|b| b.query_bytes)
            .sum();
        assert_eq!(query, 0);
    }

    #[test]
    fn churn_takes_peers_offline_and_back() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.schedule_churn(0, 1_000, 5_000);
        rt.schedule_churn(1, 1_000, 5_000);
        rt.run_until(2_000);
        assert_eq!(rt.online_count(), 46);
        rt.run_until(10_000);
        assert_eq!(rt.online_count(), 48);
    }

    #[test]
    fn lost_messages_are_counted() {
        let mut rt = Runtime::new(NetConfig {
            n_peers: 16,
            loss_probability: 1.0,
            ..NetConfig::default()
        });
        for i in 0..16 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(5_000);
        assert!(rt.metrics.messages_lost > 0);
        assert_eq!(rt.metrics.messages_delivered, 0);
    }

    /// Builds a sharded loopback runtime hosting peers `0..n-1` with the
    /// final peer pre-registered (an endpoint a "dead" worker used to own).
    fn sharded_with_spare(n: usize, seed: u64) -> Runtime {
        let config = NetConfig {
            n_peers: n,
            seed,
            ..NetConfig::default()
        };
        let mut transport = LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: config.latency_min_ms,
            latency_max_ms: config.latency_max_ms,
            seed: config.seed ^ 0x7A4E,
        });
        transport
            .register(PeerId((n - 1) as u64))
            .expect("spare endpoint");
        Runtime::with_transport_sharded(config, transport, 0..n - 1).expect("sharded runtime")
    }

    #[test]
    fn replica_rebuild_restores_exact_keystore() {
        let mut rt = sharded_with_spare(24, 7);
        for i in 0..23 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);

        // Snapshot the live source peer 23 will be rebuilt from.
        let source = 0;
        let want_path = rt.nodes[source].state.path;
        let want_entries: Vec<DataEntry> = rt.nodes[source].state.store.iter().copied().collect();
        let mut want_routing: Vec<(usize, PeerId)> = rt.nodes[source]
            .state
            .routing
            .entries()
            .map(|(level, e)| (level, e.peer))
            .collect();
        want_routing.sort_unstable();
        assert!(!want_entries.is_empty(), "source must hold data");

        rt.adopt_peer(23);
        assert_eq!(rt.adopted_peers(), vec![23]);
        assert!(!rt.nodes[23].state.online, "adopted peer starts offline");
        rt.begin_replica_pull(23, source);
        assert_eq!(rt.pending_recoveries(), 1);
        let deadline = rt.now() + 30_000;
        while rt.pending_recoveries() > 0 && rt.now() < deadline {
            let next = rt.now() + 50;
            rt.run_until(next);
        }
        assert_eq!(rt.pending_recoveries(), 0, "pull must complete");
        assert_eq!(rt.replica_recovered_count(), 1);

        // Exact rebuild: path, every key, and the routing topology match
        // the replica snapshot bit-for-bit.
        let got = &rt.nodes[23].state;
        assert!(got.online);
        assert_eq!(got.path, want_path);
        let got_entries: Vec<DataEntry> = got.store.iter().copied().collect();
        assert_eq!(got_entries, want_entries);
        let mut got_routing: Vec<(usize, PeerId)> = got
            .routing
            .entries()
            .map(|(level, e)| (level, e.peer))
            .collect();
        got_routing.sort_unstable();
        assert_eq!(got_routing, want_routing);
        assert!(
            got.replicas.contains(&PeerId(source as u64)),
            "recovered peer must list its source as a replica"
        );
        assert!(!got.replicas.contains(&PeerId(23)));
        assert!(
            rt.nodes[source].state.replicas.contains(&PeerId(23)),
            "source must adopt the recovered peer as a replica"
        );
        assert_eq!(rt.metrics.peers_adopted, 1);
        assert_eq!(rt.metrics.peers_recovered_replica, 1);
    }

    #[test]
    fn local_recovery_fallback_restores_original_entries() {
        let mut rt = sharded_with_spare(16, 11);
        for i in 0..15 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);

        // No live replica reachable: fall back to the seeded regeneration
        // every process holds (same seed => same original entries).
        let want: Vec<DataEntry> = rt.nodes[15].state.store.iter().copied().collect();
        assert!(!want.is_empty());
        rt.adopt_peer(15);
        let path = rt.nodes[15].state.path;
        rt.recover_locally(15, path);
        assert_eq!(rt.pending_recoveries(), 0);
        assert!(rt.nodes[15].state.online);
        let got: Vec<DataEntry> = rt.nodes[15].state.store.iter().copied().collect();
        assert_eq!(got, want);
        assert_eq!(rt.metrics.peers_recovered_local, 1);
    }

    /// Runs a converged construction and returns (runtime, peer, replica)
    /// where `peer` holds at least two entries and lists `replica`.
    fn converged_with_replica(seed: u64) -> (Runtime, usize, usize) {
        let mut rt = Runtime::new(NetConfig {
            n_peers: 16,
            seed,
            ..NetConfig::default()
        });
        for i in 0..16 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);
        for a in 0..16 {
            let state = &rt.nodes[a].state;
            if state.store.len() >= 2 && !state.path.is_empty() {
                if let Some(r) = state.replicas.first() {
                    let r = r.0 as usize;
                    return (rt, a, r);
                }
            }
        }
        panic!("no converged peer with data and a replica");
    }

    #[test]
    fn warm_restore_then_reconcile_merges_missing_entries() {
        let (mut rt, a, r) = converged_with_replica(9);
        let path = rt.nodes[a].state.path;
        let full: Vec<DataEntry> = rt.nodes[a].state.store.iter().copied().collect();
        let replica_set: std::collections::BTreeSet<DataEntry> =
            rt.nodes[r].state.store.iter().copied().collect();
        // Drop an entry the replica also holds: a stale journal image.
        let dropped = *full
            .iter()
            .find(|e| replica_set.contains(e))
            .expect("replica shares at least one entry");
        let stale: Vec<DataEntry> = full.iter().copied().filter(|e| *e != dropped).collect();
        let routing: Vec<(u8, PeerId, Path)> = rt.nodes[a]
            .state
            .routing
            .entries()
            .map(|(level, e)| (level as u8, e.peer, e.path))
            .collect();
        let replicas = rt.nodes[a].state.replicas.clone();

        rt.restore_peer(
            IndexId::PRIMARY,
            a,
            path,
            stale.clone(),
            routing,
            replicas,
            false,
        );
        assert_eq!(rt.metrics.peers_recovered_warm, 1);
        assert_eq!(rt.nodes[a].state.store.len(), full.len() - 1);
        assert!(rt.nodes[a].state.online);

        rt.begin_replica_diff(a, r);
        assert_eq!(rt.pending_reconciliations(), 1);
        assert_eq!(rt.reconciling_peers(), vec![a]);
        let deadline = rt.now() + 30_000;
        while rt.pending_reconciliations() > 0 && rt.now() < deadline {
            let next = rt.now() + 50;
            rt.run_until(next);
        }
        assert_eq!(rt.pending_reconciliations(), 0, "diff must complete");
        assert_eq!(rt.metrics.peers_reconciled, 1);
        assert!(rt.metrics.reconciled_entries >= 1);
        // Same partition: the replica's answer is merged, not adopted —
        // the dropped entry is back and nothing replayed was lost.
        let got: std::collections::BTreeSet<DataEntry> =
            rt.nodes[a].state.store.iter().copied().collect();
        assert_eq!(rt.nodes[a].state.path, path);
        assert!(got.contains(&dropped), "reconciliation restores the gap");
        for e in &stale {
            assert!(got.contains(e), "merge must not lose replayed entries");
        }
    }

    #[test]
    fn reconcile_adopts_diverged_partition_path() {
        let (mut rt, a, r) = converged_with_replica(13);
        let path = rt.nodes[a].state.path;
        let full: Vec<DataEntry> = rt.nodes[a].state.store.iter().copied().collect();
        let replicas = rt.nodes[a].state.replicas.clone();
        // Journal image from before the partition's last split: one bit
        // shorter than the live replicas' path.
        let mut parent = Path::ROOT;
        for i in 0..path.len() - 1 {
            parent = parent.child(path.bit(i));
        }
        rt.restore_peer(
            IndexId::PRIMARY,
            a,
            parent,
            full.clone(),
            Vec::new(),
            replicas,
            false,
        );
        assert_eq!(rt.nodes[a].state.path, parent);

        rt.begin_replica_diff(a, r);
        let deadline = rt.now() + 30_000;
        while rt.pending_reconciliations() > 0 && rt.now() < deadline {
            let next = rt.now() + 50;
            rt.run_until(next);
        }
        assert_eq!(rt.pending_reconciliations(), 0, "diff must complete");
        assert_eq!(rt.metrics.peers_reconciled, 1);
        // Diverged path: the replica's identity wins; replayed entries it
        // still covers are kept.
        let live_path = rt.nodes[a].state.path;
        assert_eq!(live_path, rt.nodes[r].state.path);
        let got: std::collections::BTreeSet<DataEntry> =
            rt.nodes[a].state.store.iter().copied().collect();
        for e in full.iter().filter(|e| live_path.covers(e.key)) {
            assert!(got.contains(e), "covered replayed entries survive adoption");
        }
    }

    #[test]
    fn link_failures_back_off_then_die_and_revive() {
        let mut rt = small_runtime();
        assert_eq!(rt.link_health(3), LinkHealth::Connected);
        assert!(rt.link_ok(3));

        rt.record_link_failure(3);
        match rt.link_health(3) {
            LinkHealth::Suspect { retry_at, failures } => {
                assert_eq!(failures, 1);
                assert_eq!(retry_at, rt.now() + LINK_SUSPECT_BACKOFF_MS);
            }
            other => panic!("expected Suspect, got {other:?}"),
        }
        assert!(rt.link_ok(3), "suspect links stay query candidates");

        rt.record_link_failure(3);
        match rt.link_health(3) {
            LinkHealth::Suspect { retry_at, failures } => {
                assert_eq!(failures, 2);
                // backoff doubles per consecutive failure
                assert_eq!(retry_at, rt.now() + 2 * LINK_SUSPECT_BACKOFF_MS);
            }
            other => panic!("expected Suspect, got {other:?}"),
        }

        rt.record_link_failure(3);
        assert_eq!(rt.link_health(3), LinkHealth::Dead);
        assert!(!rt.link_ok(3), "dead links are skipped as candidates");
        assert_eq!(rt.metrics.links_suspected, 1);
        assert_eq!(rt.metrics.links_dead, 1);

        rt.revive_link(3);
        assert_eq!(rt.link_health(3), LinkHealth::Connected);
        assert!(rt.link_ok(3));
    }
}
