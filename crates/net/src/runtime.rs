//! Event-driven deployment runtime over a pluggable [`Transport`].
//!
//! Every peer is an isolated state machine that communicates exclusively
//! through encoded [`Message`]s carried as framed batches by a
//! [`pgrid_transport::Transport`] backend.  With the deterministic loopback
//! backend this replaces the paper's PlanetLab testbed (seeded latency and
//! jitter, emulated loss, reproducible experiments); with the TCP backend
//! the very same protocol code paths run over real sockets.  Messages sent
//! to the same destination while one event is processed are batched into a
//! single frame (the per-tick batching of exchange messages) unless
//! [`NetConfig::batch_per_tick`] is disabled.

use crate::message::{ExchangeOutcome, Message};
use bytes::Bytes;
use pgrid_core::exchange::{ExchangeDecision, ExchangeEngine};
use pgrid_core::index::IndexId;
use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::peer::PeerState;
use pgrid_core::reference::BalanceParams;
use pgrid_core::routing::{PeerId, RoutingEntry};
use pgrid_core::store::{KeyStore, StoreRead};
use pgrid_transport::frame;
use pgrid_transport::loopback::{LoopbackConfig, LoopbackTransport};
use pgrid_transport::{PeerAddr, Transport, TransportError, TransportStats};
use pgrid_workload::distributions::Distribution;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Milliseconds of virtual time.
pub type Millis = u64;

/// How many consecutive empty polls a real-time transport may stall the
/// virtual clock while frames are in flight (at 200µs each) before the
/// runtime proceeds anyway.
const MAX_REALTIME_STALLS: u32 = 500;

/// Per-frame payload budget, well below [`frame::MAX_FRAME_BYTES`]: batches
/// whose encoded size would exceed it are split across frames instead of
/// producing a frame the receiver rejects.
const MAX_FRAME_PAYLOAD_BYTES: usize = frame::MAX_FRAME_BYTES / 4;

/// Configuration of the emulated network and protocol constants.
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// Number of peers.
    pub n_peers: usize,
    /// Keys initially held per peer.
    pub keys_per_peer: usize,
    /// Minimum replication factor.
    pub n_min: usize,
    /// Storage bound; `None` uses `keys_per_peer * n_min`.
    pub delta_max: Option<usize>,
    /// Minimum one-way message latency in milliseconds.
    pub latency_min_ms: u64,
    /// Maximum one-way message latency in milliseconds.
    pub latency_max_ms: u64,
    /// Probability that a message is lost in transit.
    pub loss_probability: f64,
    /// Interval between construction ticks of a peer.
    pub construct_interval_ms: u64,
    /// Query timeout (a query unanswered for this long counts as failed).
    pub query_timeout_ms: u64,
    /// Routing table fanout.
    pub routing_fanout: usize,
    /// Random seed.
    pub seed: u64,
    /// The key distribution.
    pub distribution: pgrid_workload::distributions::Distribution,
    /// Whether messages to the same destination produced while one event is
    /// processed are batched into a single frame (on by default; turning it
    /// off sends every message as its own frame, the configuration the
    /// transport bench compares against).
    pub batch_per_tick: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            n_peers: 128,
            keys_per_peer: 10,
            n_min: 5,
            delta_max: None,
            latency_min_ms: 20,
            latency_max_ms: 250,
            loss_probability: 0.01,
            construct_interval_ms: 5_000,
            query_timeout_ms: 20_000,
            routing_fanout: 5,
            seed: 0xBEEF,
            distribution: pgrid_workload::distributions::Distribution::Text {
                vocabulary: 5_000,
                exponent: 1.0,
            },
            batch_per_tick: true,
        }
    }
}

impl NetConfig {
    /// Effective balance parameters.
    pub fn balance_params(&self) -> BalanceParams {
        match self.delta_max {
            Some(d) => BalanceParams::new(d, self.n_min),
            None => BalanceParams::recommended(self.keys_per_peer as f64, self.n_min),
        }
    }
}

/// One peer of the deployment.
#[derive(Clone, Debug)]
pub struct Node {
    /// Overlay state (path, store, routing table, replica list).
    pub state: PeerState,
    /// Unstructured-overlay neighbours (bootstrap contacts).
    pub neighbours: Vec<PeerId>,
    /// Whether the peer participates in construction ticks.
    pub constructing: bool,
    /// Whether a construction tick is currently scheduled.  A tick firing
    /// while the peer is offline ends the chain (`tick_armed` drops to
    /// `false`, matching the paper's reference run, where a returning peer
    /// does not restart maintenance by itself); a later
    /// [`Runtime::start_construction_on`] re-arms dead chains.
    pub tick_armed: bool,
    /// Consecutive fruitless exchanges.
    pub fruitless: u32,
    /// Whether the peer has joined the network at all.
    pub joined: bool,
}

/// Classified bandwidth counters for one time bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BandwidthSample {
    /// Bytes of maintenance traffic (join, replicate, exchange).
    pub maintenance_bytes: usize,
    /// Bytes of query traffic.
    pub query_bytes: usize,
}

/// Record of one issued query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryRecord {
    /// The index the query ran against ([`IndexId::PRIMARY`] unless the
    /// deployment hosts secondary indexes).
    pub index: IndexId,
    /// Virtual time the query was issued.
    pub issued_at: Millis,
    /// Latency in milliseconds (`None` while outstanding or after timeout).
    pub latency_ms: Option<Millis>,
    /// Hops reported by the response.
    pub hops: u32,
    /// Whether the query succeeded.
    pub success: bool,
}

/// Aggregate statistics collected by the runtime.
#[derive(Clone, Debug, Default)]
pub struct NetMetrics {
    /// Bandwidth per one-minute bucket of virtual time.
    pub bandwidth_per_minute: HashMap<u64, BandwidthSample>,
    /// All issued queries.
    pub queries: Vec<QueryRecord>,
    /// Messages lost in transit.
    pub messages_lost: usize,
    /// Messages delivered.
    pub messages_delivered: usize,
    /// Messages dropped because the destination was offline.
    pub messages_to_offline: usize,
    /// Frames or messages that arrived but could not be decoded (wire
    /// corruption or version skew with a remote peer); distinguishes a
    /// broken stream from ordinary loss.
    pub decode_failures: usize,
    /// Frames that carried more than one message (the per-tick batching at
    /// work; always zero with [`NetConfig::batch_per_tick`] disabled).
    pub multi_message_frames: usize,
}

impl NetMetrics {
    /// Renders the runtime counters in the Prometheus text exposition
    /// format (companion to
    /// [`pgrid_transport::TransportStats::metrics_text`]).
    pub fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let queries_answered = self
            .queries
            .iter()
            .filter(|q| q.latency_ms.is_some())
            .count();
        let queries_succeeded = self.queries.iter().filter(|q| q.success).count();
        for (name, help, value) in [
            (
                "pgrid_net_messages_delivered_total",
                "Protocol messages delivered to peers.",
                self.messages_delivered,
            ),
            (
                "pgrid_net_messages_lost_total",
                "Protocol messages lost in transit.",
                self.messages_lost,
            ),
            (
                "pgrid_net_messages_to_offline_total",
                "Messages dropped because the destination was offline.",
                self.messages_to_offline,
            ),
            (
                "pgrid_net_decode_failures_total",
                "Frames or messages that arrived but could not be decoded.",
                self.decode_failures,
            ),
            (
                "pgrid_net_multi_message_frames_total",
                "Frames that carried more than one message.",
                self.multi_message_frames,
            ),
            (
                "pgrid_net_queries_issued_total",
                "Queries issued.",
                self.queries.len(),
            ),
            (
                "pgrid_net_queries_answered_total",
                "Queries answered before their timeout.",
                queries_answered,
            ),
            (
                "pgrid_net_queries_succeeded_total",
                "Queries answered successfully.",
                queries_succeeded,
            ),
            (
                "pgrid_net_maintenance_bytes_total",
                "Bytes of maintenance traffic (join, replicate, exchange).",
                self.bandwidth_per_minute
                    .values()
                    .map(|b| b.maintenance_bytes)
                    .sum(),
            ),
            (
                "pgrid_net_query_bytes_total",
                "Bytes of query traffic.",
                self.bandwidth_per_minute
                    .values()
                    .map(|b| b.query_bytes)
                    .sum(),
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }

    fn account(&mut self, now: Millis, message: &Message) {
        let bucket = now / 60_000;
        let entry = self.bandwidth_per_minute.entry(bucket).or_default();
        let size = message.wire_size();
        if message.is_query_traffic() {
            entry.query_bytes += size;
        } else {
            entry.maintenance_bytes += size;
        }
    }
}

#[derive(Debug)]
enum EventKind {
    ConstructTick { index: IndexId, peer: usize },
    QueryTimeout { query_id: u64 },
    GoOffline { peer: usize },
    GoOnline { peer: usize },
}

/// Overlay state of one *secondary* index hosted by the peer population.
///
/// The peer population, its liveness, its unstructured bootstrap overlay
/// and its transport endpoints are owned by the primary index (the
/// [`Node`] vector); a secondary index only adds the per-peer protocol
/// state that is index-specific — path, store, routing table, replica
/// list — plus its own construction bookkeeping and ground-truth data
/// assignment.
#[derive(Clone, Debug)]
pub struct SecondaryIndex {
    /// The index identifier (never [`IndexId::PRIMARY`]).
    pub id: IndexId,
    /// Per-peer overlay state of this index (index = peer id).  The
    /// `online` flag of these states is unused: liveness is shared and
    /// owned by the primary [`Node`]s.
    pub states: Vec<PeerState>,
    /// The ground-truth data assignment of this index.
    pub original_entries: Vec<DataEntry>,
    /// Whether each peer participates in construction ticks of this index.
    constructing: Vec<bool>,
    /// Whether each peer's tick chain is currently scheduled (see
    /// [`Node::tick_armed`]).
    tick_armed: Vec<bool>,
    /// Consecutive fruitless exchanges per peer on this index.
    fruitless: Vec<u32>,
}

/// Resolves the per-index peer state through disjoint field borrows, so a
/// caller can mutate it while also holding `&mut rng` (the same split the
/// single-index code achieved by naming `self.nodes[..]` directly).
fn index_state_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut PeerState {
    if index.is_primary() {
        &mut nodes[peer].state
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.states[peer]
    }
}

/// Immutable counterpart of [`index_state_mut`].
fn index_state<'a>(
    nodes: &'a [Node],
    secondary: &'a [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a PeerState {
    if index.is_primary() {
        &nodes[peer].state
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &slot.states[peer]
    }
}

/// Per-index fruitless-exchange counter of a peer.
fn index_fruitless_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut u32 {
    if index.is_primary() {
        &mut nodes[peer].fruitless
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.fruitless[peer]
    }
}

/// Read-only counterpart of [`index_fruitless_mut`].
fn index_fruitless(
    nodes: &[Node],
    secondary: &[SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> u32 {
    if index.is_primary() {
        nodes[peer].fruitless
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        slot.fruitless[peer]
    }
}

/// Per-index constructing flag of a peer.
fn index_constructing_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut bool {
    if index.is_primary() {
        &mut nodes[peer].constructing
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.constructing[peer]
    }
}

/// Read-only counterpart of [`index_constructing_mut`].
fn index_constructing(
    nodes: &[Node],
    secondary: &[SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> bool {
    if index.is_primary() {
        nodes[peer].constructing
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        slot.constructing[peer]
    }
}

/// Per-index tick-armed flag of a peer (see [`Node::tick_armed`]).
fn index_tick_armed_mut<'a>(
    nodes: &'a mut [Node],
    secondary: &'a mut [SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> &'a mut bool {
    if index.is_primary() {
        &mut nodes[peer].tick_armed
    } else {
        let slot = secondary
            .iter_mut()
            .find(|s| s.id == index)
            .expect("unregistered index");
        &mut slot.tick_armed[peer]
    }
}

/// Read-only counterpart of [`index_tick_armed_mut`].
fn index_tick_armed(
    nodes: &[Node],
    secondary: &[SecondaryIndex],
    index: IndexId,
    peer: usize,
) -> bool {
    if index.is_primary() {
        nodes[peer].tick_armed
    } else {
        let slot = secondary
            .iter()
            .find(|s| s.id == index)
            .expect("unregistered index");
        slot.tick_armed[peer]
    }
}

struct Event {
    time: Millis,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The deployment runtime: peers, a frame transport and the virtual clock.
///
/// Generic over the [`Transport`] backend; [`Runtime::new`] builds the
/// deterministic loopback deployment (the emulated wide-area network of the
/// paper's experiments), [`Runtime::with_transport`] accepts any backend —
/// in particular [`pgrid_transport::tcp::TcpTransport`] for runs over real
/// sockets.
///
/// A runtime normally hosts every peer of the deployment, but it can also
/// host only a contiguous *shard* of them
/// ([`Runtime::with_transport_sharded`]): peers outside the shard exist as
/// bookkeeping stubs (identity, data assignment, scheduled liveness) whose
/// protocol state lives in another process, reachable through the
/// transport's remote registrations.  That is the substrate of the
/// `pgrid-cluster` multi-process deployment.
pub struct Runtime<T: Transport = LoopbackTransport> {
    /// Configuration.
    pub config: NetConfig,
    /// All peers (index = peer id).
    pub nodes: Vec<Node>,
    /// Collected metrics.
    pub metrics: NetMetrics,
    /// The original entries assigned to peers (ground truth for queries).
    pub original_entries: Vec<DataEntry>,
    /// Secondary indexes hosted by the same peer population (empty unless
    /// [`Runtime::register_index`] was called).
    pub secondary: Vec<SecondaryIndex>,
    engine: ExchangeEngine,
    transport: T,
    addrs: Vec<PeerAddr>,
    /// The contiguous range of peer ids this runtime hosts (all peers in
    /// single-process mode).
    shard: std::ops::Range<usize>,
    /// Per-destination batch buffer, flushed as one frame per destination
    /// after every processed event (BTreeMap so the flush order — and with
    /// it the loss and latency draws — is deterministic).
    pending: BTreeMap<usize, Vec<Message>>,
    queue: BinaryHeap<Reverse<Event>>,
    now: Millis,
    seq: u64,
    next_query_id: u64,
    outstanding_queries: HashMap<u64, usize>,
    rng: StdRng,
}

impl Runtime<LoopbackTransport> {
    /// Creates a runtime over the deterministic loopback transport, with
    /// `n_peers` peers, each pre-loaded with `keys_per_peer` keys from the
    /// configured distribution.  Peers start offline/not-joined; the
    /// experiment driver joins them over time.
    pub fn new(config: NetConfig) -> Runtime<LoopbackTransport> {
        let transport = LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: config.latency_min_ms,
            latency_max_ms: config.latency_max_ms,
            seed: config.seed ^ 0x7A4E,
        });
        Runtime::with_transport(config, transport).expect("loopback registration cannot fail")
    }
}

/// Generates every peer's initial state and the ground-truth entry list.
///
/// This is the exact RNG consumption [`Runtime::with_transport`] performs
/// during construction (`keys_per_peer` draws per peer, in peer order), so
/// any component that needs the deployment's data assignment without a
/// runtime — the cluster coordinator assembling a merged report, every
/// cluster worker building the same stub population — reproduces it by
/// seeding a [`StdRng`] with `config.seed` and calling this.
pub fn generate_peers(config: &NetConfig, rng: &mut StdRng) -> (Vec<Node>, Vec<DataEntry>) {
    let mut nodes = Vec::with_capacity(config.n_peers);
    let mut original_entries = Vec::new();
    for i in 0..config.n_peers {
        let mut state = PeerState::new(PeerId(i as u64), config.routing_fanout);
        for j in 0..config.keys_per_peer {
            let entry = DataEntry::new(
                config.distribution.sample(rng),
                pgrid_core::key::DataId((i * config.keys_per_peer + j) as u64),
            );
            state.store.insert(entry);
            original_entries.push(entry);
        }
        state.online = false;
        nodes.push(Node {
            state,
            neighbours: Vec::new(),
            constructing: false,
            tick_armed: false,
            fruitless: 0,
            joined: false,
        });
    }
    (nodes, original_entries)
}

impl<T: Transport> Runtime<T> {
    /// Creates a runtime over the given transport backend, registering an
    /// endpoint for every peer.
    pub fn with_transport(config: NetConfig, transport: T) -> Result<Runtime<T>, TransportError> {
        let n_peers = config.n_peers;
        Runtime::with_transport_sharded(config, transport, 0..n_peers)
    }

    /// Creates a runtime that hosts only the peers in `shard`.
    ///
    /// Hosted peers get a transport endpoint registered here; every peer
    /// outside the shard must already be reachable through the transport
    /// (e.g. via [`pgrid_transport::tcp::TcpTransport::register_remote`]) —
    /// otherwise this fails with [`TransportError::UnknownPeer`].  All peers
    /// are generated (same seed, same data assignment in every process);
    /// non-hosted ones stay local stubs that only track identity, neighbour
    /// links and scheduled liveness for routing decisions, while their
    /// protocol state lives in the process that hosts them.
    pub fn with_transport_sharded(
        config: NetConfig,
        mut transport: T,
        shard: std::ops::Range<usize>,
    ) -> Result<Runtime<T>, TransportError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let params = config.balance_params();
        let (nodes, original_entries) = generate_peers(&config, &mut rng);
        let mut addrs = Vec::with_capacity(config.n_peers);
        for i in 0..config.n_peers {
            let peer = PeerId(i as u64);
            if let Some(addr) = transport.addr_of(peer) {
                // Already wired: a hosted endpoint the caller registered up
                // front (to publish its address during rendezvous) or a
                // remote registration.
                addrs.push(addr);
            } else if shard.contains(&i) {
                addrs.push(transport.register(peer)?);
            } else {
                return Err(TransportError::UnknownPeer(peer));
            }
        }
        Ok(Runtime {
            config,
            nodes,
            metrics: NetMetrics::default(),
            original_entries,
            secondary: Vec::new(),
            engine: ExchangeEngine::new(params),
            transport,
            addrs,
            shard,
            pending: BTreeMap::new(),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            next_query_id: 0,
            outstanding_queries: HashMap::new(),
            rng,
        })
    }

    /// Balance parameters the exchange engine decides with (derived from
    /// the configuration; the engine owns the single copy).
    pub fn params(&self) -> BalanceParams {
        *self.engine.params()
    }

    // ----- multi-index management --------------------------------------------

    /// Registers a *secondary* index over the same peer population: every
    /// peer receives `keys_per_peer` fresh keys drawn from `distribution`
    /// into a dedicated per-index overlay state (path, store, routing
    /// table), while liveness, bootstrap neighbours and the transport are
    /// shared with the primary index.
    ///
    /// The assignment is drawn from a dedicated RNG stream derived from
    /// the seed and the index id, so registering an index never perturbs
    /// the primary index's random trajectory, and sharded runtimes of the
    /// same deployment reproduce an identical assignment in every process.
    ///
    /// # Panics
    ///
    /// Panics when `id` is the (implicit) primary index or already
    /// registered.
    pub fn register_index(&mut self, id: IndexId, distribution: &Distribution) {
        assert!(
            !id.is_primary(),
            "the primary index is implicit and cannot be registered"
        );
        assert!(!self.has_index_state(id), "{id} is already registered");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x1DE0 ^ ((id.0 as u64) << 20));
        let n = self.config.n_peers;
        let mut states = Vec::with_capacity(n);
        let mut original_entries = Vec::with_capacity(n * self.config.keys_per_peer);
        for i in 0..n {
            let mut state = PeerState::new(PeerId(i as u64), self.config.routing_fanout);
            for j in 0..self.config.keys_per_peer {
                let entry = DataEntry::new(
                    distribution.sample(&mut rng),
                    DataId((i * self.config.keys_per_peer + j) as u64),
                );
                state.store.insert(entry);
                original_entries.push(entry);
            }
            states.push(state);
        }
        self.secondary.push(SecondaryIndex {
            id,
            states,
            original_entries,
            constructing: vec![false; n],
            tick_armed: vec![false; n],
            fruitless: vec![0; n],
        });
    }

    /// Whether `index` is hosted by this runtime (the primary index always
    /// is).
    pub fn has_index_state(&self, index: IndexId) -> bool {
        index.is_primary() || self.secondary.iter().any(|s| s.id == index)
    }

    /// All hosted index ids, primary first.
    pub fn index_ids(&self) -> Vec<IndexId> {
        let mut ids = vec![IndexId::PRIMARY];
        ids.extend(self.secondary.iter().map(|s| s.id));
        ids
    }

    /// The ground-truth data assignment of an index.
    pub fn original_entries_of(&self, index: IndexId) -> &[DataEntry] {
        if index.is_primary() {
            &self.original_entries
        } else {
            let slot = self
                .secondary
                .iter()
                .find(|s| s.id == index)
                .expect("unregistered index");
            &slot.original_entries
        }
    }

    /// The overlay state of `peer` on `index`.
    pub fn peer_state(&self, index: IndexId, peer: usize) -> &PeerState {
        index_state(&self.nodes, &self.secondary, index, peer)
    }

    /// Assigns fresh `keys` to `peer` on `index`: the entries extend the
    /// index's ground truth (continuing its `DataId` numbering) and, when
    /// the peer is hosted here, its local store.  Construction anti-entropy
    /// spreads them to replicas from there (the re-indexing / distribution
    /// shift workload).
    pub fn insert_entries(&mut self, index: IndexId, peer: usize, keys: Vec<Key>) {
        let hosted = self.hosted(peer);
        for key in keys {
            let entry = {
                let originals = if index.is_primary() {
                    &mut self.original_entries
                } else {
                    let slot = self
                        .secondary
                        .iter_mut()
                        .find(|s| s.id == index)
                        .expect("unregistered index");
                    &mut slot.original_entries
                };
                let entry = DataEntry::new(key, DataId(originals.len() as u64));
                originals.push(entry);
                entry
            };
            if hosted {
                index_state_mut(&mut self.nodes, &mut self.secondary, index, peer)
                    .store
                    .insert(entry);
            }
        }
    }

    /// Whether construction has settled: every hosted, online peer whose
    /// tick chain is still live (on any index) has reached the back-off
    /// regime — repeated fruitless exchanges and no local evidence that
    /// its partition still needs splitting.  Dead tick chains (a tick
    /// fired while the peer was offline) do not block quiescence: they do
    /// nothing until re-armed.  `true` when no peer is constructing at
    /// all.
    pub fn construction_quiescent(&self) -> bool {
        for index in self.index_ids() {
            for peer in self.shard.clone() {
                if !self.nodes[peer].joined || !self.nodes[peer].state.online {
                    continue;
                }
                if !index_constructing(&self.nodes, &self.secondary, index, peer)
                    || !index_tick_armed(&self.nodes, &self.secondary, index, peer)
                {
                    continue;
                }
                let fruitless = index_fruitless(&self.nodes, &self.secondary, index, peer);
                let state = index_state(&self.nodes, &self.secondary, index, peer);
                if fruitless < 4 || self.engine.locally_overloaded(state) {
                    return false;
                }
            }
        }
        true
    }

    /// Current virtual time in milliseconds.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Number of peers currently online.
    pub fn online_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.joined && n.state.online)
            .count()
    }

    /// The transport address of a peer.
    pub fn peer_addr(&self, peer: usize) -> PeerAddr {
        self.addrs[peer]
    }

    /// The contiguous range of peer ids hosted by this runtime.
    pub fn shard(&self) -> std::ops::Range<usize> {
        self.shard.clone()
    }

    /// Whether `peer`'s protocol state lives in this runtime (as opposed to
    /// a remote process reachable through the transport).
    pub fn hosted(&self, peer: usize) -> bool {
        self.shard.contains(&peer)
    }

    /// Number of hosted peers currently online.
    pub fn hosted_online_count(&self) -> usize {
        self.shard
            .clone()
            .filter(|&i| self.nodes[i].joined && self.nodes[i].state.online)
            .count()
    }

    /// Drains whatever the transport has produced *right now*, handles the
    /// frames and flushes any responses, without advancing the virtual
    /// clock.  Returns the number of frames handled.
    ///
    /// Real-time backends only need this outside [`Runtime::run_until`]: a
    /// cluster worker parked at a phase barrier keeps calling it so
    /// cross-shard exchanges initiated by slower processes are still
    /// answered while the local timeline waits.
    pub fn service_network(&mut self) -> usize {
        let frames = self.transport.poll(self.now);
        let handled = frames.len();
        for (to, frame_bytes) in frames {
            self.deliver_frame(to, frame_bytes);
        }
        self.flush_pending();
        handled
    }

    /// Frame-level counters of the underlying transport.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    fn schedule(&mut self, time: Millis, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    /// [`Runtime::send`] qualified by an index: primary-index messages go
    /// out unchanged (the single-index wire format), secondary-index ones
    /// are enveloped in [`Message::ForIndex`].
    fn send_on(&mut self, index: IndexId, to: usize, message: Message) {
        if index.is_primary() {
            self.send(to, message);
        } else {
            self.send(
                to,
                Message::ForIndex {
                    index: index.0,
                    inner: Box::new(message),
                },
            );
        }
    }

    /// Queues a message for the next frame to `to`: accounts its bandwidth
    /// and either batches it until the current event finishes or (with
    /// batching disabled) flushes it as a single-message frame right away.
    fn send(&mut self, to: usize, message: Message) {
        self.metrics.account(self.now, &message);
        self.pending.entry(to).or_default().push(message);
        if !self.config.batch_per_tick {
            if let Some(messages) = self.pending.remove(&to) {
                self.flush_frame(to, messages);
            }
        }
    }

    /// Flushes every per-destination batch as one frame each.
    fn flush_pending(&mut self) {
        for (to, messages) in std::mem::take(&mut self.pending) {
            self.flush_frame(to, messages);
        }
    }

    /// Encodes `messages` into frames for `to` and hands them to the
    /// transport.  A batch normally fits one frame; batches that would
    /// exceed the framing bounds (which the receiver rejects as corrupt)
    /// are split across several frames.
    fn flush_frame(&mut self, to: usize, messages: Vec<Message>) {
        let mut chunk: Vec<Bytes> = Vec::with_capacity(messages.len());
        let mut chunk_bytes = 0usize;
        for message in &messages {
            let payload = message.encode();
            if !chunk.is_empty()
                && (chunk.len() >= frame::MAX_BATCH_LEN
                    || chunk_bytes + payload.len() + 4 > MAX_FRAME_PAYLOAD_BYTES)
            {
                let full = std::mem::take(&mut chunk);
                chunk_bytes = 0;
                self.ship_frame(to, full);
            }
            chunk_bytes += payload.len() + 4;
            chunk.push(payload);
        }
        if !chunk.is_empty() {
            self.ship_frame(to, chunk);
        }
    }

    /// Puts one frame on the wire, applying the emulated frame loss.
    fn ship_frame(&mut self, to: usize, payloads: Vec<Bytes>) {
        if self
            .rng
            .gen_bool(self.config.loss_probability.clamp(0.0, 1.0))
        {
            self.metrics.messages_lost += payloads.len();
            return;
        }
        if payloads.len() > 1 {
            self.metrics.multi_message_frames += 1;
        }
        let frame = frame::encode_frame(&payloads);
        if self
            .transport
            .send(self.now, PeerId(to as u64), frame)
            .is_err()
        {
            // A broken connection behaves like loss on the wire.
            self.metrics.messages_lost += payloads.len();
        }
    }

    /// Decodes an arrived frame and handles its messages.
    fn deliver_frame(&mut self, to: PeerId, frame_bytes: Bytes) {
        let to = to.0 as usize;
        // A frame for a peer this runtime does not host can only come from
        // a mis-wired address book; never apply it to a stub.
        if !self.shard.contains(&to) {
            debug_assert!(false, "frame for non-hosted peer {to}");
            self.metrics.decode_failures += 1;
            return;
        }
        let Ok(payloads) = frame::decode_frame(&frame_bytes) else {
            self.metrics.decode_failures += 1;
            return;
        };
        for payload in payloads {
            let Some(message) = Message::decode(payload) else {
                self.metrics.decode_failures += 1;
                continue;
            };
            if !self.nodes[to].state.online {
                self.metrics.messages_to_offline += 1;
                continue;
            }
            self.metrics.messages_delivered += 1;
            self.handle_message(to, message);
        }
    }

    // ----- experiment-facing control actions --------------------------------

    /// Brings a peer online and connects it to `fanout` random already-online
    /// peers (its unstructured-overlay neighbours), as the bootstrap phase of
    /// Section 5.1 does.
    pub fn join_peer(&mut self, peer: usize, fanout: usize) {
        let online: Vec<PeerId> = self
            .nodes
            .iter()
            .filter(|n| n.joined && n.state.online)
            .map(|n| n.state.id)
            .collect();
        let node = &mut self.nodes[peer];
        node.joined = true;
        node.state.online = true;
        let mut neighbours = online;
        neighbours.shuffle(&mut self.rng);
        neighbours.truncate(fanout);
        // Simulate the join handshake traffic.
        if let Some(first) = neighbours.first() {
            let join = Message::Join {
                peer: PeerId(peer as u64),
            };
            self.metrics.account(self.now, &join);
            let ack = Message::JoinAck {
                neighbours: neighbours.clone(),
            };
            self.metrics.account(self.now, &ack);
            let _ = first;
        }
        self.nodes[peer].neighbours = neighbours;
        // Symmetric neighbour links keep the unstructured overlay connected.
        for n in self.nodes[peer].neighbours.clone() {
            let other = n.0 as usize;
            if !self.nodes[other].neighbours.contains(&PeerId(peer as u64)) {
                self.nodes[other].neighbours.push(PeerId(peer as u64));
            }
        }
    }

    /// Brings a peer online with a pre-computed neighbour list instead of a
    /// locally drawn one.
    ///
    /// This is [`Runtime::join_peer`] minus the random selection: the
    /// cluster's join plan fixes every peer's bootstrap contacts up front
    /// (deterministically from the seed) so that all worker processes agree
    /// on the unstructured overlay — including the adjacency of peers they
    /// do not host, which the random-walk contact sampling and query
    /// routing read.  Join handshake bandwidth is only accounted by the
    /// process hosting the joiner.
    pub fn join_peer_with_neighbours(&mut self, peer: usize, neighbours: Vec<PeerId>) {
        let node = &mut self.nodes[peer];
        node.joined = true;
        node.state.online = true;
        if self.shard.contains(&peer) && !neighbours.is_empty() {
            let join = Message::Join {
                peer: PeerId(peer as u64),
            };
            self.metrics.account(self.now, &join);
            let ack = Message::JoinAck {
                neighbours: neighbours.clone(),
            };
            self.metrics.account(self.now, &ack);
        }
        self.nodes[peer].neighbours = neighbours;
        // The same symmetric backlinks as `join_peer`: applied identically
        // in every process, they keep the replicated adjacency consistent.
        for n in self.nodes[peer].neighbours.clone() {
            let other = n.0 as usize;
            if !self.nodes[other].neighbours.contains(&PeerId(peer as u64)) {
                self.nodes[other].neighbours.push(PeerId(peer as u64));
            }
        }
    }

    /// Replicates every online peer's original entries to `n_min` random
    /// neighbours-of-neighbours (the replication phase of the primary
    /// index).
    pub fn replication_phase(&mut self) {
        self.replication_phase_on(IndexId::PRIMARY);
    }

    /// The replication phase of one index.
    pub fn replication_phase_on(&mut self, index: IndexId) {
        let n_min = self.config.n_min;
        for peer in self.shard.clone() {
            if !self.nodes[peer].state.online {
                continue;
            }
            let entries: Vec<DataEntry> = index_state(&self.nodes, &self.secondary, index, peer)
                .store
                .iter()
                .copied()
                .collect();
            for _ in 0..n_min {
                if let Some(target) = self.random_contact(peer) {
                    self.send_on(
                        index,
                        target,
                        Message::Replicate {
                            entries: entries.clone(),
                        },
                    );
                }
            }
            // Flush per source peer: each peer's replica pushes form one
            // frame per destination, so a loss draw drops one source's
            // copies, not a destination's entire replication phase.
            self.flush_pending();
        }
    }

    /// Starts periodic construction ticks on every hosted online peer (the
    /// primary index).
    pub fn start_construction(&mut self) {
        self.start_construction_on(IndexId::PRIMARY);
    }

    /// Starts periodic construction ticks of one index on every hosted
    /// online peer.  Peers whose tick chain is still scheduled are left
    /// alone (re-arming would double their tick rate); peers whose chain
    /// died — a tick fired while they were offline during churn — are
    /// re-armed, so a scenario can re-engage construction after a churn
    /// window (or after [`Runtime::insert_entries`] shifted the data).
    pub fn start_construction_on(&mut self, index: IndexId) {
        for peer in self.shard.clone() {
            if self.nodes[peer].state.online {
                let armed = index_tick_armed_mut(&mut self.nodes, &mut self.secondary, index, peer);
                if *armed {
                    continue;
                }
                *armed = true;
                *index_constructing_mut(&mut self.nodes, &mut self.secondary, index, peer) = true;
                let jitter = self
                    .rng
                    .gen_range(0..self.config.construct_interval_ms.max(1));
                self.schedule(self.now + jitter, EventKind::ConstructTick { index, peer });
            }
        }
    }

    /// Issues a lookup for `key` from a random hosted online peer (the
    /// primary index); the result is recorded in [`NetMetrics::queries`].
    pub fn issue_query(&mut self, key: Key) {
        self.issue_query_on(IndexId::PRIMARY, key);
    }

    /// Issues a lookup for `key` against `index` from a random hosted
    /// online peer.
    pub fn issue_query_on(&mut self, index: IndexId, key: Key) {
        let online: Vec<usize> = self
            .shard
            .clone()
            .filter(|&i| self.nodes[i].joined && self.nodes[i].state.online)
            .collect();
        if online.is_empty() {
            return;
        }
        let origin = online[self.rng.gen_range(0..online.len())];
        let id = self.next_query_id;
        self.next_query_id += 1;
        let record_index = self.metrics.queries.len();
        self.metrics.queries.push(QueryRecord {
            index,
            issued_at: self.now,
            latency_ms: None,
            hops: 0,
            success: false,
        });
        self.outstanding_queries.insert(id, record_index);
        self.schedule(
            self.now + self.config.query_timeout_ms,
            EventKind::QueryTimeout { query_id: id },
        );
        // The origin handles the query locally first (it might be
        // responsible itself); otherwise it forwards it.
        let message = Message::Query {
            origin: PeerId(origin as u64),
            id,
            key,
            hops: 0,
        };
        self.handle_message_on(origin, index, message);
        self.flush_pending();
    }

    /// Takes a peer offline at `at` and brings it back `downtime` later
    /// (the churn pattern of the final experiment phase).
    pub fn schedule_churn(&mut self, peer: usize, at: Millis, downtime: Millis) {
        self.schedule(at, EventKind::GoOffline { peer });
        self.schedule(at + downtime, EventKind::GoOnline { peer });
    }

    /// Advances virtual time to `until`, processing timer events and frame
    /// deliveries in order.
    ///
    /// With a virtual-time transport (loopback) frame arrivals are merged
    /// deterministically with the timer queue.  With a real-time transport
    /// (TCP) arrived frames are always drained first, and while frames are
    /// still in flight the virtual clock briefly waits for the wire instead
    /// of racing ahead (bounded by [`MAX_REALTIME_STALLS`]).
    pub fn run_until(&mut self, until: Millis) {
        self.flush_pending();
        let mut stalls = 0u32;
        loop {
            if self.transport.is_realtime() {
                let frames = self.transport.poll(self.now);
                if !frames.is_empty() {
                    stalls = 0;
                    for (to, frame_bytes) in frames {
                        self.deliver_frame(to, frame_bytes);
                    }
                    self.flush_pending();
                    continue;
                }
                if self.transport.in_flight() > 0 && stalls < MAX_REALTIME_STALLS {
                    stalls += 1;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
            }
            let frame_due = self.transport.next_due().filter(|&t| t <= until);
            let timer_due = self
                .queue
                .peek()
                .map(|Reverse(e)| e.time)
                .filter(|&t| t <= until);
            match (frame_due, timer_due) {
                (Some(f), t) if t.map_or(true, |t| f <= t) => {
                    self.now = self.now.max(f);
                    for (to, frame_bytes) in self.transport.poll(self.now) {
                        self.deliver_frame(to, frame_bytes);
                    }
                    self.flush_pending();
                }
                (_, Some(_)) => {
                    let Reverse(event) = self.queue.pop().expect("peeked above");
                    self.now = event.time.max(self.now);
                    self.dispatch(event.kind);
                    self.flush_pending();
                }
                (_, None) => break,
            }
        }
        self.now = self.now.max(until);
    }

    // ----- event dispatch ----------------------------------------------------

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::ConstructTick { index, peer } => self.construct_tick(index, peer),
            EventKind::QueryTimeout { query_id } => {
                if let Some(record) = self.outstanding_queries.remove(&query_id) {
                    // The record keeps success = false and latency = None.
                    let _ = record;
                }
            }
            EventKind::GoOffline { peer } => {
                self.nodes[peer].state.online = false;
            }
            EventKind::GoOnline { peer } => {
                if self.nodes[peer].joined {
                    self.nodes[peer].state.online = true;
                }
            }
        }
    }

    fn handle_message(&mut self, to: usize, message: Message) {
        match message {
            Message::ForIndex { index, inner } => {
                let index = IndexId(index);
                if !self.has_index_state(index) {
                    // An envelope for an index this runtime never
                    // registered: version skew, not ordinary traffic.
                    self.metrics.decode_failures += 1;
                    return;
                }
                self.handle_message_on(to, index, *inner);
            }
            other => self.handle_message_on(to, IndexId::PRIMARY, other),
        }
    }

    fn handle_message_on(&mut self, to: usize, index: IndexId, message: Message) {
        match message {
            Message::Join { .. } | Message::JoinAck { .. } => {
                // Join traffic is handled synchronously in `join_peer`; these
                // messages only exist for bandwidth accounting.
            }
            Message::Replicate { entries } => {
                index_state_mut(&mut self.nodes, &mut self.secondary, index, to)
                    .store
                    .merge_from(entries);
            }
            Message::Exchange {
                from,
                path,
                entries,
            } => {
                let reply = self.decide_exchange(index, to, from, path, &entries);
                let responder_path = self.peer_state(index, to).path;
                self.send_on(
                    index,
                    from.0 as usize,
                    Message::ExchangeReply {
                        from: PeerId(to as u64),
                        path: responder_path,
                        outcome: reply,
                    },
                );
            }
            Message::ExchangeReply {
                from,
                path,
                outcome,
            } => {
                self.apply_exchange_reply(index, to, from, path, outcome);
            }
            Message::Query {
                origin,
                id,
                key,
                hops,
            } => {
                self.handle_query_message(index, to, origin, id, key, hops);
            }
            Message::QueryResponse {
                id,
                entries,
                hops,
                found,
            } => {
                if let Some(record_index) = self.outstanding_queries.remove(&id) {
                    let record = &mut self.metrics.queries[record_index];
                    record.latency_ms = Some(self.now - record.issued_at);
                    record.hops = hops;
                    record.success = found && !entries.is_empty();
                }
                let _ = to;
            }
            Message::ForIndex { .. } => {
                // Nested envelopes are rejected at decode time; reaching
                // one here means a hand-crafted message — drop it.
                self.metrics.decode_failures += 1;
            }
        }
    }

    // ----- construction protocol ---------------------------------------------

    fn construct_tick(&mut self, index: IndexId, peer: usize) {
        let constructing = index_constructing(&self.nodes, &self.secondary, index, peer);
        if !self.nodes[peer].state.online || !constructing {
            // The chain ends here (no reschedule, as in the paper's
            // reference run); `start_construction_on` can re-arm it.
            *index_tick_armed_mut(&mut self.nodes, &mut self.secondary, index, peer) = false;
            return;
        }
        // Back off after repeated fruitless exchanges unless the local store
        // clearly indicates an overloaded, still splittable partition.  A
        // backed-off peer does not stop entirely: it keeps exchanging at a
        // much lower rate, which provides the background anti-entropy that
        // keeps replicas converged during the operational phase (and shows
        // up as the residual maintenance bandwidth of Figure 8).
        let backing_off = {
            let fruitless = index_fruitless(&self.nodes, &self.secondary, index, peer);
            let state = index_state(&self.nodes, &self.secondary, index, peer);
            fruitless >= 4 && !self.engine.locally_overloaded(state)
        };
        if let Some(target) = self.random_contact(peer) {
            let state = index_state(&self.nodes, &self.secondary, index, peer);
            let entries: Vec<DataEntry> = state
                .store
                .restricted(&state.path)
                .entries()
                .copied()
                .collect();
            let message = Message::Exchange {
                from: PeerId(peer as u64),
                path: state.path,
                entries,
            };
            self.send_on(index, target, message);
        }
        let interval = if backing_off {
            self.config.construct_interval_ms * 10
        } else {
            self.config.construct_interval_ms
        };
        let jitter = self.rng.gen_range(0..interval.max(1));
        self.schedule(
            self.now + interval + jitter,
            EventKind::ConstructTick { index, peer },
        );
    }

    /// The contacted peer's local decision for an exchange (Figure 2).
    ///
    /// The protocol decision — assessment, probabilities and the random
    /// draw — is delegated to the shared [`pgrid_core::exchange`] engine;
    /// this method only translates the resulting [`ExchangeDecision`] into
    /// the wire protocol's [`ExchangeOutcome`] and the responder-side state
    /// transition.
    fn decide_exchange(
        &mut self,
        index: IndexId,
        responder: usize,
        initiator: PeerId,
        initiator_path: Path,
        initiator_entries: &[DataEntry],
    ) -> ExchangeOutcome {
        let responder_path = self.peer_state(index, responder).path;

        if ExchangeEngine::refer_level(&responder_path, &initiator_path).is_some() {
            // Refer the initiator to a peer for its own side, and learn a
            // reference ourselves.
            let level = responder_path.common_prefix_len(&initiator_path);
            index_state_mut(&mut self.nodes, &mut self.secondary, index, responder)
                .learn_reference(initiator, initiator_path, &mut self.rng);
            let referred = {
                let state = index_state(&self.nodes, &self.secondary, index, responder);
                state
                    .routing
                    .level(level)
                    .iter()
                    .map(|e| (e.peer, e.path))
                    .collect::<Vec<_>>()
            };
            return match referred.choose(&mut self.rng) {
                Some(&(peer, path)) if peer != initiator => ExchangeOutcome::Refer { peer, path },
                _ => ExchangeOutcome::Nothing,
            };
        }

        // Work on the shallower of the two paths; the engine decides on
        // behalf of the shallower ("lagging") peer.
        let partition = if responder_path.len() <= initiator_path.len() {
            responder_path
        } else {
            initiator_path
        };
        let initiator_store = KeyStore::from_entries(
            initiator_entries
                .iter()
                .copied()
                .filter(|e| partition.covers(e.key)),
        );
        // Zero-copy view of the responder's partition entries; everything
        // derived from it is computed before the responder's state is
        // mutated.
        let responder_store = index_state(&self.nodes, &self.secondary, index, responder)
            .store
            .restricted(&partition);
        let assessment = self
            .engine
            .assess(&initiator_store, &responder_store, &partition);

        if responder_path.len() == initiator_path.len() {
            // Two undecided peers at the same level.
            let decision =
                self.engine
                    .decide(initiator_path, responder_path, &assessment, &mut self.rng);
            return match decision {
                ExchangeDecision::Replicate => {
                    // Become replicas: hand over what the initiator is
                    // missing, pull what the responder is missing (it
                    // arrived with the request).
                    let to_initiator = responder_store.missing_in(&initiator_store);
                    let to_responder = initiator_store.missing_in(&responder_store);
                    let state =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, responder);
                    if !state.replicas.contains(&initiator) {
                        state.replicas.push(initiator);
                    }
                    state.store.merge_from(to_responder);
                    ExchangeOutcome::Replicate {
                        entries: to_initiator,
                    }
                }
                ExchangeDecision::Split {
                    bit: initiator_bit,
                    balanced: true,
                    ..
                } => {
                    // The responder extends its own path with the
                    // complementary bit and hands over the initiator's side.
                    let responder_bit = !initiator_bit;
                    let handover =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, responder)
                            .split_towards(
                                responder_bit,
                                RoutingEntry {
                                    peer: initiator,
                                    path: partition.child(initiator_bit),
                                },
                                &mut self.rng,
                            );
                    // Keep the initiator's entries that belong to our new
                    // side.
                    let state =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, responder);
                    let own_path = state.path;
                    state.store.merge_from(
                        initiator_entries
                            .iter()
                            .copied()
                            .filter(|e| own_path.covers(e.key)),
                    );
                    ExchangeOutcome::Split {
                        partition,
                        initiator_bit,
                        entries: handover,
                        complement: None,
                    }
                }
                _ => ExchangeOutcome::Nothing,
            };
        }

        if responder_path.len() > initiator_path.len() {
            // The initiator lags behind a peer (us) that has already decided
            // at this level: the engine applies the decided-peer rules
            // (cases 3/4) on its behalf; we ship the entries of its new side.
            let decision =
                self.engine
                    .decide(initiator_path, responder_path, &assessment, &mut self.rng);
            let ExchangeDecision::Split {
                bit: initiator_bit,
                balanced: false,
                ..
            } = decision
            else {
                return ExchangeOutcome::Nothing;
            };
            let responder_bit = responder_path.bit(partition.len());
            // When the initiator joins the responder's own side it needs a
            // reference to the complementary subtree, which the responder has
            // in its routing table for this level.
            let complement = if initiator_bit == responder_bit {
                let refs = index_state(&self.nodes, &self.secondary, index, responder)
                    .routing
                    .level(partition.len());
                match refs.choose(&mut self.rng) {
                    Some(entry) => Some((entry.peer, entry.path)),
                    None => return ExchangeOutcome::Nothing,
                }
            } else {
                None
            };
            let initiator_new_path = partition.child(initiator_bit);
            let handover: Vec<DataEntry> = responder_store
                .entries()
                .copied()
                .filter(|e| initiator_new_path.covers(e.key))
                .collect();
            return ExchangeOutcome::Split {
                partition,
                initiator_bit,
                entries: handover,
                complement,
            };
        }

        // The responder itself lags behind the initiator: catch up locally
        // using the initiator as the already-decided peer.  Only the
        // opposite-side decision can be completed here (it yields the
        // initiator as the routing reference); for the same-side decision we
        // would need one of the initiator's references, so we simply wait for
        // a later exchange.
        let decision =
            self.engine
                .decide(responder_path, initiator_path, &assessment, &mut self.rng);
        let ahead_bit = initiator_path.bit(partition.len());
        match decision {
            ExchangeDecision::Split {
                bit,
                balanced: false,
                ..
            } if bit != ahead_bit => {
                let shipped =
                    index_state_mut(&mut self.nodes, &mut self.secondary, index, responder)
                        .split_towards(
                            bit,
                            RoutingEntry {
                                peer: initiator,
                                path: initiator_path,
                            },
                            &mut self.rng,
                        );
                // The shipped entries belong to the initiator's half of the
                // partition; hand them over with the reply.
                ExchangeOutcome::Replicate { entries: shipped }
            }
            _ => ExchangeOutcome::Nothing,
        }
    }

    /// The initiator applies the responder's decision.
    fn apply_exchange_reply(
        &mut self,
        index: IndexId,
        initiator: usize,
        responder: PeerId,
        responder_path: Path,
        outcome: ExchangeOutcome,
    ) {
        // Always learn a routing reference from the encounter if possible.
        index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator).learn_reference(
            responder,
            responder_path,
            &mut self.rng,
        );
        match outcome {
            ExchangeOutcome::Nothing => {
                *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) += 1;
            }
            ExchangeOutcome::Refer { peer, path } => {
                index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator)
                    .learn_reference(peer, path, &mut self.rng);
                *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) += 1;
            }
            ExchangeOutcome::Replicate { entries } => {
                let added = {
                    let state =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator);
                    let added = state.store.merge_from(entries);
                    if !state.replicas.contains(&responder) {
                        state.replicas.push(responder);
                    }
                    added
                };
                let fruitless =
                    index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator);
                if added == 0 {
                    *fruitless += 1;
                } else {
                    *fruitless = 0;
                }
            }
            ExchangeOutcome::Split {
                partition,
                initiator_bit,
                entries,
                complement,
            } => {
                let node_path = self.peer_state(index, initiator).path;
                // The decision applies to the partition the responder saw in
                // the request; if the initiator has moved on in the meantime
                // (a concurrent exchange extended its path) the reply is
                // stale and must be ignored.
                if node_path == partition {
                    // Reference for the complementary subtree: the responder
                    // itself when we took the opposite side, otherwise the
                    // complement peer it referred us to.
                    let reference = match complement {
                        Some((peer, path)) => RoutingEntry { peer, path },
                        None => RoutingEntry {
                            peer: responder,
                            path: if responder_path.len() > node_path.len() {
                                responder_path
                            } else {
                                node_path.child(!initiator_bit)
                            },
                        },
                    };
                    let shipped =
                        index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator)
                            .split_towards(initiator_bit, reference, &mut self.rng);
                    index_state_mut(&mut self.nodes, &mut self.secondary, index, initiator)
                        .store
                        .merge_from(entries);
                    // Hand the entries of the other side back to the
                    // responder (content exchange).
                    if !shipped.is_empty() {
                        self.send_on(
                            index,
                            responder.0 as usize,
                            Message::Replicate { entries: shipped },
                        );
                    }
                    *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) =
                        0;
                } else {
                    *index_fruitless_mut(&mut self.nodes, &mut self.secondary, index, initiator) +=
                        1;
                }
            }
        }
    }

    // ----- query routing -------------------------------------------------------

    fn handle_query_message(
        &mut self,
        index: IndexId,
        at: usize,
        origin: PeerId,
        id: u64,
        key: Key,
        hops: u32,
    ) {
        let path = self.peer_state(index, at).path;
        let mismatch = (0..path.len()).find(|&i| path.bit(i) != key.bit(i));
        match mismatch {
            None => {
                // Responsible peer: answer directly to the origin.  If this
                // replica happens to miss the entry (it may still be in
                // transit from the construction phase), try an online
                // replica of the same partition before giving up — that is
                // exactly what the structural replication is for.
                let entries: Vec<DataEntry> = self
                    .peer_state(index, at)
                    .store
                    .range(key, key)
                    .copied()
                    .collect();
                if entries.is_empty() && (hops as usize) < pgrid_core::search::MAX_HOPS {
                    // Liveness is shared across indexes: the primary node
                    // state is the failure detector for all of them.
                    let replicas: Vec<PeerId> = self.peer_state(index, at).replicas.clone();
                    let next = replicas
                        .iter()
                        .copied()
                        .find(|p| p.0 as usize != at && self.nodes[p.0 as usize].state.online);
                    if let Some(peer) = next {
                        self.send_on(
                            index,
                            peer.0 as usize,
                            Message::Query {
                                origin,
                                id,
                                key,
                                hops: hops + 1,
                            },
                        );
                        return;
                    }
                }
                let found = !entries.is_empty();
                self.send_on(
                    index,
                    origin.0 as usize,
                    Message::QueryResponse {
                        id,
                        entries,
                        hops,
                        found,
                    },
                );
            }
            Some(level) => {
                // Forward to an online reference at the mismatch level;
                // offline targets are detected (failed connection) and an
                // alternative is tried, as a socket implementation would.
                let mut refs: Vec<PeerId> = self
                    .peer_state(index, at)
                    .routing
                    .level(level)
                    .iter()
                    .map(|e| e.peer)
                    .collect();
                refs.shuffle(&mut self.rng);
                let next = refs
                    .into_iter()
                    .find(|p| self.nodes[p.0 as usize].state.online);
                match next {
                    Some(peer) => {
                        if hops as usize > pgrid_core::search::MAX_HOPS {
                            self.send_on(
                                index,
                                origin.0 as usize,
                                Message::QueryResponse {
                                    id,
                                    entries: Vec::new(),
                                    hops,
                                    found: false,
                                },
                            );
                            return;
                        }
                        self.send_on(
                            index,
                            peer.0 as usize,
                            Message::Query {
                                origin,
                                id,
                                key,
                                hops: hops + 1,
                            },
                        );
                    }
                    None => {
                        self.send_on(
                            index,
                            origin.0 as usize,
                            Message::QueryResponse {
                                id,
                                entries: Vec::new(),
                                hops,
                                found: false,
                            },
                        );
                    }
                }
            }
        }
    }

    // ----- helpers ---------------------------------------------------------------

    /// Approximates a uniform random peer sample by a short random walk over
    /// the unstructured neighbour lists.
    fn random_contact(&mut self, from: usize) -> Option<usize> {
        let mut current = from;
        for _ in 0..6 {
            let neighbours = &self.nodes[current].neighbours;
            if neighbours.is_empty() {
                break;
            }
            let pick = neighbours[self.rng.gen_range(0..neighbours.len())].0 as usize;
            current = pick;
        }
        if current == from {
            // Fall back to a direct neighbour.
            let neighbours = &self.nodes[from].neighbours;
            if neighbours.is_empty() {
                return None;
            }
            current = neighbours[self.rng.gen_range(0..neighbours.len())].0 as usize;
        }
        (current != from).then_some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_runtime() -> Runtime {
        Runtime::new(NetConfig {
            n_peers: 48,
            seed: 3,
            ..NetConfig::default()
        })
    }

    #[test]
    fn peers_join_and_form_an_unstructured_overlay() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        assert_eq!(rt.online_count(), 48);
        // every peer except the very first has neighbours
        let lonely = rt.nodes.iter().filter(|n| n.neighbours.is_empty()).count();
        assert!(lonely <= 1, "{lonely} peers without neighbours");
    }

    #[test]
    fn construction_builds_a_trie_over_messages() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);
        let max_depth = rt.nodes.iter().map(|n| n.state.path.len()).max().unwrap();
        assert!(max_depth >= 2, "max depth {max_depth}");
        // routing tables stay consistent with paths
        for node in &rt.nodes {
            assert!(node.state.invariants_hold());
        }
        assert!(rt.metrics.messages_delivered > 100);
    }

    #[test]
    fn queries_succeed_after_construction() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(10_000);
        rt.start_construction();
        rt.run_until(400_000);
        // query for existing keys
        let keys: Vec<_> = rt.original_entries.iter().map(|e| e.key).collect();
        for i in 0..100 {
            rt.issue_query(keys[i * 3 % keys.len()]);
            rt.run_until(rt.now() + 2_000);
        }
        rt.run_until(rt.now() + 30_000);
        let done: Vec<_> = rt.metrics.queries.iter().collect();
        assert_eq!(done.len(), 100);
        let successes = done.iter().filter(|q| q.success).count();
        assert!(successes >= 85, "only {successes}/100 queries succeeded");
        let answered = done.iter().filter(|q| q.latency_ms.is_some()).count();
        assert!(answered >= 90, "only {answered}/100 queries answered");
    }

    #[test]
    fn bandwidth_is_accounted_per_class() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(20_000);
        let maintenance: usize = rt
            .metrics
            .bandwidth_per_minute
            .values()
            .map(|b| b.maintenance_bytes)
            .sum();
        assert!(maintenance > 1_000);
        let query: usize = rt
            .metrics
            .bandwidth_per_minute
            .values()
            .map(|b| b.query_bytes)
            .sum();
        assert_eq!(query, 0);
    }

    #[test]
    fn churn_takes_peers_offline_and_back() {
        let mut rt = small_runtime();
        for i in 0..48 {
            rt.join_peer(i, 4);
        }
        rt.schedule_churn(0, 1_000, 5_000);
        rt.schedule_churn(1, 1_000, 5_000);
        rt.run_until(2_000);
        assert_eq!(rt.online_count(), 46);
        rt.run_until(10_000);
        assert_eq!(rt.online_count(), 48);
    }

    #[test]
    fn lost_messages_are_counted() {
        let mut rt = Runtime::new(NetConfig {
            n_peers: 16,
            loss_probability: 1.0,
            ..NetConfig::default()
        });
        for i in 0..16 {
            rt.join_peer(i, 4);
        }
        rt.replication_phase();
        rt.run_until(5_000);
        assert!(rt.metrics.messages_lost > 0);
        assert_eq!(rt.metrics.messages_delivered, 0);
    }
}
