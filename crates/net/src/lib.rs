//! # pgrid-net
//!
//! Message-level deployment runtime for the reproduction of *"Indexing
//! data-oriented overlay networks"* (VLDB 2005).
//!
//! Whereas `pgrid-sim` drives peer state directly (for fast, large
//! parameter sweeps), this crate makes peers communicate exclusively through
//! an encoded wire protocol carried by a pluggable [`pgrid_transport`]
//! backend: the deterministic loopback transport emulates the wide-area
//! network (latency, jitter, frame loss) as a substitute for the paper's
//! PlanetLab deployment, while the TCP backend runs the same protocol over
//! real sockets.  The [`experiment`] module reproduces the timeline of
//! Section 5 (join → replicate → construct → query → churn) and produces the
//! time series behind Figures 7, 8 and 9 plus the summary statistics of
//! Section 5.2.
//!
//! ```
//! use pgrid_net::prelude::*;
//!
//! let mut runtime = Runtime::new(NetConfig { n_peers: 16, ..NetConfig::default() });
//! for peer in 0..16 {
//!     runtime.join_peer(peer, 4);
//! }
//! assert_eq!(runtime.online_count(), 16);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod message;
pub mod runtime;

/// Lower bound on the balanced-split probability.
#[deprecated(note = "moved to pgrid_core::exchange::MIN_BALANCED_SPLIT_PROBABILITY")]
pub const MIN_BALANCED_SPLIT_PROBABILITY: f64 =
    pgrid_core::exchange::MIN_BALANCED_SPLIT_PROBABILITY;

/// Convenient re-exports of the most frequently used items.
///
/// The deployment *drivers* (`run_deployment`, `run_deployment_with`) are
/// re-exported by `pgrid_scenario::prelude` instead: the scenario-driven
/// versions are the public path (bit-identical to the direct ones kept in
/// [`experiment`] as the parity reference).
pub mod prelude {
    pub use crate::experiment::{
        assemble_report, DeploymentReport, MinuteSample, ReportInputs, Timeline,
    };
    pub use crate::message::{ExchangeOutcome, Message};
    pub use crate::runtime::{
        BandwidthSample, NetConfig, NetMetrics, Node, QueryRecord, Runtime, SecondaryIndex,
    };
}
