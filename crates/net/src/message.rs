//! Wire protocol of the deployment runtime.
//!
//! Peers only communicate through these messages; the encoded size of every
//! message is what the bandwidth accounting of the Figure 8 experiment
//! measures.  The codec is a simple hand-rolled binary format over
//! [`bytes`]: self-describing enough for tests, compact enough that the
//! byte counts are meaningful.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pgrid_core::key::{DataEntry, DataId, Key};
use pgrid_core::path::Path;
use pgrid_core::routing::PeerId;

/// A protocol message exchanged between peers.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// A joining peer announces itself to the bootstrap peer.
    Join {
        /// The joining peer.
        peer: PeerId,
    },
    /// The bootstrap peer's answer: a sample of already known peers that the
    /// joiner can use as its unstructured-overlay neighbours.
    JoinAck {
        /// Known peers.
        neighbours: Vec<PeerId>,
    },
    /// Replication-phase push of a peer's original entries to a random peer.
    Replicate {
        /// The entries to store redundantly.
        entries: Vec<DataEntry>,
    },
    /// Construction interaction request: the initiator presents its path and
    /// the entries of its current partition so the contacted peer can take a
    /// local decision (split / replicate / refer).
    Exchange {
        /// Initiator's identifier.
        from: PeerId,
        /// Initiator's current path.
        path: Path,
        /// Initiator's entries restricted to its current partition.
        entries: Vec<DataEntry>,
    },
    /// Reply to [`Message::Exchange`].
    ExchangeReply {
        /// Responder's identifier.
        from: PeerId,
        /// Responder's path at the time of the reply.
        path: Path,
        /// The decision taken.
        outcome: ExchangeOutcome,
    },
    /// Key lookup travelling through the overlay.
    Query {
        /// Peer that issued the query (receives the response directly).
        origin: PeerId,
        /// Query identifier for latency bookkeeping at the origin.
        id: u64,
        /// The requested key.
        key: Key,
        /// Hops taken so far.
        hops: u32,
    },
    /// Answer to a [`Message::Query`], sent directly to the origin.
    QueryResponse {
        /// Query identifier.
        id: u64,
        /// Entries with the requested key held by the responsible peer.
        entries: Vec<DataEntry>,
        /// Total forwarding hops the query took.
        hops: u32,
        /// Whether a responsible peer was reached.
        found: bool,
    },
    /// Order-preserving range query travelling through the overlay.
    ///
    /// The walk is a cursor-based trie traversal: the query routes towards
    /// `cursor`, the responsible peer answers the slice of `[lo, hi]` its
    /// partition covers (a [`Message::RangeResponse`] straight back to the
    /// origin) and forwards the query with the cursor advanced past its
    /// partition's upper bound.  The origin declares the range complete
    /// once the returned slices cover `[lo, hi]`.
    RangeQuery {
        /// Peer that issued the range query (receives every response).
        origin: PeerId,
        /// Query identifier for coverage bookkeeping at the origin.
        id: u64,
        /// Inclusive lower bound of the requested range.
        lo: Key,
        /// Inclusive upper bound of the requested range.
        hi: Key,
        /// Routing target: the smallest key not yet covered by a response.
        cursor: Key,
        /// Hops taken so far (across the whole walk).
        hops: u32,
    },
    /// One responsible peer's slice of a [`Message::RangeQuery`], sent
    /// directly to the origin.
    RangeResponse {
        /// Query identifier.
        id: u64,
        /// Lower bound (inclusive) of the key interval this response
        /// covers (the cursor the responsible peer was reached with).
        from: Key,
        /// Upper bound (inclusive) of the key interval this response
        /// covers; the origin merges `[from, upto]` into its coverage.
        upto: Key,
        /// Entries of the responsible peer falling inside the covered
        /// interval.
        entries: Vec<DataEntry>,
        /// Hops the walk had taken when this slice was answered.
        hops: u32,
    },
    /// Envelope routing `inner` to a *secondary* index hosted by the same
    /// peer population (see [`pgrid_core::index::IndexId`]).
    ///
    /// Primary-index traffic is never enveloped, so the byte stream of a
    /// single-index deployment is unchanged by the multi-index extension.
    /// Envelopes do not nest: a `ForIndex` inside a `ForIndex` is rejected
    /// at decode time.
    ForIndex {
        /// The secondary index the inner message belongs to (non-zero).
        index: u16,
        /// The enveloped protocol message.
        inner: Box<Message>,
    },
    /// Outermost envelope carrying the trace ID of a traced lookup, so a
    /// query's hop chain can be reassembled across peers (and across
    /// cluster worker processes).
    ///
    /// Only emitted while tracing is enabled and the runtime is handling
    /// a traced query — trace ID `0` means "not traced" and is never put
    /// on the wire, so a tracing-disabled run produces byte-identical
    /// frames.  `Traced` is strictly the outermost envelope: it may wrap
    /// a [`Message::ForIndex`], never another `Traced`.
    Traced {
        /// The trace the inner message belongs to (non-zero).
        trace_id: u64,
        /// The enveloped protocol message.
        inner: Box<Message>,
    },
    /// Recovery request: a peer rebuilt after a worker failure asks a live
    /// replica of its partition for a state snapshot.  This is the wire
    /// half of the paper's availability argument — the replication factor
    /// is what makes the lost state recoverable at all.
    ReplicaPull {
        /// The recovering peer (receives the [`Message::ReplicaPush`]).
        origin: PeerId,
    },
    /// Reply to [`Message::ReplicaPull`]: a full snapshot of the replica's
    /// partition — path, key-store entries, and routing references — from
    /// which the recovering peer rebuilds its `KeyStore` and routing table.
    ReplicaPush {
        /// The replica's current path (adopted by the recovering peer).
        path: Path,
        /// Every entry of the replica's key store.
        entries: Vec<DataEntry>,
        /// Flattened routing references as `(level, peer, path)`.
        routing: Vec<(u8, PeerId, Path)>,
        /// Peers the replica believes share its partition.
        replicas: Vec<PeerId>,
    },
}

/// Decision taken by the contacted peer of an [`Message::Exchange`].
#[derive(Clone, Debug, PartialEq)]
pub enum ExchangeOutcome {
    /// Split the common partition: the initiator takes `initiator_bit`, the
    /// responder the complement; `entries` are the responder's entries that
    /// now belong to the initiator's side.
    Split {
        /// The partition (path) the split decision applies to; the initiator
        /// only acts on the reply if this is still its current path, which
        /// protects against stale replies racing with concurrent exchanges.
        partition: Path,
        /// The bit the initiator extends its path with.
        initiator_bit: bool,
        /// Entries handed over to the initiator.
        entries: Vec<DataEntry>,
        /// A peer responsible for the complementary side, for the
        /// initiator's routing table when it joins the responder's own side
        /// (when the initiator takes the opposite side the responder itself
        /// is the reference and this is `None`).
        complement: Option<(PeerId, Path)>,
    },
    /// Become replicas: `entries` are the entries the initiator was missing.
    Replicate {
        /// Entries handed to the initiator.
        entries: Vec<DataEntry>,
    },
    /// The peers belong to different partitions: the responder refers the
    /// initiator to a peer closer to its partition.
    Refer {
        /// The referred peer.
        peer: PeerId,
        /// That peer's path as known by the responder.
        path: Path,
    },
    /// Nothing useful could be done.
    Nothing,
}

impl Message {
    /// Encodes the message into a byte buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the encoding to an existing buffer (used by the envelope so
    /// wrapping never buffers the inner message twice).
    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            Message::Join { peer } => {
                buf.put_u8(0);
                buf.put_u64(peer.0);
            }
            Message::JoinAck { neighbours } => {
                buf.put_u8(1);
                buf.put_u32(neighbours.len() as u32);
                for n in neighbours {
                    buf.put_u64(n.0);
                }
            }
            Message::Replicate { entries } => {
                buf.put_u8(2);
                put_entries(buf, entries);
            }
            Message::Exchange {
                from,
                path,
                entries,
            } => {
                buf.put_u8(3);
                buf.put_u64(from.0);
                put_path(buf, path);
                put_entries(buf, entries);
            }
            Message::ExchangeReply {
                from,
                path,
                outcome,
            } => {
                buf.put_u8(4);
                buf.put_u64(from.0);
                put_path(buf, path);
                match outcome {
                    ExchangeOutcome::Split {
                        partition,
                        initiator_bit,
                        entries,
                        complement,
                    } => {
                        buf.put_u8(0);
                        put_path(buf, partition);
                        buf.put_u8(*initiator_bit as u8);
                        put_entries(buf, entries);
                        match complement {
                            Some((peer, path)) => {
                                buf.put_u8(1);
                                buf.put_u64(peer.0);
                                put_path(buf, path);
                            }
                            None => buf.put_u8(0),
                        }
                    }
                    ExchangeOutcome::Replicate { entries } => {
                        buf.put_u8(1);
                        put_entries(buf, entries);
                    }
                    ExchangeOutcome::Refer { peer, path } => {
                        buf.put_u8(2);
                        buf.put_u64(peer.0);
                        put_path(buf, path);
                    }
                    ExchangeOutcome::Nothing => buf.put_u8(3),
                }
            }
            Message::Query {
                origin,
                id,
                key,
                hops,
            } => {
                buf.put_u8(5);
                buf.put_u64(origin.0);
                buf.put_u64(*id);
                buf.put_u64(key.0);
                buf.put_u32(*hops);
            }
            Message::QueryResponse {
                id,
                entries,
                hops,
                found,
            } => {
                buf.put_u8(6);
                buf.put_u64(*id);
                put_entries(buf, entries);
                buf.put_u32(*hops);
                buf.put_u8(*found as u8);
            }
            Message::RangeQuery {
                origin,
                id,
                lo,
                hi,
                cursor,
                hops,
            } => {
                buf.put_u8(8);
                buf.put_u64(origin.0);
                buf.put_u64(*id);
                buf.put_u64(lo.0);
                buf.put_u64(hi.0);
                buf.put_u64(cursor.0);
                buf.put_u32(*hops);
            }
            Message::RangeResponse {
                id,
                from,
                upto,
                entries,
                hops,
            } => {
                buf.put_u8(9);
                buf.put_u64(*id);
                buf.put_u64(from.0);
                buf.put_u64(upto.0);
                put_entries(buf, entries);
                buf.put_u32(*hops);
            }
            Message::ForIndex { index, inner } => {
                debug_assert!(
                    !matches!(**inner, Message::ForIndex { .. } | Message::Traced { .. }),
                    "index envelopes do not nest"
                );
                buf.put_u8(7);
                buf.put_u16(*index);
                inner.encode_into(buf);
            }
            Message::Traced { trace_id, inner } => {
                debug_assert!(
                    !matches!(**inner, Message::Traced { .. }),
                    "trace envelopes do not nest"
                );
                debug_assert!(*trace_id != 0, "trace id 0 is never enveloped");
                buf.put_u8(10);
                buf.put_u64(*trace_id);
                inner.encode_into(buf);
            }
            Message::ReplicaPull { origin } => {
                buf.put_u8(11);
                buf.put_u64(origin.0);
            }
            Message::ReplicaPush {
                path,
                entries,
                routing,
                replicas,
            } => {
                buf.put_u8(12);
                put_path(buf, path);
                put_entries(buf, entries);
                buf.put_u32(routing.len() as u32);
                for (level, peer, path) in routing {
                    buf.put_u8(*level);
                    buf.put_u64(peer.0);
                    put_path(buf, path);
                }
                buf.put_u32(replicas.len() as u32);
                for r in replicas {
                    buf.put_u64(r.0);
                }
            }
        }
    }

    /// Decodes a message previously produced by [`Message::encode`].
    ///
    /// Returns `None` for malformed input.
    pub fn decode(mut data: Bytes) -> Option<Message> {
        if data.remaining() < 1 {
            return None;
        }
        let tag = data.get_u8();
        Some(match tag {
            0 => Message::Join {
                peer: PeerId(checked_u64(&mut data)?),
            },
            1 => {
                let n = checked_u32(&mut data)? as usize;
                let mut neighbours = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    neighbours.push(PeerId(checked_u64(&mut data)?));
                }
                Message::JoinAck { neighbours }
            }
            2 => Message::Replicate {
                entries: get_entries(&mut data)?,
            },
            3 => Message::Exchange {
                from: PeerId(checked_u64(&mut data)?),
                path: get_path(&mut data)?,
                entries: get_entries(&mut data)?,
            },
            4 => {
                let from = PeerId(checked_u64(&mut data)?);
                let path = get_path(&mut data)?;
                let outcome_tag = if data.remaining() >= 1 {
                    data.get_u8()
                } else {
                    return None;
                };
                let outcome = match outcome_tag {
                    0 => {
                        let partition = get_path(&mut data)?;
                        let initiator_bit = checked_u8(&mut data)? != 0;
                        let entries = get_entries(&mut data)?;
                        let complement = if checked_u8(&mut data)? != 0 {
                            Some((PeerId(checked_u64(&mut data)?), get_path(&mut data)?))
                        } else {
                            None
                        };
                        ExchangeOutcome::Split {
                            partition,
                            initiator_bit,
                            entries,
                            complement,
                        }
                    }
                    1 => ExchangeOutcome::Replicate {
                        entries: get_entries(&mut data)?,
                    },
                    2 => ExchangeOutcome::Refer {
                        peer: PeerId(checked_u64(&mut data)?),
                        path: get_path(&mut data)?,
                    },
                    3 => ExchangeOutcome::Nothing,
                    _ => return None,
                };
                Message::ExchangeReply {
                    from,
                    path,
                    outcome,
                }
            }
            5 => Message::Query {
                origin: PeerId(checked_u64(&mut data)?),
                id: checked_u64(&mut data)?,
                key: Key(checked_u64(&mut data)?),
                hops: checked_u32(&mut data)?,
            },
            6 => Message::QueryResponse {
                id: checked_u64(&mut data)?,
                entries: get_entries(&mut data)?,
                hops: checked_u32(&mut data)?,
                found: checked_u8(&mut data)? != 0,
            },
            8 => Message::RangeQuery {
                origin: PeerId(checked_u64(&mut data)?),
                id: checked_u64(&mut data)?,
                lo: Key(checked_u64(&mut data)?),
                hi: Key(checked_u64(&mut data)?),
                cursor: Key(checked_u64(&mut data)?),
                hops: checked_u32(&mut data)?,
            },
            9 => Message::RangeResponse {
                id: checked_u64(&mut data)?,
                from: Key(checked_u64(&mut data)?),
                upto: Key(checked_u64(&mut data)?),
                entries: get_entries(&mut data)?,
                hops: checked_u32(&mut data)?,
            },
            7 => {
                let index = checked_u16(&mut data)?;
                let inner = Message::decode(data)?;
                // Envelopes carry a non-zero index and never nest; a trace
                // envelope is strictly outermost so it cannot appear here.
                if index == 0 || matches!(inner, Message::ForIndex { .. } | Message::Traced { .. })
                {
                    return None;
                }
                Message::ForIndex {
                    index,
                    inner: Box::new(inner),
                }
            }
            10 => {
                let trace_id = checked_u64(&mut data)?;
                let inner = Message::decode(data)?;
                // Trace envelopes carry a non-zero ID and never nest.
                if trace_id == 0 || matches!(inner, Message::Traced { .. }) {
                    return None;
                }
                Message::Traced {
                    trace_id,
                    inner: Box::new(inner),
                }
            }
            11 => Message::ReplicaPull {
                origin: PeerId(checked_u64(&mut data)?),
            },
            12 => {
                let path = get_path(&mut data)?;
                let entries = get_entries(&mut data)?;
                let n = checked_u32(&mut data)? as usize;
                if n > 65_536 {
                    return None;
                }
                let mut routing = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let level = checked_u8(&mut data)?;
                    let peer = PeerId(checked_u64(&mut data)?);
                    let path = get_path(&mut data)?;
                    routing.push((level, peer, path));
                }
                let n = checked_u32(&mut data)? as usize;
                if n > 65_536 {
                    return None;
                }
                let mut replicas = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    replicas.push(PeerId(checked_u64(&mut data)?));
                }
                Message::ReplicaPush {
                    path,
                    entries,
                    routing,
                    replicas,
                }
            }
            _ => return None,
        })
    }

    /// Size of the encoded message in bytes (what the bandwidth accounting
    /// charges for this message).
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// Whether this message belongs to the query traffic class (everything
    /// else is maintenance traffic in the Figure 8 breakdown).
    pub fn is_query_traffic(&self) -> bool {
        match self {
            Message::Query { .. }
            | Message::QueryResponse { .. }
            | Message::RangeQuery { .. }
            | Message::RangeResponse { .. } => true,
            Message::ForIndex { inner, .. } => inner.is_query_traffic(),
            Message::Traced { inner, .. } => inner.is_query_traffic(),
            _ => false,
        }
    }
}

fn put_path(buf: &mut BytesMut, path: &Path) {
    buf.put_u8(path.len() as u8);
    let mut bits: u64 = 0;
    for (i, b) in path.bits_iter().enumerate() {
        if b {
            bits |= 1 << (63 - i);
        }
    }
    buf.put_u64(bits);
}

fn get_path(data: &mut Bytes) -> Option<Path> {
    let len = checked_u8(data)? as usize;
    if len > pgrid_core::path::MAX_PATH_LEN {
        return None;
    }
    let bits = checked_u64(data)?;
    let mut path = Path::root();
    for i in 0..len {
        path = path.child((bits >> (63 - i)) & 1 == 1);
    }
    Some(path)
}

fn put_entries(buf: &mut BytesMut, entries: &[DataEntry]) {
    buf.put_u32(entries.len() as u32);
    for e in entries {
        buf.put_u64(e.key.0);
        buf.put_u64(e.id.0);
    }
}

fn get_entries(data: &mut Bytes) -> Option<Vec<DataEntry>> {
    let n = checked_u32(data)? as usize;
    if n > 1_000_000 {
        return None;
    }
    let mut entries = Vec::with_capacity(n.min(65536));
    for _ in 0..n {
        let key = Key(checked_u64(data)?);
        let id = DataId(checked_u64(data)?);
        entries.push(DataEntry::new(key, id));
    }
    Some(entries)
}

fn checked_u64(data: &mut Bytes) -> Option<u64> {
    (data.remaining() >= 8).then(|| data.get_u64())
}

fn checked_u32(data: &mut Bytes) -> Option<u32> {
    (data.remaining() >= 4).then(|| data.get_u32())
}

fn checked_u16(data: &mut Bytes) -> Option<u16> {
    (data.remaining() >= 2).then(|| data.get_u16())
}

fn checked_u8(data: &mut Bytes) -> Option<u8> {
    (data.remaining() >= 1).then(|| data.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: u64) -> Vec<DataEntry> {
        (0..n)
            .map(|i| DataEntry::new(Key::from_fraction(i as f64 / 100.0), DataId(i)))
            .collect()
    }

    fn roundtrip(message: Message) {
        let encoded = message.encode();
        let decoded = Message::decode(encoded).expect("decode");
        assert_eq!(decoded, message);
    }

    #[test]
    fn all_message_kinds_roundtrip() {
        roundtrip(Message::Join { peer: PeerId(42) });
        roundtrip(Message::JoinAck {
            neighbours: vec![PeerId(1), PeerId(2), PeerId(3)],
        });
        roundtrip(Message::Replicate {
            entries: entries(5),
        });
        roundtrip(Message::Exchange {
            from: PeerId(7),
            path: Path::parse("0101"),
            entries: entries(3),
        });
        for outcome in [
            ExchangeOutcome::Split {
                partition: Path::parse("01"),
                initiator_bit: true,
                entries: entries(4),
                complement: None,
            },
            ExchangeOutcome::Split {
                partition: Path::root(),
                initiator_bit: false,
                entries: entries(2),
                complement: Some((PeerId(5), Path::parse("10"))),
            },
            ExchangeOutcome::Replicate {
                entries: entries(2),
            },
            ExchangeOutcome::Refer {
                peer: PeerId(9),
                path: Path::parse("110"),
            },
            ExchangeOutcome::Nothing,
        ] {
            roundtrip(Message::ExchangeReply {
                from: PeerId(8),
                path: Path::parse("01"),
                outcome,
            });
        }
        roundtrip(Message::Query {
            origin: PeerId(3),
            id: 77,
            key: Key::from_fraction(0.33),
            hops: 2,
        });
        roundtrip(Message::QueryResponse {
            id: 77,
            entries: entries(1),
            hops: 3,
            found: true,
        });
        roundtrip(Message::RangeQuery {
            origin: PeerId(4),
            id: 78,
            lo: Key::from_fraction(0.1),
            hi: Key::from_fraction(0.6),
            cursor: Key::from_fraction(0.25),
            hops: 1,
        });
        roundtrip(Message::RangeResponse {
            id: 78,
            from: Key::from_fraction(0.25),
            upto: Key::from_fraction(0.5),
            entries: entries(4),
            hops: 2,
        });
        roundtrip(Message::ReplicaPull { origin: PeerId(12) });
        roundtrip(Message::ReplicaPush {
            path: Path::parse("0110"),
            entries: entries(7),
            routing: vec![
                (0, PeerId(3), Path::parse("1")),
                (1, PeerId(4), Path::parse("00")),
            ],
            replicas: vec![PeerId(5), PeerId(9)],
        });
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Message::Replicate {
            entries: entries(1),
        };
        let large = Message::Replicate {
            entries: entries(100),
        };
        assert!(large.wire_size() > small.wire_size() + 99 * 16 - 1);
    }

    #[test]
    fn traffic_classification() {
        assert!(Message::Query {
            origin: PeerId(0),
            id: 0,
            key: Key::MIN,
            hops: 0
        }
        .is_query_traffic());
        assert!(Message::RangeQuery {
            origin: PeerId(0),
            id: 0,
            lo: Key::MIN,
            hi: Key::MAX,
            cursor: Key::MIN,
            hops: 0
        }
        .is_query_traffic());
        assert!(Message::RangeResponse {
            id: 0,
            from: Key::MIN,
            upto: Key::MAX,
            entries: Vec::new(),
            hops: 0
        }
        .is_query_traffic());
        assert!(!Message::Join { peer: PeerId(0) }.is_query_traffic());
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(Message::decode(Bytes::from_static(&[])).is_none());
        assert!(Message::decode(Bytes::from_static(&[99])).is_none());
        assert!(Message::decode(Bytes::from_static(&[0, 1, 2])).is_none());
        // truncated entry list
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u32(10);
        buf.put_u64(1);
        assert!(Message::decode(buf.freeze()).is_none());
        // truncated replica pull
        assert!(Message::decode(Bytes::from_static(&[11, 0, 0])).is_none());
        // replica push with an absurd routing count
        let mut buf = BytesMut::new();
        buf.put_u8(12);
        buf.put_u8(0); // root path
        buf.put_u64(0);
        buf.put_u32(0); // no entries
        buf.put_u32(1 << 20); // routing count over the cap
        assert!(Message::decode(buf.freeze()).is_none());
    }

    #[test]
    fn recovery_messages_are_maintenance_traffic() {
        assert!(!Message::ReplicaPull { origin: PeerId(1) }.is_query_traffic());
        assert!(!Message::ReplicaPush {
            path: Path::root(),
            entries: Vec::new(),
            routing: Vec::new(),
            replicas: Vec::new(),
        }
        .is_query_traffic());
    }

    #[test]
    fn index_envelopes_roundtrip_and_classify() {
        let inner = Message::Query {
            origin: PeerId(3),
            id: 9,
            key: Key::from_fraction(0.5),
            hops: 1,
        };
        let enveloped = Message::ForIndex {
            index: 2,
            inner: Box::new(inner.clone()),
        };
        roundtrip(enveloped.clone());
        assert!(enveloped.is_query_traffic());
        assert!(!Message::ForIndex {
            index: 2,
            inner: Box::new(Message::Replicate {
                entries: entries(1)
            }),
        }
        .is_query_traffic());
        // The envelope costs exactly tag + index on the wire.
        assert_eq!(enveloped.wire_size(), inner.wire_size() + 3);
    }

    #[test]
    fn malformed_envelopes_are_rejected() {
        // Index 0 must never be enveloped.
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(0);
        buf.put_slice(Message::Join { peer: PeerId(1) }.encode().as_slice());
        assert!(Message::decode(buf.freeze()).is_none());
        // Envelopes do not nest.
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(1);
        buf.put_u8(7);
        buf.put_u16(2);
        buf.put_slice(Message::Join { peer: PeerId(1) }.encode().as_slice());
        assert!(Message::decode(buf.freeze()).is_none());
        // Truncated index.
        assert!(Message::decode(Bytes::from_static(&[7, 0])).is_none());
    }

    #[test]
    fn trace_envelopes_roundtrip_and_classify() {
        let inner = Message::Query {
            origin: PeerId(3),
            id: 9,
            key: Key::from_fraction(0.5),
            hops: 1,
        };
        let traced = Message::Traced {
            trace_id: (2 << 40) | 5,
            inner: Box::new(inner.clone()),
        };
        roundtrip(traced.clone());
        assert!(traced.is_query_traffic());
        // A traced secondary-index query nests Traced around ForIndex.
        let traced_secondary = Message::Traced {
            trace_id: 7,
            inner: Box::new(Message::ForIndex {
                index: 2,
                inner: Box::new(inner.clone()),
            }),
        };
        roundtrip(traced_secondary.clone());
        assert!(traced_secondary.is_query_traffic());
        // The envelope costs exactly tag + trace id on the wire.
        assert_eq!(traced.wire_size(), inner.wire_size() + 9);
    }

    #[test]
    fn malformed_trace_envelopes_are_rejected() {
        // Trace id 0 is the "not traced" sentinel and never enveloped.
        let mut buf = BytesMut::new();
        buf.put_u8(10);
        buf.put_u64(0);
        buf.put_slice(Message::Join { peer: PeerId(1) }.encode().as_slice());
        assert!(Message::decode(buf.freeze()).is_none());
        // Trace envelopes do not nest.
        let mut buf = BytesMut::new();
        buf.put_u8(10);
        buf.put_u64(1);
        buf.put_u8(10);
        buf.put_u64(2);
        buf.put_slice(Message::Join { peer: PeerId(1) }.encode().as_slice());
        assert!(Message::decode(buf.freeze()).is_none());
        // A trace envelope inside an index envelope is rejected: Traced is
        // strictly outermost.
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16(1);
        buf.put_u8(10);
        buf.put_u64(3);
        buf.put_slice(Message::Join { peer: PeerId(1) }.encode().as_slice());
        assert!(Message::decode(buf.freeze()).is_none());
        // Truncated trace id.
        assert!(Message::decode(Bytes::from_static(&[10, 0, 0])).is_none());
    }

    #[test]
    fn empty_path_roundtrips() {
        roundtrip(Message::Exchange {
            from: PeerId(1),
            path: Path::root(),
            entries: Vec::new(),
        });
    }
}
