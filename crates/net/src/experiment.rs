//! The PlanetLab-style deployment experiment (Section 5).
//!
//! The timeline follows the paper's Section 5.1: peers join the network and
//! form an unstructured overlay, replicate their data, construct the
//! structured overlay, answer queries, and finally experience churn (each
//! peer repeatedly goes offline for 1–5 minutes every 5–10 minutes).  The
//! driver samples the time series reported in Figures 7–9: the number of
//! online peers, the aggregate bandwidth split into maintenance and query
//! traffic, and the query latency.

use crate::runtime::{BandwidthSample, NetConfig, QueryAggregates, Runtime};
use pgrid_core::balance::compare_to_reference;
use pgrid_core::histogram::LogHistogram;
use pgrid_core::key::Key;
use pgrid_core::path::Path;
use pgrid_core::reference::{BalanceParams, ReferencePartitioning};
use pgrid_transport::{Transport, TransportStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Phase boundaries of the experiment, in minutes of virtual time (the
/// paper's experiment runs for 500 minutes with the same phase structure).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    /// Peers join between time 0 and this minute.
    pub join_end_min: u64,
    /// Replication happens between `join_end_min` and this minute.
    pub replicate_end_min: u64,
    /// Construction runs until this minute.
    pub construct_end_min: u64,
    /// Range queries run between `construct_end_min` and this minute; any
    /// value at or below `construct_end_min` (the historical timelines use
    /// `0`) disables the range window entirely.
    pub range_end_min: u64,
    /// Queries run until this minute.
    pub query_end_min: u64,
    /// Churn (with continuing queries) runs until this minute.
    pub end_min: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        // A scaled-down version of the paper's 500-minute timeline that keeps
        // the phase proportions (100 / 100 / 200 / 130 / 70 minutes in the
        // paper) but compresses construction, which in virtual time needs far
        // fewer rounds than wall-clock PlanetLab minutes.
        Timeline {
            join_end_min: 20,
            replicate_end_min: 25,
            construct_end_min: 60,
            range_end_min: 0,
            query_end_min: 90,
            end_min: 110,
        }
    }
}

/// One sample of the per-minute time series.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct MinuteSample {
    /// Minute of virtual time.
    pub minute: u64,
    /// Number of peers online at the end of the minute (Figure 7).
    pub peers_online: usize,
    /// Aggregate maintenance bandwidth in bytes per second (Figure 8).
    pub maintenance_bps: f64,
    /// Aggregate query bandwidth in bytes per second (Figure 8).
    pub query_bps: f64,
    /// Mean query latency in seconds over queries issued this minute
    /// (Figure 9); `0` if none.
    pub query_latency_mean_s: f64,
    /// Standard deviation of the query latency (Figure 9).
    pub query_latency_std_s: f64,
}

/// Result of the deployment experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct DeploymentReport {
    /// Per-minute time series.
    pub timeline: Vec<MinuteSample>,
    /// Load-balance deviation of the final overlay from the reference
    /// partitioning (the quantity the paper reports as 0.38–0.39).
    pub balance_deviation: f64,
    /// Mean trie depth (the paper reports a mean path length slightly
    /// below 6 for ~300 peers).
    pub mean_path_length: f64,
    /// Mean hops of successful queries (the paper reports ≈ 3, about half
    /// the mean path length).
    pub mean_query_hops: f64,
    /// Query success rate over the whole query+churn period (the paper
    /// reports 95–100%).
    pub query_success_rate: f64,
    /// Mean number of replicas per leaf partition (the paper reports ≈ 5).
    pub mean_replication: f64,
    /// Latency distribution of answered lookups, in milliseconds
    /// (p50/p99/p999 and the Prometheus histogram derive from this).
    pub query_latency: LogHistogram,
    /// Range queries issued during the optional range window.
    pub ranges_issued: u64,
    /// Range queries whose responses covered their whole `[lo, hi]` span.
    pub ranges_complete: u64,
    /// Total maintenance bytes sent.
    pub total_maintenance_bytes: usize,
    /// Total query bytes sent.
    pub total_query_bytes: usize,
    /// Frame-level counters of the transport the experiment ran over.
    pub transport: TransportStats,
}

impl DeploymentReport {
    /// Populates `registry` with the report's summary statistics plus its
    /// transport counters — the producer behind `pgrid-cluster
    /// --metrics-out` and the coordinator's merged `/metrics` view.
    pub fn to_registry(&self, registry: &mut pgrid_obs::registry::MetricsRegistry) {
        for (name, help, value) in [
            (
                "pgrid_deployment_balance_deviation",
                "Load-balance deviation from the reference partitioning.",
                self.balance_deviation,
            ),
            (
                "pgrid_deployment_mean_path_length",
                "Mean trie depth of the final overlay.",
                self.mean_path_length,
            ),
            (
                "pgrid_deployment_mean_query_hops",
                "Mean hops of successful queries.",
                self.mean_query_hops,
            ),
            (
                "pgrid_deployment_query_success_rate",
                "Query success rate over the query and churn phases.",
                self.query_success_rate,
            ),
            (
                "pgrid_deployment_mean_replication",
                "Mean number of replicas per leaf partition.",
                self.mean_replication,
            ),
        ] {
            registry.gauge(name, help, &[], value);
        }
        // Byte totals are counters (the `_total` suffix is reserved for
        // them in the Prometheus conventions).
        for (name, help, value) in [
            (
                "pgrid_deployment_maintenance_bytes_total",
                "Total maintenance bytes sent.",
                self.total_maintenance_bytes,
            ),
            (
                "pgrid_deployment_query_bytes_total",
                "Total query bytes sent.",
                self.total_query_bytes,
            ),
        ] {
            registry.counter(name, help, &[], value as u64);
        }
        for (name, help, value) in [
            (
                "pgrid_deployment_ranges_issued",
                "Range queries issued during the range window.",
                Some(self.ranges_issued),
            ),
            (
                "pgrid_deployment_ranges_complete",
                "Range queries that achieved full interval coverage.",
                Some(self.ranges_complete),
            ),
            (
                "pgrid_deployment_query_latency_p50_ms",
                "Median lookup latency in milliseconds.",
                self.query_latency.p50(),
            ),
            (
                "pgrid_deployment_query_latency_p99_ms",
                "99th-percentile lookup latency in milliseconds.",
                self.query_latency.p99(),
            ),
            (
                "pgrid_deployment_query_latency_p999_ms",
                "99.9th-percentile lookup latency in milliseconds.",
                self.query_latency.p999(),
            ),
        ] {
            registry.gauge(name, help, &[], value.unwrap_or(0) as f64);
        }
        registry.histogram(
            "pgrid_deployment_query_latency_ms",
            "Latency distribution of answered lookups in virtual milliseconds.",
            &[],
            &self.query_latency,
        );
        self.transport.to_registry(registry);
    }

    /// Renders the report's summary statistics plus its transport counters
    /// in the Prometheus text exposition format (what `pgrid-cluster
    /// --metrics-out` writes), through the shared
    /// [`pgrid_obs::registry::MetricsRegistry`] encoder.
    pub fn metrics_text(&self) -> String {
        let mut registry = pgrid_obs::registry::MetricsRegistry::new();
        self.to_registry(&mut registry);
        registry.encode()
    }
}

/// Runs the full deployment experiment over the deterministic loopback
/// transport (the emulated wide-area network of Section 5).
pub fn run_deployment(config: &NetConfig, timeline: &Timeline) -> DeploymentReport {
    let runtime = Runtime::new(config.clone());
    drive_deployment(runtime, timeline)
}

/// Runs the full deployment experiment over the given transport backend
/// (e.g. [`pgrid_transport::tcp::TcpTransport`] for real sockets).
pub fn run_deployment_with<T: Transport>(
    config: &NetConfig,
    timeline: &Timeline,
    transport: T,
) -> Result<DeploymentReport, pgrid_transport::TransportError> {
    let runtime = Runtime::with_transport(config.clone(), transport)?;
    Ok(drive_deployment(runtime, timeline))
}

/// Drives an already constructed runtime through the Section 5 timeline.
fn drive_deployment<T: Transport>(
    mut runtime: Runtime<T>,
    timeline: &Timeline,
) -> DeploymentReport {
    let config = runtime.config.clone();
    let config = &config;
    let mut control_rng = StdRng::seed_from_u64(config.seed ^ 0xD13);
    let minute = 60_000u64;

    // --- Phase 1: joining ---------------------------------------------------
    let join_end = timeline.join_end_min * minute;
    for peer in 0..config.n_peers {
        let at = (peer as u64 * join_end) / config.n_peers as u64;
        runtime.run_until(at);
        runtime.join_peer(peer, 6);
    }
    runtime.run_until(join_end);
    pgrid_obs::debug!(
        "net::experiment",
        "join phase done: {} peers online at minute {}",
        config.n_peers,
        timeline.join_end_min
    );

    // --- Phase 2: replication -------------------------------------------------
    runtime.replication_phase();
    runtime.run_until(timeline.replicate_end_min * minute);
    pgrid_obs::debug!(
        "net::experiment",
        "replication phase done at minute {}",
        timeline.replicate_end_min
    );

    // --- Phase 3: construction -------------------------------------------------
    runtime.start_construction();
    runtime.run_until(timeline.construct_end_min * minute);
    pgrid_obs::debug!(
        "net::experiment",
        "construction phase done at minute {}",
        timeline.construct_end_min
    );

    // --- Phase 4: queries -------------------------------------------------------
    let keys: Vec<_> = runtime.original_entries.iter().map(|e| e.key).collect();
    let query_end = timeline.query_end_min * minute;
    let churn_end = timeline.end_min * minute;
    // Each peer queries every 1–2 minutes, as in the paper.
    let mut next_query = runtime.now();
    while runtime.now() < query_end {
        let step = control_rng
            .gen_range(60_000 / config.n_peers as u64 / 2..=60_000 / config.n_peers as u64);
        next_query += step.max(1);
        runtime.run_until(next_query);
        let key = keys[control_rng.gen_range(0..keys.len())];
        runtime.issue_query(key);
    }
    pgrid_obs::debug!(
        "net::experiment",
        "query phase done at minute {}: {} queries issued",
        timeline.query_end_min,
        runtime
            .metrics
            .query_stats
            .values()
            .map(|agg| agg.issued)
            .sum::<u64>()
    );

    // --- Phase 5: churn + queries -----------------------------------------------
    // Each peer independently goes offline for 1–5 minutes every 5–10 minutes.
    for peer in 0..config.n_peers {
        let mut at = query_end + control_rng.gen_range(0..5 * minute);
        while at < churn_end {
            let downtime = control_rng.gen_range(minute..=5 * minute);
            runtime.schedule_churn(peer, at, downtime);
            at += downtime + control_rng.gen_range(5 * minute..=10 * minute);
        }
    }
    while runtime.now() < churn_end {
        let step = control_rng
            .gen_range(60_000 / config.n_peers as u64 / 2..=60_000 / config.n_peers as u64);
        next_query += step.max(1);
        runtime.run_until(next_query.min(churn_end));
        if runtime.now() >= churn_end {
            break;
        }
        let key = keys[control_rng.gen_range(0..keys.len())];
        runtime.issue_query(key);
    }
    // Drain outstanding query timeouts.
    runtime.run_until(churn_end + runtime.config.query_timeout_ms);
    pgrid_obs::debug!(
        "net::experiment",
        "churn phase done at minute {}, building report",
        timeline.end_min
    );

    build_report(&runtime, timeline)
}

/// The raw material a [`DeploymentReport`] is computed from.
///
/// A single-process run fills this straight from its [`Runtime`]
/// ([`ReportInputs::from_runtime`]); the cluster coordinator assembles the
/// same structure by merging what its worker processes streamed back
/// (summing bandwidth buckets, folding query aggregates, placing each
/// shard's final paths at their global indices) and then calls
/// [`assemble_report`], so both deployment modes share one statistics
/// pipeline.
#[derive(Clone, Debug)]
pub struct ReportInputs {
    /// Number of peers of the deployment.
    pub n_peers: usize,
    /// Balance parameters of the exchange engine.
    pub params: BalanceParams,
    /// Keys of the ground-truth data assignment, in entry order.
    pub original_keys: Vec<Key>,
    /// Final path of every peer (index = peer id).
    pub paths: Vec<Path>,
    /// Query statistics, merged across all indexes and shards.
    pub queries: QueryAggregates,
    /// Classified bandwidth per one-minute bucket of virtual time.
    pub bandwidth_per_minute: HashMap<u64, BandwidthSample>,
    /// Peers online when the run ended.
    pub online_at_end: usize,
    /// Frame-level transport counters (summed across processes).
    pub transport: TransportStats,
}

impl ReportInputs {
    /// Collects the inputs of a single-process run.
    pub fn from_runtime<T: Transport>(runtime: &Runtime<T>) -> ReportInputs {
        ReportInputs {
            n_peers: runtime.config.n_peers,
            params: runtime.params(),
            original_keys: runtime.original_entries.iter().map(|e| e.key).collect(),
            paths: runtime.nodes.iter().map(|n| n.state.path).collect(),
            queries: runtime.metrics.merged_stats(),
            bandwidth_per_minute: runtime.metrics.bandwidth_per_minute.clone(),
            online_at_end: runtime.online_count(),
            transport: runtime.transport_stats(),
        }
    }
}

/// Computes the per-minute time series and the Section 5.2 summary
/// statistics from collected run data.
pub fn assemble_report(inputs: &ReportInputs, timeline: &Timeline) -> DeploymentReport {
    let mut samples = Vec::new();
    // Reconstructing the peers-online series from the churn/queries records
    // is not possible after the fact, so sample bandwidth and latency per
    // minute; the peers-online series is approximated from the join ramp and
    // the churn phase bounds plus the live count at the end.
    for m in 0..=timeline.end_min {
        let bw = inputs
            .bandwidth_per_minute
            .get(&m)
            .copied()
            .unwrap_or_default();
        let (mean, std) = match inputs.queries.per_minute.get(&m) {
            Some(bucket) if bucket.count > 0 => (bucket.mean_s(), bucket.std_s()),
            _ => (0.0, 0.0),
        };
        let peers_online = if m < timeline.join_end_min {
            (inputs.n_peers as u64 * m / timeline.join_end_min.max(1)) as usize
        } else if m < timeline.query_end_min {
            inputs.n_peers
        } else {
            inputs.online_at_end
        };
        samples.push(MinuteSample {
            minute: m,
            peers_online,
            maintenance_bps: bw.maintenance_bytes as f64 / 60.0,
            query_bps: bw.query_bytes as f64 / 60.0,
            query_latency_mean_s: mean,
            query_latency_std_s: std,
        });
    }

    // Final overlay quality.
    let reference =
        ReferencePartitioning::compute(&inputs.original_keys, inputs.n_peers, inputs.params);
    let balance = compare_to_reference(&reference, &inputs.paths);
    let mean_path_length =
        inputs.paths.iter().map(|p| p.len() as f64).sum::<f64>() / inputs.paths.len().max(1) as f64;

    let mean_query_hops = inputs.queries.mean_hops_successful();
    let query_success_rate = inputs.queries.success_rate();

    let replication_factors = pgrid_core::trie::peer_count_trie(inputs.paths.iter());
    let mean_replication = if replication_factors.is_empty() {
        0.0
    } else {
        replication_factors
            .iter()
            .map(|(_, &n)| n as f64)
            .sum::<f64>()
            / replication_factors.len() as f64
    };

    DeploymentReport {
        timeline: samples,
        balance_deviation: balance.deviation,
        mean_path_length,
        mean_query_hops,
        query_success_rate,
        mean_replication,
        query_latency: inputs.queries.latency.clone(),
        ranges_issued: inputs.queries.ranges_issued,
        ranges_complete: inputs.queries.ranges_complete,
        total_maintenance_bytes: inputs
            .bandwidth_per_minute
            .values()
            .map(|b| b.maintenance_bytes)
            .sum(),
        total_query_bytes: inputs
            .bandwidth_per_minute
            .values()
            .map(|b| b.query_bytes)
            .sum(),
        transport: inputs.transport.clone(),
    }
}

fn build_report<T: Transport>(runtime: &Runtime<T>, timeline: &Timeline) -> DeploymentReport {
    assemble_report(&ReportInputs::from_runtime(runtime), timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> DeploymentReport {
        let config = NetConfig {
            n_peers: 64,
            seed: 11,
            ..NetConfig::default()
        };
        run_deployment(&config, &Timeline::default())
    }

    #[test]
    fn deployment_produces_a_complete_timeline() {
        let report = small_report();
        let timeline = Timeline::default();
        assert_eq!(report.timeline.len() as u64, timeline.end_min + 1);
        // peers ramp up during the join phase and are all online afterwards
        assert!(report.timeline[2].peers_online < 64);
        assert!(report.timeline[timeline.join_end_min as usize + 1].peers_online == 64);
    }

    #[test]
    fn construction_phase_dominates_maintenance_bandwidth() {
        let report = small_report();
        let timeline = Timeline::default();
        let construction_bw: f64 = report
            .timeline
            .iter()
            .filter(|s| {
                s.minute > timeline.replicate_end_min && s.minute <= timeline.construct_end_min
            })
            .map(|s| s.maintenance_bps)
            .sum();
        let query_phase_maintenance: f64 = report
            .timeline
            .iter()
            .filter(|s| {
                s.minute > timeline.construct_end_min + 5 && s.minute <= timeline.query_end_min
            })
            .map(|s| s.maintenance_bps)
            .sum();
        assert!(
            construction_bw > query_phase_maintenance,
            "maintenance bandwidth should peak during construction: {construction_bw} vs {query_phase_maintenance}"
        );
        assert!(report.total_maintenance_bytes > 0);
        assert!(report.total_query_bytes > 0);
    }

    #[test]
    fn queries_mostly_succeed_with_low_hop_counts() {
        let report = small_report();
        assert!(
            report.query_success_rate > 0.8,
            "success rate {}",
            report.query_success_rate
        );
        assert!(report.mean_query_hops <= report.mean_path_length + 1.0);
        assert!(report.mean_path_length > 1.0);
    }

    #[test]
    fn overlay_quality_matches_the_simulation_ballpark() {
        let report = small_report();
        assert!(
            report.balance_deviation < 1.5,
            "deviation {}",
            report.balance_deviation
        );
        assert!(report.mean_replication >= 1.0);
    }

    #[test]
    fn report_metrics_text_carries_summary_and_transport_series() {
        let report = small_report();
        let text = report.metrics_text();
        assert!(text.contains("# TYPE pgrid_deployment_balance_deviation gauge"));
        assert!(text.contains("pgrid_deployment_query_success_rate "));
        assert!(text.contains("pgrid_transport_frames_sent_total "));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(
                line.split_whitespace().count(),
                2,
                "bad series line: {line}"
            );
        }
    }
}
