//! Observability integration of the deployment runtime: query outcomes
//! are bit-identical with tracing on or off (the envelope never perturbs
//! the RNG or the protocol), an enabled tracer reassembles complete hop
//! chains, and a forced query timeout leaves a flight-recorder dump.

use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_net::runtime::{NetConfig, Runtime};
use pgrid_obs::trace::{assemble, AMBIENT_TRACE};
use pgrid_workload::distributions::Distribution;

fn config(seed: u64) -> NetConfig {
    NetConfig {
        n_peers: 48,
        keys_per_peer: 8,
        n_min: 4,
        distribution: Distribution::Uniform,
        seed,
        ..NetConfig::default()
    }
}

/// Joins and constructs a small overlay, optionally with tracing on.
fn built(tracing: bool) -> Runtime {
    let mut rt = Runtime::new(config(21));
    if tracing {
        rt.enable_tracing();
    }
    for peer in 0..rt.config.n_peers {
        rt.join_peer(peer, 4);
    }
    rt.replication_phase();
    rt.run_until(10_000);
    rt.start_construction();
    rt.run_until(300_000);
    rt
}

/// Issues the same deterministic lookup load against a built runtime.
fn run_load(rt: &mut Runtime) {
    let keys: Vec<Key> = rt
        .original_entries_of(IndexId::PRIMARY)
        .iter()
        .map(|e| e.key)
        .collect();
    for chunk in keys.chunks(32).take(8) {
        rt.issue_query_batch_on(IndexId::PRIMARY, chunk);
        let now = rt.now();
        rt.run_until(now + 5_000);
    }
    let drain = rt.now() + rt.config.query_timeout_ms + 1;
    rt.run_until(drain);
}

#[test]
fn query_outcomes_are_identical_with_tracing_on_or_off() {
    let mut plain = built(false);
    let mut traced = built(true);
    run_load(&mut plain);
    run_load(&mut traced);

    // Same final overlay: tracing never consumed the RNG.
    for peer in 0..plain.config.n_peers {
        assert_eq!(
            plain.peer_state(IndexId::PRIMARY, peer).path,
            traced.peer_state(IndexId::PRIMARY, peer).path,
            "tracing changed the construction trajectory of peer {peer}"
        );
    }
    // Same query outcomes, hop counts and latency distribution.
    let a = plain.metrics.stats(IndexId::PRIMARY);
    let b = traced.metrics.stats(IndexId::PRIMARY);
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.answered, b.answered);
    assert_eq!(a.succeeded, b.succeeded);
    assert_eq!(a.timed_out, b.timed_out);
    assert_eq!(a.hops_sum_successful, b.hops_sum_successful);
    assert_eq!(a.latency.sparse_buckets(), b.latency.sparse_buckets());

    // The tracing-disabled runtime recorded no trace events at all.
    assert!(plain.tracer.events().is_empty());
    assert!(!plain.tracer.is_enabled());
}

#[test]
fn enabled_tracing_reassembles_complete_hop_chains() {
    let mut rt = built(true);
    run_load(&mut rt);
    let chains = assemble(rt.tracer.events());

    // Ambient events: exchange decisions and sampled frames.
    let ambient = chains.get(&AMBIENT_TRACE).expect("ambient events recorded");
    assert!(ambient.iter().any(|e| e.kind == "exchange_decision"));
    assert!(ambient.iter().any(|e| e.kind == "frame_sent"));

    // At least one lookup chain runs issue → (hops) → answer → resolve,
    // in virtual-time order.
    let complete = chains
        .iter()
        .filter(|(&id, _)| id != AMBIENT_TRACE)
        .filter(|(_, chain)| {
            chain.first().is_some_and(|e| e.kind == "query_issued")
                && chain.iter().any(|e| e.kind == "query_answered")
                && chain.last().is_some_and(|e| e.kind == "query_resolved")
        })
        .count();
    assert!(
        complete > 0,
        "no complete hop chain among {} traces",
        chains.len()
    );
    // Multi-hop lookups exist in a 48-peer trie.
    assert!(
        chains
            .iter()
            .any(|(_, chain)| chain.iter().any(|e| e.kind == "query_hop")),
        "no forwarded lookup was traced"
    );
    // Every trace event of a lookup chain renders as one JSON line.
    for chain in chains.values() {
        for event in chain {
            assert!(event.to_json().starts_with("{\"trace_id\": "));
        }
    }
}

#[test]
fn forced_query_timeout_dumps_the_flight_recorder() {
    let dir = std::env::temp_dir().join("pgrid_net_flight_dump_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flight.jsonl");
    let _ = std::fs::remove_file(&path);

    let mut rt = built(false);
    rt.flight_dump = Some(path.clone());
    // Sever the network: every frame from now on is lost, so every lookup
    // must expire unanswered and trigger the dump.
    rt.config.loss_probability = 1.0;
    let keys: Vec<Key> = rt
        .original_entries_of(IndexId::PRIMARY)
        .iter()
        .take(4)
        .map(|e| e.key)
        .collect();
    rt.issue_query_batch_on(IndexId::PRIMARY, &keys);
    let deadline = rt.now() + rt.config.query_timeout_ms + 1;
    rt.run_until(deadline);

    assert_eq!(rt.metrics.stats(IndexId::PRIMARY).timed_out, 4);
    let dump = std::fs::read_to_string(&path).expect("flight dump written");
    let lines: Vec<&str> = dump.lines().collect();
    assert!(lines.len() >= 2, "dump has a header plus notes: {dump}");
    assert!(lines[0].contains("\"reason\": \"query timeout\""));
    assert!(dump.contains("\"kind\": \"query_timeout\""));
    std::fs::remove_dir_all(&dir).ok();
}
