//! Synthetic document corpus for the peer-to-peer information-retrieval
//! scenario.
//!
//! The paper motivates overlay (re-)construction with a distributed inverted
//! file: documents are spread over peers, terms are extracted, and a
//! dedicated overlay indexes `(term, document)` postings so that keyword and
//! prefix searches route to the peers responsible for the term's key range.
//! The Alvis collection used by the authors is not available, so this module
//! generates a corpus with the statistical properties that matter for the
//! experiments: a Zipfian vocabulary, documents of varying length, and an
//! order-preserving term → key mapping.

use crate::distributions::ZipfSampler;
use pgrid_core::key::{DataEntry, DataId, Key};
use rand::Rng;

/// A single synthetic document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Document {
    /// Document identifier.
    pub id: DataId,
    /// Extracted index terms (with duplicates removed).
    pub terms: Vec<String>,
}

/// A synthetic document corpus with a Zipfian vocabulary.
#[derive(Clone, Debug)]
pub struct Corpus {
    /// The vocabulary, lexicographically sorted.
    pub vocabulary: Vec<String>,
    /// The documents.
    pub documents: Vec<Document>,
}

/// Parameters of corpus generation.
#[derive(Copy, Clone, Debug)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub documents: usize,
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent of term popularity.
    pub zipf_exponent: f64,
    /// Terms drawn per document (before deduplication).
    pub terms_per_document: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            documents: 500,
            vocabulary: 2000,
            zipf_exponent: 1.0,
            terms_per_document: 20,
        }
    }
}

impl Corpus {
    /// Generates a corpus.
    pub fn generate<R: Rng + ?Sized>(config: &CorpusConfig, rng: &mut R) -> Corpus {
        assert!(config.vocabulary > 0 && config.documents > 0);
        let vocabulary: Vec<String> = (0..config.vocabulary).map(synthetic_term).collect();
        // `synthetic_term` generates terms in lexicographic order already,
        // but sort defensively so the order-preserving mapping is exact.
        let mut sorted = vocabulary.clone();
        sorted.sort();
        let sampler = ZipfSampler::new(config.vocabulary, config.zipf_exponent);
        let documents = (0..config.documents)
            .map(|doc_idx| {
                let mut terms: Vec<String> = (0..config.terms_per_document)
                    .map(|_| {
                        // Zipf ranks are scrambled over the vocabulary so that
                        // popular terms are spread across the alphabet.
                        let rank = sampler.sample(rng) as u64;
                        let slot = (rank.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            % config.vocabulary as u64) as usize;
                        sorted[slot].clone()
                    })
                    .collect();
                terms.sort();
                terms.dedup();
                Document {
                    id: DataId(doc_idx as u64),
                    terms,
                }
            })
            .collect();
        Corpus {
            vocabulary: sorted,
            documents,
        }
    }

    /// Total number of `(term, document)` postings in the corpus.
    pub fn num_postings(&self) -> usize {
        self.documents.iter().map(|d| d.terms.len()).sum()
    }

    /// Builds the complete inverted-file posting list as overlay index
    /// entries: one `(key(term), document)` entry per posting.
    pub fn postings(&self) -> Vec<DataEntry> {
        self.documents
            .iter()
            .flat_map(|doc| {
                doc.terms
                    .iter()
                    .map(move |t| DataEntry::new(term_key(t), doc.id))
            })
            .collect()
    }

    /// Splits the documents round-robin over `n` peers and returns, for each
    /// peer, the postings of its local documents — the starting state of the
    /// index construction (each peer indexes its own documents locally).
    pub fn partition_postings(&self, n: usize) -> Vec<Vec<DataEntry>> {
        assert!(n > 0);
        let mut per_peer = vec![Vec::new(); n];
        for (i, doc) in self.documents.iter().enumerate() {
            let peer = i % n;
            for term in &doc.terms {
                per_peer[peer].push(DataEntry::new(term_key(term), doc.id));
            }
        }
        per_peer
    }

    /// The documents containing the given term (ground truth for query
    /// correctness checks).
    pub fn documents_with_term(&self, term: &str) -> Vec<DataId> {
        self.documents
            .iter()
            .filter(|d| d.terms.iter().any(|t| t == term))
            .map(|d| d.id)
            .collect()
    }

    /// The documents containing any term with the given prefix (ground truth
    /// for prefix/range query checks).
    pub fn documents_with_prefix(&self, prefix: &str) -> Vec<DataId> {
        let mut ids: Vec<DataId> = self
            .documents
            .iter()
            .filter(|d| d.terms.iter().any(|t| t.starts_with(prefix)))
            .map(|d| d.id)
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// Maps an index term to its overlay key, preserving lexicographic order.
pub fn term_key(term: &str) -> Key {
    Key::from_str_ordered(term)
}

/// The key range covered by all terms with the given prefix, suitable for an
/// overlay range query.
pub fn prefix_key_range(prefix: &str) -> (Key, Key) {
    let lo = Key::from_str_ordered(prefix);
    // Upper bound: the prefix followed by the maximal byte, padded — i.e.
    // the largest key any extension of the prefix can map to.
    let mut upper_bytes = [0xFFu8; 8];
    let prefix_bytes = prefix.as_bytes();
    for (i, b) in prefix_bytes.iter().take(8).enumerate() {
        upper_bytes[i] = *b;
    }
    let hi = Key(u64::from_be_bytes(upper_bytes));
    (lo, hi)
}

/// Generates the `i`-th synthetic term.  Terms are five-letter strings in
/// lexicographic order (`aaaaa`, `aaaab`, …) so that term order and key
/// order coincide trivially.
fn synthetic_term(i: usize) -> String {
    let mut term = String::with_capacity(5);
    let mut n = i;
    for _ in 0..5 {
        term.insert(0, (b'a' + (n % 26) as u8) as char);
        n /= 26;
    }
    term
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_corpus() -> Corpus {
        let mut rng = StdRng::seed_from_u64(42);
        Corpus::generate(
            &CorpusConfig {
                documents: 100,
                vocabulary: 300,
                zipf_exponent: 1.0,
                terms_per_document: 12,
            },
            &mut rng,
        )
    }

    #[test]
    fn corpus_has_requested_shape() {
        let corpus = small_corpus();
        assert_eq!(corpus.documents.len(), 100);
        assert_eq!(corpus.vocabulary.len(), 300);
        assert!(corpus.num_postings() > 0);
        assert!(corpus.num_postings() <= 100 * 12);
        // vocabulary is sorted
        assert!(corpus.vocabulary.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn postings_match_documents() {
        let corpus = small_corpus();
        let postings = corpus.postings();
        assert_eq!(postings.len(), corpus.num_postings());
        // every posting's key corresponds to a vocabulary term of that doc
        let doc0 = &corpus.documents[0];
        let doc0_postings: Vec<_> = postings.iter().filter(|e| e.id == doc0.id).collect();
        assert_eq!(doc0_postings.len(), doc0.terms.len());
    }

    #[test]
    fn term_keys_preserve_lexicographic_order() {
        let corpus = small_corpus();
        for pair in corpus.vocabulary.windows(2) {
            assert!(term_key(&pair[0]) < term_key(&pair[1]));
        }
    }

    #[test]
    fn partitioning_covers_all_postings() {
        let corpus = small_corpus();
        let per_peer = corpus.partition_postings(16);
        assert_eq!(per_peer.len(), 16);
        let total: usize = per_peer.iter().map(Vec::len).sum();
        assert_eq!(total, corpus.num_postings());
    }

    #[test]
    fn ground_truth_queries_are_consistent() {
        let corpus = small_corpus();
        // pick an existing term from the corpus
        let term = corpus.documents[0].terms[0].clone();
        let with_term = corpus.documents_with_term(&term);
        assert!(with_term.contains(&corpus.documents[0].id));
        let with_prefix = corpus.documents_with_prefix(&term[..2]);
        assert!(with_term.iter().all(|id| with_prefix.contains(id)));
    }

    #[test]
    fn prefix_range_covers_exactly_matching_terms() {
        let (lo, hi) = prefix_key_range("ab");
        assert!(term_key("abzzz") >= lo && term_key("abzzz") <= hi);
        assert!(term_key("abaaa") >= lo);
        assert!(term_key("acaaa") > hi);
        assert!(term_key("aazzz") < lo);
    }

    #[test]
    fn zipf_vocabulary_is_reused_heavily() {
        let corpus = small_corpus();
        // Count term occurrences; the most frequent term should appear in
        // far more documents than the median one.
        use std::collections::HashMap;
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for doc in &corpus.documents {
            for t in &doc.terms {
                *counts.entry(t.as_str()).or_default() += 1;
            }
        }
        let mut values: Vec<usize> = counts.values().copied().collect();
        values.sort_unstable();
        let max = *values.last().unwrap();
        let median = values[values.len() / 2];
        // The top term saturates near the document count, so the observable
        // ratio is capped well below the raw Zipf ratio; 3x median still
        // only holds for genuinely heavy reuse.  (The exact ratio depends on
        // the PRNG stream: the vendored StdRng lands at 3.9x for this seed,
        // so the original 4x bound was within sampling noise of the cap.)
        assert!(max >= 3 * median, "max {max}, median {median}");
    }

    #[test]
    fn synthetic_terms_are_lexicographically_increasing() {
        for i in 1..1000 {
            assert!(synthetic_term(i - 1) < synthetic_term(i));
        }
    }
}
