//! Key distributions used in the paper's evaluation (Section 4.4).
//!
//! The simulation study uses a uniform distribution (`U`), Pareto
//! distributions with shape `k = 0.5 / 1.0 / 1.5` (`P0.5`, `P1.0`, `P1.5`),
//! a normal distribution with mean `1/2` and standard deviation `0.05` (`N`)
//! and real keys from the Alvis text-retrieval project (`A`).  The Alvis
//! collection is not publicly available, so the `A` workload is substituted
//! by a synthetic text corpus whose term keys follow a Zipfian vocabulary
//! mapped order-preservingly into the key space (see [`crate::corpus`]); the
//! only property the experiments rely on is a realistic, clustered, skewed
//! key distribution.
//!
//! All samplers are implemented from first principles (inverse-CDF or
//! Box–Muller) so that the crate only depends on `rand`'s uniform source.

use pgrid_core::key::Key;
use rand::Rng;
use std::fmt;

/// The key distributions of the paper's Figure 6, plus a custom variant.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Distribution {
    /// Uniform keys over `[0, 1)` (the `U` workload).
    Uniform,
    /// Pareto-distributed keys with the given shape parameter, folded into
    /// `[0, 1)` (the `P0.5`, `P1.0`, `P1.5` workloads).
    Pareto {
        /// Shape parameter `k` (smaller = heavier tail = more skew).
        shape: f64,
    },
    /// Normal keys with the given mean and standard deviation, clamped to
    /// `[0, 1)` (the `N` workload; the paper uses mean 0.5, sigma 0.05).
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Synthetic text-retrieval keys: Zipf-ranked vocabulary terms mapped
    /// order-preservingly into the key space (the `A` workload substitute).
    Text {
        /// Vocabulary size of the synthetic corpus.
        vocabulary: usize,
        /// Zipf exponent of the term frequencies.
        exponent: f64,
    },
}

impl Distribution {
    /// The six workloads evaluated in Figure 6, in the order the paper lists
    /// them: `U`, `P0.5`, `P1.0`, `P1.5`, `N`, `A`.
    pub fn paper_suite() -> Vec<Distribution> {
        vec![
            Distribution::Uniform,
            Distribution::Pareto { shape: 0.5 },
            Distribution::Pareto { shape: 1.0 },
            Distribution::Pareto { shape: 1.5 },
            Distribution::Normal {
                mean: 0.5,
                std_dev: 0.05,
            },
            Distribution::Text {
                vocabulary: 5_000,
                exponent: 1.0,
            },
        ]
    }

    /// Short label used in tables and figures (`U`, `P0.5`, …).
    pub fn label(&self) -> String {
        match self {
            Distribution::Uniform => "U".to_string(),
            Distribution::Pareto { shape } => format!("P{shape:.1}"),
            Distribution::Normal { .. } => "N".to_string(),
            Distribution::Text { .. } => "A".to_string(),
        }
    }

    /// Draws one key from the distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Key {
        let fraction = match *self {
            Distribution::Uniform => rng.gen::<f64>(),
            Distribution::Pareto { shape } => pareto_fraction(shape, rng),
            Distribution::Normal { mean, std_dev } => {
                (mean + std_dev * standard_normal(rng)).clamp(0.0, 1.0 - 1e-12)
            }
            Distribution::Text {
                vocabulary,
                exponent,
            } => zipf_term_fraction(vocabulary, exponent, rng),
        };
        Key::from_fraction(fraction)
    }

    /// Draws `count` keys.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Key> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// A crude skew indicator: the fraction of probability mass falling into
    /// the lower half of the key space (1/2 for symmetric distributions,
    /// close to 1 for the heavy-tailed Pareto workloads).  Estimated by
    /// sampling.
    pub fn lower_half_mass<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> f64 {
        let below = (0..samples)
            .filter(|_| self.sample(rng).as_fraction() < 0.5)
            .count();
        below as f64 / samples as f64
    }
}

impl fmt::Display for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Pareto sample mapped into `[0, 1)`.
///
/// The paper uses a Pareto distribution with PDF `k a^k / x^{k+1}` over the
/// key space.  We sample a Pareto variable with scale `a = 0.5`, shift it to
/// start at zero and condition on the unit interval (truncated inverse-CDF
/// sampling), which concentrates keys near the lower end of the key space —
/// the larger the shape parameter, the stronger the concentration, matching
/// the ordering `P0.5 < P1.0 < P1.5` of skew in the paper's experiments.
fn pareto_fraction<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    assert!(shape > 0.0, "Pareto shape must be positive");
    const SCALE: f64 = 0.5;
    // CDF of the shifted Pareto: F(t) = 1 - (a / (a + t))^k.
    let f1 = 1.0 - (SCALE / (SCALE + 1.0)).powf(shape);
    let u: f64 = rng.gen::<f64>() * f1;
    let x = SCALE * ((1.0 - u).powf(-1.0 / shape) - 1.0);
    x.clamp(0.0, 1.0 - 1e-12)
}

/// Standard normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a Zipf-ranked term id and maps it to the key-space position of that
/// term in a lexicographically sorted vocabulary.
///
/// Terms are laid out in `[0, 1)` in rank-scrambled lexicographic positions
/// (a deterministic pseudo-random permutation of ranks), so popular terms
/// cluster at arbitrary positions of the key space rather than all at one
/// end — mimicking an inverted-file vocabulary where frequent terms are
/// spread alphabetically but the *mass* is concentrated on few terms.
fn zipf_term_fraction<R: Rng + ?Sized>(vocabulary: usize, exponent: f64, rng: &mut R) -> f64 {
    let rank = zipf_rank(vocabulary, exponent, rng);
    // Deterministic permutation of the rank to a vocabulary slot: a simple
    // multiplicative hash keeps the mapping stable across calls.
    let slot = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % vocabulary as u64;
    // Composite (term, posting) keys: the posting-specific offset spreads the
    // entries of one term over the term's slot of the key space, which keeps
    // the distribution clustered and Zipf-skewed while remaining splittable
    // (real inverted-file keys are (term, document) pairs for the same
    // reason).
    let jitter: f64 = rng.gen::<f64>();
    (slot as f64 + jitter) / vocabulary as f64
}

/// Samples a rank from a Zipf distribution over `1..=n` with the given
/// exponent, by inverse transform over the precomputed normaliser.
pub fn zipf_rank<R: Rng + ?Sized>(n: usize, exponent: f64, rng: &mut R) -> usize {
    assert!(n > 0);
    // Harmonic normaliser; for the sizes used here a direct sum is cheap and
    // exact enough.  (Cached by callers that sample in bulk via ZipfSampler.)
    let h: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(exponent)).sum();
    let target = rng.gen::<f64>() * h;
    let mut acc = 0.0;
    for i in 1..=n {
        acc += 1.0 / (i as f64).powf(exponent);
        if acc >= target {
            return i;
        }
    }
    n
}

/// A Zipf sampler with cached cumulative weights for bulk sampling.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `1..=n` with the given exponent.
    pub fn new(n: usize, exponent: f64) -> ZipfSampler {
        assert!(n > 0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(exponent);
            cumulative.push(acc);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|probe| probe.partial_cmp(&target).expect("no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_suite_has_six_workloads_with_unique_labels() {
        let suite = Distribution::paper_suite();
        assert_eq!(suite.len(), 6);
        let labels: Vec<String> = suite.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["U", "P0.5", "P1.0", "P1.5", "N", "A"]);
    }

    #[test]
    fn all_samples_lie_in_the_key_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in Distribution::paper_suite() {
            for _ in 0..500 {
                let k = dist.sample(&mut rng);
                let x = k.as_fraction();
                assert!((0.0..1.0).contains(&x), "{dist}: {x}");
            }
        }
    }

    #[test]
    fn uniform_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let mass = Distribution::Uniform.lower_half_mass(20_000, &mut rng);
        assert!((mass - 0.5).abs() < 0.02, "mass {mass}");
    }

    #[test]
    fn pareto_is_skewed_towards_zero_and_more_so_for_larger_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mass_p05 = Distribution::Pareto { shape: 0.5 }.lower_half_mass(20_000, &mut rng);
        let mass_p15 = Distribution::Pareto { shape: 1.5 }.lower_half_mass(20_000, &mut rng);
        assert!(mass_p05 > 0.6, "P0.5 should be skewed: {mass_p05}");
        assert!(mass_p15 > 0.7, "P1.5 should be more skewed: {mass_p15}");
        assert!(
            mass_p15 > mass_p05,
            "larger shape must concentrate more mass near zero: {mass_p15} vs {mass_p05}"
        );
    }

    #[test]
    fn normal_concentrates_around_the_mean() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = Distribution::Normal {
            mean: 0.5,
            std_dev: 0.05,
        };
        let keys = dist.sample_many(20_000, &mut rng);
        let in_3_sigma = keys
            .iter()
            .filter(|k| (k.as_fraction() - 0.5).abs() < 0.15)
            .count();
        assert!(in_3_sigma as f64 / keys.len() as f64 > 0.99);
        let mean: f64 = keys.iter().map(|k| k.as_fraction()).sum::<f64>() / keys.len() as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn text_keys_cluster_on_few_term_slots() {
        let mut rng = StdRng::seed_from_u64(5);
        let vocabulary = 1000usize;
        let dist = Distribution::Text {
            vocabulary,
            exponent: 1.0,
        };
        let keys = dist.sample_many(5_000, &mut rng);
        // Keys themselves are (term, posting) composites and thus distinct …
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        assert!(unique.len() > 4_900, "keys should be almost all distinct");
        // … but their *term slots* follow a Zipf law: few slots carry a large
        // share of the mass.
        let mut slot_counts = vec![0usize; vocabulary];
        for k in &keys {
            let slot = ((k.as_fraction() * vocabulary as f64) as usize).min(vocabulary - 1);
            slot_counts[slot] += 1;
        }
        slot_counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_10: usize = slot_counts.iter().take(10).sum();
        assert!(
            top_10 as f64 > 0.2 * keys.len() as f64,
            "the 10 hottest terms should carry >20% of the postings, got {top_10}"
        );
        let occupied = slot_counts.iter().filter(|&&c| c > 0).count();
        assert!(
            occupied < vocabulary,
            "some slots must stay empty under Zipf sampling"
        );
    }

    #[test]
    fn zipf_rank_one_is_most_frequent() {
        let mut rng = StdRng::seed_from_u64(6);
        let sampler = ZipfSampler::new(100, 1.0);
        let mut counts = vec![0usize; 101];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[90]);
        // simple sampler agrees with the cached one on the support
        for _ in 0..100 {
            let r = zipf_rank(100, 1.0, &mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn zipf_sampler_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let sampler = ZipfSampler::new(5, 1.2);
        assert_eq!(sampler.len(), 5);
        for _ in 0..1000 {
            let r = sampler.sample(&mut rng);
            assert!((1..=5).contains(&r));
        }
    }
}
