//! Query workload generation.
//!
//! The PlanetLab experiment of Section 5 has every peer issue a search every
//! 1–2 minutes during the query phase; queries target existing keys so that
//! the success rate can be measured.  This module generates point-lookup and
//! range-query workloads over a given key population.

use pgrid_core::key::Key;
use rand::seq::SliceRandom;
use rand::Rng;

/// A single query of the workload.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Query {
    /// Exact-key lookup.
    Lookup(Key),
    /// Inclusive range query.
    Range(Key, Key),
}

impl Query {
    /// Whether this is a range query.
    pub fn is_range(&self) -> bool {
        matches!(self, Query::Range(_, _))
    }
}

/// Configuration of a query workload.
#[derive(Copy, Clone, Debug)]
pub struct QueryWorkloadConfig {
    /// Total number of queries to generate.
    pub count: usize,
    /// Fraction of range queries (the rest are point lookups).
    pub range_fraction: f64,
    /// Width of range queries as a fraction of the key space.
    pub range_width: f64,
    /// Fraction of point lookups that target keys known to exist (the rest
    /// are drawn uniformly, and may miss).
    pub existing_fraction: f64,
}

impl Default for QueryWorkloadConfig {
    fn default() -> Self {
        QueryWorkloadConfig {
            count: 1000,
            range_fraction: 0.2,
            range_width: 0.02,
            existing_fraction: 0.9,
        }
    }
}

/// Generates a query workload over the given key population.
///
/// # Panics
///
/// Panics if `keys` is empty while `existing_fraction > 0`.
pub fn generate_queries<R: Rng + ?Sized>(
    config: &QueryWorkloadConfig,
    keys: &[Key],
    rng: &mut R,
) -> Vec<Query> {
    assert!(
        !(keys.is_empty() && config.existing_fraction > 0.0),
        "cannot target existing keys of an empty population"
    );
    (0..config.count)
        .map(|_| {
            if rng.gen_bool(config.range_fraction.clamp(0.0, 1.0)) {
                let start: f64 = rng.gen::<f64>() * (1.0 - config.range_width);
                Query::Range(
                    Key::from_fraction(start),
                    Key::from_fraction(start + config.range_width),
                )
            } else if rng.gen_bool(config.existing_fraction.clamp(0.0, 1.0)) {
                Query::Lookup(*keys.choose(rng).expect("non-empty key population"))
            } else {
                Query::Lookup(Key::from_fraction(rng.gen::<f64>()))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population() -> Vec<Key> {
        (0..100)
            .map(|i| Key::from_fraction(i as f64 / 100.0))
            .collect()
    }

    #[test]
    fn workload_respects_count_and_mix() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = QueryWorkloadConfig {
            count: 2000,
            range_fraction: 0.25,
            ..QueryWorkloadConfig::default()
        };
        let queries = generate_queries(&config, &population(), &mut rng);
        assert_eq!(queries.len(), 2000);
        let ranges = queries.iter().filter(|q| q.is_range()).count();
        assert!((ranges as f64 / 2000.0 - 0.25).abs() < 0.05);
    }

    #[test]
    fn range_queries_are_well_formed() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = QueryWorkloadConfig {
            count: 500,
            range_fraction: 1.0,
            range_width: 0.05,
            ..QueryWorkloadConfig::default()
        };
        for q in generate_queries(&config, &population(), &mut rng) {
            match q {
                Query::Range(lo, hi) => {
                    assert!(lo <= hi);
                    assert!((hi.as_fraction() - lo.as_fraction() - 0.05).abs() < 1e-9);
                }
                Query::Lookup(_) => panic!("expected only ranges"),
            }
        }
    }

    #[test]
    fn existing_lookups_come_from_the_population() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = population();
        let config = QueryWorkloadConfig {
            count: 500,
            range_fraction: 0.0,
            existing_fraction: 1.0,
            ..QueryWorkloadConfig::default()
        };
        for q in generate_queries(&config, &pop, &mut rng) {
            match q {
                Query::Lookup(k) => assert!(pop.contains(&k)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_population_with_existing_lookups_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        generate_queries(&QueryWorkloadConfig::default(), &[], &mut rng);
    }
}
