//! # pgrid-workload
//!
//! Workload generators for the reproduction of *"Indexing data-oriented
//! overlay networks"* (VLDB 2005): the key distributions of the paper's
//! simulation study (uniform, Pareto, normal, text-retrieval), a synthetic
//! document corpus for the peer-to-peer inverted-file scenario, and query
//! workload generation for the deployment experiments.
//!
//! ```
//! use pgrid_workload::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // The six workloads of the paper's Figure 6.
//! for dist in Distribution::paper_suite() {
//!     let keys = dist.sample_many(100, &mut rng);
//!     assert_eq!(keys.len(), 100);
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod distributions;
pub mod queries;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::corpus::{prefix_key_range, term_key, Corpus, CorpusConfig, Document};
    pub use crate::distributions::{Distribution, ZipfSampler};
    pub use crate::queries::{generate_queries, Query, QueryWorkloadConfig};
}
