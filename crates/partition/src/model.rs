//! Mean-value (fluid) model of the partitioning process.
//!
//! Section 3.1 of the paper analyses the random pairwise interactions as a
//! Markov process using mean value analysis.  This module integrates the
//! corresponding fluid ODE system numerically for arbitrary decision
//! probabilities, which serves three purposes:
//!
//! 1. it provides the **MVA** curve of Figures 4/5 (the model evaluated with
//!    the exact load ratio `p`);
//! 2. it provides the **SAM** curve (the model evaluated with the
//!    probabilities averaged over the binomial sampling distribution of the
//!    estimated ratio `p̂`), exposing the systematic sampling bias of
//!    Section 3.2;
//! 3. it acts as an independent oracle against which the discrete
//!    Monte-Carlo simulation of [`crate::discrete`] is validated in tests.

use crate::probabilities::{
    bernstein, corrected_effective, effective_probabilities, DecisionProbabilities,
};

/// Outcome of the fluid model for one bisection step.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FluidOutcome {
    /// Final fraction of peers decided for partition `0`.
    pub minority_fraction: f64,
    /// Interactions initiated per peer until no undecided peers remain.
    pub interactions_per_peer: f64,
}

/// Integrates the general fluid ODE system
///
/// ```text
/// dU/ds = -(1 + (2*alpha - 1) U)
/// dA/ds = alpha*U + q0*B + (1 - q1)*A
/// dB/ds = alpha*U + q1*A + (1 - q0)*B
/// ```
///
/// (`A` = fraction decided for `0`, `B` = for `1`, `U` undecided, `s`
/// interactions per peer, `q0` = probability of deciding `0` on meeting a
/// `1`-decided peer, `q1` analogously) from `U = 1, A = B = 0` until the
/// undecided fraction reaches zero, using classical fourth-order
/// Runge–Kutta with a fixed step.
pub fn fluid_outcome3(alpha: f64, q0: f64, q1: f64) -> FluidOutcome {
    fluid_outcome3_with_step(alpha, q0, q1, 1e-4)
}

/// Like [`fluid_outcome3`] with an explicit integration step; coarse steps
/// are used internally where only a few digits of precision are needed.
pub fn fluid_outcome3_with_step(alpha: f64, q0: f64, q1: f64, h: f64) -> FluidOutcome {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range");
    assert!((0.0..=1.0).contains(&q0), "q0 out of range");
    assert!((0.0..=1.0).contains(&q1), "q1 out of range");
    assert!(h > 0.0 && h < 0.1, "step out of range");

    let deriv = |state: [f64; 3]| -> [f64; 3] {
        let [u, a, b] = state;
        let u = u.max(0.0);
        [
            -(1.0 + (2.0 * alpha - 1.0) * u),
            alpha * u + q0 * b + (1.0 - q1) * a,
            alpha * u + q1 * a + (1.0 - q0) * b,
        ]
    };

    let mut state = [1.0f64, 0.0, 0.0];
    let mut s = 0.0f64;
    // The process always ends within a few interactions per peer; a generous
    // bound keeps the loop finite even for extreme alpha.
    let s_max = 50.0;
    while state[0] > 0.0 && s < s_max {
        let k1 = deriv(state);
        let k2 = deriv(add(state, scale(k1, h / 2.0)));
        let k3 = deriv(add(state, scale(k2, h / 2.0)));
        let k4 = deriv(add(state, scale(k3, h)));
        let delta = scale(
            add(add(k1, scale(k2, 2.0)), add(scale(k3, 2.0), k4)),
            h / 6.0,
        );
        if state[0] + delta[0] < 0.0 {
            // Linear interpolation of the crossing time within this step.
            let frac = state[0] / -delta[0];
            state = add(state, scale(delta, frac));
            s += h * frac;
            state[0] = 0.0;
            break;
        }
        state = add(state, delta);
        s += h;
    }

    // Normalise away the tiny numerical drift of A + B at termination.
    let total = state[1] + state[2];
    FluidOutcome {
        minority_fraction: if total > 0.0 { state[1] / total } else { 0.0 },
        interactions_per_peer: s,
    }
}

/// Fluid model with `q1 = 1` (partition `0` is the minority side); this is
/// the form used in the analysis of [`crate::probabilities`].
pub fn fluid_outcome(alpha: f64, q: f64) -> FluidOutcome {
    fluid_outcome3(alpha, q, 1.0)
}

fn add(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: [f64; 3], c: f64) -> [f64; 3] {
    [a[0] * c, a[1] * c, a[2] * c]
}

/// The MVA model: expected outcome of one AEP bisection when every peer
/// knows the exact load ratio `p` (fraction of keys on side `0`).
pub fn mva_outcome(p: f64) -> FluidOutcome {
    let d = DecisionProbabilities::for_ratio(p.clamp(1e-6, 1.0 - 1e-6));
    if d.mirrored {
        fluid_outcome3(d.alpha, 1.0, d.q)
    } else {
        fluid_outcome3(d.alpha, d.q, 1.0)
    }
}

/// The SAM model: expected outcome of one AEP bisection when every peer
/// estimates `p` from `sample_size` Bernoulli samples and plugs the estimate
/// into the (uncorrected) probability functions.  The model uses the
/// expectation of the effective probabilities over the binomial sampling
/// distribution, which is where the systematic bias of Section 3.2 enters.
pub fn sam_outcome(p: f64, sample_size: usize) -> FluidOutcome {
    let (alpha, q0, q1) = expected_effective(p, sample_size, false);
    fluid_outcome3(alpha, q0, q1)
}

/// Like [`sam_outcome`] but with the bias-corrected probability functions
/// (the model counterpart of the COR strategy).
pub fn cor_outcome(p: f64, sample_size: usize) -> FluidOutcome {
    let (alpha, q0, q1) = expected_effective(p, sample_size, true);
    fluid_outcome3(alpha, q0, q1)
}

/// Expectation of the effective decision probabilities over the binomial
/// sampling distribution `p̂ = Binomial(s, p) / s`.
pub fn expected_effective(p: f64, sample_size: usize, corrected: bool) -> (f64, f64, f64) {
    assert!(sample_size > 0);
    assert!(p > 0.0 && p < 1.0);
    let s = sample_size;
    if corrected {
        (
            bernstein_dyn(&|x| corrected_effective(x, s).0, p, s).clamp(1e-6, 1.0),
            bernstein_dyn(&|x| corrected_effective(x, s).1, p, s).clamp(0.0, 1.0),
            bernstein_dyn(&|x| corrected_effective(x, s).2, p, s).clamp(0.0, 1.0),
        )
    } else {
        (
            bernstein(|x| effective_probabilities(x).0, p, s).clamp(1e-6, 1.0),
            bernstein(|x| effective_probabilities(x).1, p, s).clamp(0.0, 1.0),
            bernstein(|x| effective_probabilities(x).2, p, s).clamp(0.0, 1.0),
        )
    }
}

/// Bernstein smoothing for closures (the [`bernstein`] helper takes plain
/// function pointers).
fn bernstein_dyn(f: &dyn Fn(f64) -> f64, x: f64, s: usize) -> f64 {
    (0..=s)
        .map(|j| binomial_pmf(s, j, x) * f(j as f64 / s as f64))
        .sum()
}

/// Binomial probability mass function, computed in log space for stability.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    assert!(k <= n);
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let mut log = 0.0;
    for i in 0..k {
        log += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (log + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probabilities::P_CRITICAL;

    #[test]
    fn fluid_model_matches_closed_forms() {
        // With the solved probabilities the fluid model must reproduce the
        // requested minority fraction for the whole range of p.
        for i in 1..25 {
            let p = i as f64 / 50.0;
            let out = mva_outcome(p);
            assert!(
                (out.minority_fraction - p).abs() < 2e-3,
                "p = {p}, got {}",
                out.minority_fraction
            );
        }
    }

    #[test]
    fn mva_handles_mirrored_ratios() {
        let out = mva_outcome(0.7);
        assert!((out.minority_fraction - 0.7).abs() < 2e-3);
    }

    #[test]
    fn interactions_are_constant_above_the_critical_ratio() {
        let a = mva_outcome(0.35).interactions_per_peer;
        let b = mva_outcome(0.45).interactions_per_peer;
        let c = mva_outcome(0.5).interactions_per_peer;
        assert!((a - std::f64::consts::LN_2).abs() < 1e-3);
        assert!((a - b).abs() < 1e-3);
        assert!((b - c).abs() < 1e-3);
    }

    #[test]
    fn interactions_grow_below_the_critical_ratio() {
        let at_crit = mva_outcome(P_CRITICAL).interactions_per_peer;
        let skewed = mva_outcome(0.1).interactions_per_peer;
        let very_skewed = mva_outcome(0.03).interactions_per_peer;
        assert!(skewed > at_crit);
        assert!(very_skewed > skewed);
    }

    #[test]
    fn sampling_introduces_bias_that_correction_reduces() {
        // With a 10-key sample the probability functions are non-linear
        // enough for the outcome to shift visibly; the corrected variant
        // must reduce that shift.  Averaged over several ratios to keep the
        // comparison robust against individual near-zero crossings.
        let ratios = [0.3, 0.35, 0.4, 0.45];
        let bias_sam: f64 = ratios
            .iter()
            .map(|&p| (sam_outcome(p, 10).minority_fraction - p).abs())
            .sum();
        let bias_cor: f64 = ratios
            .iter()
            .map(|&p| (cor_outcome(p, 10).minority_fraction - p).abs())
            .sum();
        assert!(
            bias_sam > 5e-3,
            "expected a visible sampling bias, got {bias_sam}"
        );
        assert!(
            bias_cor < bias_sam,
            "correction should reduce bias: {bias_cor} vs {bias_sam}"
        );
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10usize, 0.3f64), (25, 0.5), (5, 0.05)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
    }

    #[test]
    fn expected_probabilities_reduce_to_exact_for_huge_samples() {
        let p = 0.42;
        let (a, q0, q1) = expected_effective(p, 5000, false);
        let (ea, eq0, eq1) = effective_probabilities(p);
        assert!((a - ea).abs() < 1e-2);
        assert!((q0 - eq0).abs() < 1e-2);
        assert!((q1 - eq1).abs() < 1e-2);
    }

    #[test]
    fn eager_limit_is_symmetric() {
        let out = fluid_outcome3(1.0, 1.0, 1.0);
        assert!((out.minority_fraction - 0.5).abs() < 1e-6);
        assert!((out.interactions_per_peer - std::f64::consts::LN_2).abs() < 1e-3);
    }
}
