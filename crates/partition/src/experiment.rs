//! Batch experiment runner for the partitioning-level figures.
//!
//! Section 3.3 of the paper validates the analytical model by numerical
//! simulation of five models — MVA, SAM, AEP, COR and AUT — for `n = 1000`
//! peers, sample size `s = 10` and 100 repetitions per load ratio `p`.
//! Figure 4 reports the deviation of the mean number of minority-side peers
//! from the expected value `n * p`; Figure 5 reports the mean total number
//! of interactions.  This module reproduces both series.

use crate::discrete::{simulate_split, Knowledge, SplitConfig, Strategy};
use crate::model::{mva_outcome, sam_outcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default experiment parameters of Section 3.3.
pub const DEFAULT_PEERS: usize = 1000;
/// Default sample size of Section 3.3.
pub const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Default repetitions of Section 3.3.
pub const DEFAULT_REPETITIONS: usize = 100;

/// Aggregated result of one model at one load ratio.
#[derive(Copy, Clone, Debug, Default)]
pub struct ModelStats {
    /// Mean number of minority-side (`0`) peers minus the expectation `n*p`
    /// (the quantity plotted in Figure 4).
    pub mean_deviation: f64,
    /// Standard deviation of the minority-side count across repetitions.
    pub std_deviation: f64,
    /// Mean total number of interactions (the quantity of Figure 5).
    pub mean_interactions: f64,
}

/// One row of the Figure 4 / Figure 5 data: all five models evaluated at the
/// same load ratio.
#[derive(Copy, Clone, Debug)]
pub struct PartitioningRow {
    /// The load ratio `p` of the minority side.
    pub p: f64,
    /// Mean-value model with exact knowledge of `p`.
    pub mva: ModelStats,
    /// Mean-value model with sampled knowledge (uncorrected).
    pub sam: ModelStats,
    /// Discrete simulation of AEP with sampled knowledge (uncorrected).
    pub aep: ModelStats,
    /// Discrete simulation of AEP with corrected probabilities.
    pub cor: ModelStats,
    /// Discrete simulation of autonomous partitioning.
    pub aut: ModelStats,
}

/// Configuration of a Figure 4/5 sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Number of peers per bisection (`n`).
    pub n_peers: usize,
    /// Sample size for estimating `p`.
    pub sample_size: usize,
    /// Repetitions per `(model, p)` point.
    pub repetitions: usize,
    /// The load ratios to evaluate.
    pub ratios: Vec<f64>,
    /// Base random seed (each repetition derives its own seed from it).
    pub seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n_peers: DEFAULT_PEERS,
            sample_size: DEFAULT_SAMPLE_SIZE,
            repetitions: DEFAULT_REPETITIONS,
            ratios: (1..=10).map(|i| i as f64 * 0.05).collect(),
            seed: 0xA11CE,
        }
    }
}

/// Runs the sweep and returns one row per requested load ratio.
pub fn run_sweep(config: &SweepConfig) -> Vec<PartitioningRow> {
    config
        .ratios
        .iter()
        .map(|&p| run_point(config, p))
        .collect()
}

/// Evaluates all five models at one load ratio.
pub fn run_point(config: &SweepConfig, p: f64) -> PartitioningRow {
    let n = config.n_peers;
    let expected = n as f64 * p;

    // Analytical models: deterministic, no repetitions needed.
    let mva_out = mva_outcome(p);
    let mva = ModelStats {
        mean_deviation: n as f64 * mva_out.minority_fraction - expected,
        std_deviation: 0.0,
        mean_interactions: n as f64 * mva_out.interactions_per_peer,
    };
    let sam_out = sam_outcome(p, config.sample_size);
    let sam = ModelStats {
        mean_deviation: n as f64 * sam_out.minority_fraction - expected,
        std_deviation: 0.0,
        mean_interactions: n as f64 * sam_out.interactions_per_peer,
    };

    let aep = run_discrete(config, p, Strategy::Aep, 1);
    let cor = run_discrete(config, p, Strategy::AepCorrected, 2);
    let aut = run_discrete(config, p, Strategy::Autonomous, 3);

    PartitioningRow {
        p,
        mva,
        sam,
        aep,
        cor,
        aut,
    }
}

fn run_discrete(config: &SweepConfig, p: f64, strategy: Strategy, salt: u64) -> ModelStats {
    let n = config.n_peers;
    let expected = n as f64 * p;
    let split_config = SplitConfig {
        n_peers: n,
        p,
        knowledge: Knowledge::Sampled(config.sample_size),
        strategy,
    };
    let mut counts = Vec::with_capacity(config.repetitions);
    let mut interactions = Vec::with_capacity(config.repetitions);
    for rep in 0..config.repetitions {
        let seed = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt * 1_000_003 + rep as u64)
            .wrapping_add((p * 1e6) as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = simulate_split(&split_config, &mut rng);
        counts.push(out.n0 as f64);
        interactions.push(out.interactions as f64);
    }
    let mean_count = mean(&counts);
    ModelStats {
        mean_deviation: mean_count - expected,
        std_deviation: std_dev(&counts, mean_count),
        mean_interactions: mean(&interactions),
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn std_dev(xs: &[f64], mean: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SweepConfig {
        SweepConfig {
            n_peers: 300,
            sample_size: 10,
            repetitions: 15,
            ratios: vec![0.2, 0.35, 0.5],
            seed: 99,
        }
    }

    #[test]
    fn sweep_produces_one_row_per_ratio() {
        let rows = run_sweep(&small_config());
        assert_eq!(rows.len(), 3);
        assert!((rows[0].p - 0.2).abs() < 1e-12);
        assert!((rows[2].p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mva_deviation_is_negligible() {
        let rows = run_sweep(&small_config());
        for row in &rows {
            assert!(
                row.mva.mean_deviation.abs() < 1.5,
                "MVA deviation should be ~0, got {} at p = {}",
                row.mva.mean_deviation,
                row.p
            );
        }
    }

    #[test]
    fn discrete_models_land_near_expectation() {
        let rows = run_sweep(&small_config());
        for row in &rows {
            // all deviations are bounded by a few percent of n
            for (name, stats) in [("aep", row.aep), ("cor", row.cor), ("aut", row.aut)] {
                assert!(
                    stats.mean_deviation.abs() < 0.08 * 300.0,
                    "{name} deviates too much at p = {}: {}",
                    row.p,
                    stats.mean_deviation
                );
                assert!(stats.mean_interactions > 0.0);
            }
        }
    }

    #[test]
    fn aep_interactions_do_not_depend_on_p_above_critical() {
        let config = SweepConfig {
            ratios: vec![0.35, 0.45, 0.5],
            repetitions: 10,
            n_peers: 400,
            ..small_config()
        };
        let rows = run_sweep(&config);
        let base = rows[0].mva.mean_interactions;
        for row in &rows {
            assert!(
                (row.mva.mean_interactions - base).abs() < 0.05 * base,
                "interactions should be ~constant above the critical ratio"
            );
        }
    }

    #[test]
    fn aut_costs_more_than_aep_for_balanced_ratios() {
        let config = SweepConfig {
            ratios: vec![0.5],
            repetitions: 10,
            ..small_config()
        };
        let rows = run_sweep(&config);
        assert!(rows[0].aut.mean_interactions > rows[0].aep.mean_interactions);
    }
}
