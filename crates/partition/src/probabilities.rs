//! Decision probabilities of adaptive eager partitioning (AEP).
//!
//! Section 3 of the paper derives, from a Markov mean-value model of the
//! random pairwise interactions, the probabilities that make the final
//! fraction of peers deciding for the lower partition match the data load
//! ratio `p`:
//!
//! * `alpha(p)` — probability of performing a *balanced split* when two
//!   undecided peers meet;
//! * the probability of an undecided peer deciding for the **minority**
//!   partition (`0`) when it contacts a peer that has already decided for
//!   the **majority** partition (`1`).  The paper expresses this via a
//!   parameter `beta`; we use the probability itself and call it `q` to keep
//!   the algebra transparent (`q` plays the role of `1/beta`).
//!
//! ## Derivation used here
//!
//! The paper's closed forms are re-derived from the same interaction rules
//! in the continuum (fluid) limit.  Write `U`, `A`, `B` for the fractions of
//! undecided, `0`-decided and `1`-decided peers and let `s` denote
//! interactions per peer.  The AEP rules give
//!
//! ```text
//! dU/ds = -(1 + (2*alpha - 1) U)
//! dA/ds = alpha*U + q*B
//! dB/ds = alpha*U + A + (1 - q)*B
//! ```
//!
//! For `alpha = 1` the process finishes at `s* = ln 2` **independently of
//! `p`** (the paper makes the same observation below its Eq. 1), and the
//! final minority fraction is
//!
//! ```text
//! p = 1 - (1 - 2^{-q}) / q                                   (cf. Eq. 2)
//! ```
//!
//! which spans `[1 - ln 2, 1/2]` for `q` in `[0, 1]`.  Exactly as in the
//! paper, ratios more skewed than `p < 1 - ln 2 ≈ 0.3069` cannot be reached
//! with balanced splits alone; there `q = 0` and the balanced-split
//! probability is reduced instead, giving (with `k = 2*alpha - 1`)
//!
//! ```text
//! p = (k + 1) / (2k) * (1 - ln(1 + k)/k)                      (cf. Eq. 4)
//! s* = ln(1 + k) / k
//! ```
//!
//! Both relations are monotone and are inverted numerically by bisection.
//!
//! ## Sampling-error correction
//!
//! Peers estimate `p` from `s` local key samples, so the probabilities are
//! evaluated at a binomially distributed `p̂`.  Because `alpha` and `q` are
//! non-linear, `E[q(p̂)] ≠ q(p)`: a second-order Taylor expansion gives the
//! systematic bias `q''(p) * p(1-p) / (2s)` (the paper's Eq. 7), which the
//! corrected probabilities of [`DecisionProbabilities::corrected`] subtract
//! (Eqs. 9/10).

/// The smallest minority load fraction reachable with balanced splits
/// (`alpha = 1`): `1 - ln 2`.
pub const P_CRITICAL: f64 = 1.0 - std::f64::consts::LN_2;

/// Decision probabilities used by an AEP peer for one bisection step,
/// normalised so that partition `0` is the minority side (`p <= 1/2`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DecisionProbabilities {
    /// Probability of a balanced split when two undecided peers meet.
    pub alpha: f64,
    /// Probability of deciding for the minority partition when contacting a
    /// peer that already decided for the majority partition.
    pub q: f64,
    /// Whether the caller's partition `0` is actually the majority side and
    /// the roles of `0` and `1` must be swapped when applying the rules.
    pub mirrored: bool,
}

/// Final minority fraction produced by the fluid model when `alpha = 1` and
/// the minority-decision probability is `q in [0, 1]`.
pub fn p_from_q(q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
    if q < 1e-9 {
        return P_CRITICAL;
    }
    1.0 - (1.0 - 2f64.powf(-q)) / q
}

/// Final minority fraction produced by the fluid model when `q = 0` and the
/// balanced-split probability is `alpha in (0, 1]`.
pub fn p_from_alpha(alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
    let k = 2.0 * alpha - 1.0;
    if k.abs() < 1e-6 {
        // Series expansion around alpha = 1/2 (k = 0):
        // p = (k+1)/(2k) * (k/2 - k^2/3 + k^3/4 - ...) = 1/4 + k/12 + O(k^2)
        return 0.25 + k / 12.0;
    }
    (k + 1.0) / (2.0 * k) * (1.0 - (1.0 + k).ln() / k)
}

/// Expected number of interactions initiated per peer until every peer has
/// decided, as a function of the balanced-split probability.
pub fn interactions_per_peer(alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
    let k = 2.0 * alpha - 1.0;
    if k.abs() < 1e-6 {
        // lim_{k->0} ln(1+k)/k = 1
        return 1.0 - k / 2.0;
    }
    (1.0 + k).ln() / k
}

/// Inverts [`p_from_q`] by bisection: the `q` that produces minority
/// fraction `p`, for `p in [P_CRITICAL, 1/2]`.
pub fn solve_q(p: f64) -> f64 {
    assert!(
        (P_CRITICAL - 1e-12..=0.5 + 1e-12).contains(&p),
        "p out of range for the alpha = 1 branch: {p}"
    );
    bisect(|q| p_from_q(q) - p, 0.0, 1.0)
}

/// Inverts [`p_from_alpha`] by bisection: the `alpha` that produces minority
/// fraction `p`, for `p in (0, P_CRITICAL]`.
pub fn solve_alpha(p: f64) -> f64 {
    assert!(
        p > 0.0 && p <= P_CRITICAL + 1e-12,
        "p out of range for the q = 0 branch: {p}"
    );
    bisect(|a| p_from_alpha(a) - p, 1e-9, 1.0)
}

/// Monotone bisection root finder on `[lo, hi]` for a function with
/// `f(lo) <= 0 <= f(hi)` (clamps if the root lies outside due to rounding).
fn bisect<F: Fn(f64) -> f64>(f: F, mut lo: f64, mut hi: f64) -> f64 {
    if f(lo) > 0.0 {
        return lo;
    }
    if f(hi) < 0.0 {
        return hi;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) <= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

impl DecisionProbabilities {
    /// Computes the AEP probabilities for a partition whose **lower** half
    /// holds a fraction `p in (0, 1)` of the data keys.
    ///
    /// For `p > 1/2` the minority is the upper half; the returned
    /// probabilities are computed for the mirrored ratio and flagged with
    /// [`DecisionProbabilities::mirrored`] so callers can swap the roles of
    /// the two sides when applying the interaction rules.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn for_ratio(p: f64) -> DecisionProbabilities {
        assert!(p > 0.0 && p < 1.0, "p must lie strictly inside (0, 1): {p}");
        let (p_min, mirrored) = if p <= 0.5 {
            (p, false)
        } else {
            (1.0 - p, true)
        };
        if p_min >= P_CRITICAL {
            DecisionProbabilities {
                alpha: 1.0,
                q: solve_q(p_min),
                mirrored,
            }
        } else {
            DecisionProbabilities {
                alpha: solve_alpha(p_min),
                q: 0.0,
                mirrored,
            }
        }
    }

    /// The heuristic probabilities used by the "theory vs. heuristics"
    /// experiment (Figure 6d): qualitatively similar to the exact ones
    /// (monotone in `p`, matching the boundary values at `p = 0` and
    /// `p = 1/2`) but without the theoretical derivation — balanced splits
    /// always happen and the minority-decision probability is simply linear
    /// in `p`.
    pub fn heuristic(p: f64) -> DecisionProbabilities {
        assert!(p > 0.0 && p < 1.0, "p must lie strictly inside (0, 1): {p}");
        let (p_min, mirrored) = if p <= 0.5 {
            (p, false)
        } else {
            (1.0 - p, true)
        };
        DecisionProbabilities {
            alpha: 1.0,
            q: (2.0 * p_min).clamp(0.0, 1.0),
            mirrored,
        }
    }

    /// Sampling-bias corrected probabilities.
    ///
    /// When the ratio is estimated from `sample_size` Bernoulli samples the
    /// non-linearity of the probability functions introduces the systematic
    /// bias `f''(p) * p(1-p) / (2s)` derived in the paper's Eq. 7, which its
    /// Eqs. 9/10 cancel with a second-order Taylor correction.  Because our
    /// probability functions have a kink at the critical ratio (where the
    /// Taylor correction misbehaves), the correction is implemented in the
    /// numerically robust *bootstrap* form
    ///
    /// ```text
    /// f_corr(p̂) = 2 f(p̂) - E_{p' ~ Binomial(s, p̂)/s}[ f(p') ]
    /// ```
    ///
    /// which subtracts the estimated smoothing bias directly and reduces to
    /// the paper's Taylor correction for smooth `f` (the inner expectation
    /// is the degree-`s` Bernstein polynomial of `f`).
    pub fn corrected(p: f64, sample_size: usize) -> DecisionProbabilities {
        assert!(sample_size > 0, "sample size must be positive");
        let mirrored = p > 0.5;
        let (alpha, q0, q1) = corrected_effective(p, sample_size);
        DecisionProbabilities {
            alpha,
            q: if mirrored { q1 } else { q0 },
            mirrored,
        }
    }

    /// Probability that, upon contacting a peer decided for the majority
    /// side, the initiator decides for the minority side (already mirrored).
    pub fn minority_decision_probability(&self) -> f64 {
        self.q
    }
}

/// The *effective* decision probabilities as a function of the raw estimate
/// `x in (0, 1)` of the fraction of keys on side `0`:
/// `(alpha, q0, q1)` where `q0` is the probability of deciding side `0` when
/// meeting a peer decided for side `1`, and `q1` the probability of deciding
/// side `1` when meeting a peer decided for side `0`.
///
/// For `x <= 1/2` side `0` is the minority (`q0 = q(x)`, `q1 = 1`); for
/// `x > 1/2` the roles are mirrored.  These are exactly the functions a peer
/// evaluates at its own estimate during the discrete process, so they are
/// the right objects to bias-correct.
pub fn effective_probabilities(x: f64) -> (f64, f64, f64) {
    let x = x.clamp(1e-3, 1.0 - 1e-3);
    if x <= 0.5 {
        (alpha_of_p(x), q_of_p(x), 1.0)
    } else {
        (alpha_of_p(1.0 - x), 1.0, q_of_p(1.0 - x))
    }
}

/// Heuristic counterpart of [`effective_probabilities`] (Figure 6d):
/// balanced splits always, minority-decision probability linear in the
/// estimated minority fraction.
pub fn heuristic_effective(x: f64) -> (f64, f64, f64) {
    let x = x.clamp(1e-3, 1.0 - 1e-3);
    if x <= 0.5 {
        (1.0, (2.0 * x).clamp(0.0, 1.0), 1.0)
    } else {
        (1.0, 1.0, (2.0 * (1.0 - x)).clamp(0.0, 1.0))
    }
}

/// Bias-corrected effective probabilities for an estimate obtained from
/// `sample_size` Bernoulli samples (see
/// [`DecisionProbabilities::corrected`]).
///
/// A peer only ever evaluates the probability functions at the grid points
/// `j / s` of its sample, so the correction amounts to choosing the values
/// `g_j` used at those grid points such that the *expectation*
/// `E[g(p̂)] = Σ_j Binom(s, p)(j) g_j` reproduces the exact function `f(p)`
/// as closely as the `[0, 1]` probability constraint allows.  The values are
/// found by the classical iterated-Bernstein inversion
/// `g ← g + (f - B_s[g])` evaluated at the grid points, with projection onto
/// `[0, 1]` after every step.  For smooth `f` the first iteration is exactly
/// the second-order Taylor correction of the paper's Eqs. 9/10.
pub fn corrected_effective(x: f64, sample_size: usize) -> (f64, f64, f64) {
    assert!(sample_size > 0);
    let grid = corrected_grid_cached(sample_size);
    // Snap the estimate to the nearest grid point (estimates are always of
    // the form j / s, but callers may pass slightly perturbed values).
    let j = ((x.clamp(0.0, 1.0) * sample_size as f64).round() as usize).min(sample_size);
    grid[j]
}

/// Cached version of [`corrected_grid`]: the grid only depends on the sample
/// size and is evaluated once per interaction in the simulators, so it is
/// memoised process-wide.
pub fn corrected_grid_cached(sample_size: usize) -> std::sync::Arc<Vec<(f64, f64, f64)>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type Grid = Arc<Vec<(f64, f64, f64)>>;
    static CACHE: OnceLock<Mutex<HashMap<usize, Grid>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(found) = cache.lock().expect("grid cache poisoned").get(&sample_size) {
        return Arc::clone(found);
    }
    let computed = Arc::new(corrected_grid(sample_size));
    cache
        .lock()
        .expect("grid cache poisoned")
        .insert(sample_size, Arc::clone(&computed));
    computed
}

/// Corrected grid values for all `j / s`.
///
/// The correction proceeds in two stages:
///
/// 1. **Bernstein inversion** of the minority-decision probabilities `q0`
///    and `q1` (iterated `g ← g + (f - B_s[g])` with projection onto
///    `[0, 1]`), which removes the smoothing bias wherever the probability
///    constraint allows;
/// 2. **outcome-targeted adjustment of `alpha`**: whatever bias remains
///    (because `q0`/`q1` are pinned at `0`/`1` over part of the range) is
///    cancelled by tuning the balanced-split probability so that the fluid
///    model, driven with the binomially averaged corrected grid, reproduces
///    the identity `outcome(p) = p` over the whole range of ratios.
///    Reducing `alpha` shifts decisions towards the interactions with
///    already-decided peers, which pull towards the majority side, so this
///    is an effective second knob.
pub fn corrected_grid(sample_size: usize) -> Vec<(f64, f64, f64)> {
    let s = sample_size;
    let nodes: Vec<f64> = (0..=s).map(|j| j as f64 / s as f64).collect();
    let exact: Vec<(f64, f64, f64)> = nodes.iter().map(|&x| effective_probabilities(x)).collect();
    let mut g = exact.clone();

    // Stage 1: Bernstein inversion of q0 and q1 (and alpha as a starting
    // point; it gets re-tuned in stage 2).
    for _ in 0..60 {
        let smoothed: Vec<(f64, f64, f64)> =
            nodes.iter().map(|&x| bernstein_grid(&g, s, x)).collect();
        for j in 0..=s {
            g[j].0 = (g[j].0 + (exact[j].0 - smoothed[j].0)).clamp(1e-6, 1.0);
            g[j].1 = (g[j].1 + (exact[j].1 - smoothed[j].1)).clamp(0.0, 1.0);
            g[j].2 = (g[j].2 + (exact[j].2 - smoothed[j].2)).clamp(0.0, 1.0);
        }
    }

    // Stage 2: outcome-targeted tuning of alpha against the fluid model.
    let fluid = |alpha: f64, q0: f64, q1: f64| {
        crate::model::fluid_outcome3_with_step(
            alpha.clamp(1e-6, 1.0),
            q0.clamp(0.0, 1.0),
            q1.clamp(0.0, 1.0),
            2e-3,
        )
        .minority_fraction
    };
    let probes: Vec<f64> = (1..=24).map(|i| 0.02 * i as f64).collect();
    for _ in 0..25 {
        let mut node_error = vec![0.0f64; s + 1];
        let mut node_weight = vec![0.0f64; s + 1];
        for &p in &probes {
            let (alpha_bar, q0_bar, q1_bar) = bernstein_grid(&g, s, p);
            let outcome = fluid(alpha_bar, q0_bar, q1_bar);
            let error = outcome - p;
            // Sensitivity of the outcome to the averaged alpha, by central
            // difference; skip probes where alpha has no leverage.
            let delta = 0.02f64.min(alpha_bar - 1e-6).max(1e-3);
            let hi = fluid((alpha_bar + delta).min(1.0), q0_bar, q1_bar);
            let lo = fluid((alpha_bar - delta).max(1e-6), q0_bar, q1_bar);
            let sensitivity = (hi - lo) / (2.0 * delta);
            if sensitivity.abs() < 1e-3 {
                continue;
            }
            let desired_shift = -error / sensitivity;
            for j in 0..=s {
                let w = binomial_weight(s, j, p);
                node_error[j] += w * desired_shift;
                node_weight[j] += w;
            }
        }
        for j in 0..=s {
            if node_weight[j] > 1e-9 {
                let step = 0.6 * node_error[j] / node_weight[j];
                g[j].0 = (g[j].0 + step).clamp(1e-6, 1.0);
            }
        }
    }
    g
}

/// Evaluates the Bernstein (binomial-expectation) operator of a node grid at
/// an arbitrary ratio `x`.
fn bernstein_grid(g: &[(f64, f64, f64)], s: usize, x: f64) -> (f64, f64, f64) {
    let mut acc = (0.0, 0.0, 0.0);
    for (j, val) in g.iter().enumerate() {
        let w = binomial_weight(s, j, x);
        acc.0 += w * val.0;
        acc.1 += w * val.1;
        acc.2 += w * val.2;
    }
    acc
}

fn binomial_weight(n: usize, k: usize, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let mut log = 0.0;
    for i in 0..k {
        log += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (log + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Degree-`s` Bernstein smoothing of `f` at `x`, i.e. the expectation of
/// `f(j/s)` for `j ~ Binomial(s, x)`.
pub fn bernstein(f: fn(f64) -> f64, x: f64, s: usize) -> f64 {
    let x = x.clamp(0.0, 1.0);
    let mut total = 0.0;
    // log-space binomial pmf for numerical stability
    for j in 0..=s {
        let mut log = 0.0;
        for i in 0..j {
            log += ((s - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        let pmf = if x <= 0.0 {
            if j == 0 {
                1.0
            } else {
                0.0
            }
        } else if x >= 1.0 {
            if j == s {
                1.0
            } else {
                0.0
            }
        } else {
            (log + j as f64 * x.ln() + (s - j) as f64 * (1.0 - x).ln()).exp()
        };
        total += pmf * f(j as f64 / s as f64);
    }
    total
}

/// The exact minority-decision probability as a function of `p`, defined on
/// all of `(0, 1/2]` (zero below the critical ratio).
pub fn q_of_p(p: f64) -> f64 {
    if p >= P_CRITICAL {
        solve_q(p.min(0.5))
    } else {
        0.0
    }
}

/// The exact balanced-split probability as a function of `p`, defined on all
/// of `(0, 1/2]` (one above the critical ratio).
pub fn alpha_of_p(p: f64) -> f64 {
    if p >= P_CRITICAL {
        1.0
    } else {
        solve_alpha(p)
    }
}

/// Numerical second derivative of [`q_of_p`], used by the bias correction
/// and reported for completeness.
pub fn q_second_derivative(p: f64) -> f64 {
    second_derivative(q_of_p, p)
}

/// Numerical second derivative of [`alpha_of_p`]; this is the function
/// plotted in the paper's Figure 3, which grows rapidly for small `p` and
/// explains why sampling errors hurt most for very skewed partitions.
pub fn alpha_second_derivative(p: f64) -> f64 {
    second_derivative(alpha_of_p, p)
}

/// Central-difference second derivative with clamping near the domain
/// boundaries of `(0, 1/2]`.
fn second_derivative<F: Fn(f64) -> f64>(f: F, p: f64) -> f64 {
    let h = 1e-4;
    let p = p.clamp(2.0 * h, 0.5 - 2.0 * h);
    (f(p + h) - 2.0 * f(p) + f(p - h)) / (h * h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn critical_ratio_value() {
        assert!((P_CRITICAL - 0.30685281944).abs() < 1e-9);
    }

    #[test]
    fn boundary_values() {
        // q = 1 reproduces the symmetric eager case.
        assert!((p_from_q(1.0) - 0.5).abs() < 1e-12);
        // q -> 0 approaches the critical ratio.
        assert!((p_from_q(0.0) - P_CRITICAL).abs() < 1e-12);
        assert!((p_from_q(1e-8) - P_CRITICAL).abs() < 1e-6);
        // alpha = 1 joins the two branches continuously.
        assert!((p_from_alpha(1.0) - P_CRITICAL).abs() < 1e-12);
        // alpha -> 0 approaches p = 0.
        assert!(p_from_alpha(1e-6) < 1e-3);
    }

    #[test]
    fn interactions_per_peer_boundaries() {
        assert!((interactions_per_peer(1.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((interactions_per_peer(0.5) - 1.0).abs() < 1e-5);
        // fewer balanced splits => more interactions needed
        assert!(interactions_per_peer(0.1) > interactions_per_peer(0.5));
        assert!(interactions_per_peer(0.5) > interactions_per_peer(1.0));
    }

    #[test]
    fn solvers_invert_the_closed_forms() {
        for i in 1..50 {
            let q = i as f64 / 50.0;
            let p = p_from_q(q);
            assert!((solve_q(p) - q).abs() < 1e-9, "q = {q}");
        }
        for i in 1..50 {
            let alpha = i as f64 / 50.0;
            let p = p_from_alpha(alpha);
            assert!((solve_alpha(p) - alpha).abs() < 1e-7, "alpha = {alpha}");
        }
    }

    #[test]
    fn for_ratio_selects_the_right_branch() {
        let mild = DecisionProbabilities::for_ratio(0.4);
        assert_eq!(mild.alpha, 1.0);
        assert!(mild.q > 0.0 && mild.q < 1.0);
        assert!(!mild.mirrored);

        let skewed = DecisionProbabilities::for_ratio(0.1);
        assert!(skewed.alpha < 1.0);
        assert_eq!(skewed.q, 0.0);

        let balanced = DecisionProbabilities::for_ratio(0.5);
        assert!((balanced.q - 1.0).abs() < 1e-9);
        assert_eq!(balanced.alpha, 1.0);
    }

    #[test]
    fn mirrored_ratios_swap_roles() {
        let a = DecisionProbabilities::for_ratio(0.3);
        let b = DecisionProbabilities::for_ratio(0.7);
        assert!(!a.mirrored);
        assert!(b.mirrored);
        assert!((a.alpha - b.alpha).abs() < 1e-12);
        assert!((a.q - b.q).abs() < 1e-12);
    }

    #[test]
    fn q_and_alpha_are_monotone_in_p() {
        let mut last_q = -1.0;
        let mut last_alpha = -1.0;
        for i in 1..100 {
            let p = i as f64 / 200.0;
            let q = q_of_p(p);
            let a = alpha_of_p(p);
            assert!(q + 1e-12 >= last_q, "q must be non-decreasing at p = {p}");
            assert!(
                a + 1e-9 >= last_alpha,
                "alpha must be non-decreasing at p = {p}"
            );
            last_q = q;
            last_alpha = a;
        }
    }

    #[test]
    fn alpha_second_derivative_peaks_near_the_critical_ratio() {
        // Figure 3 of the paper shows that the curvature of the
        // balanced-split probability becomes extreme in the region where the
        // algorithm switches regimes, which is what makes sampling errors so
        // damaging there.  In our parametrisation the switch happens at the
        // critical ratio 1 - ln 2.
        let near_critical = alpha_second_derivative(0.29);
        let moderate = alpha_second_derivative(0.1);
        assert!(
            near_critical.abs() > 5.0 * moderate.abs(),
            "near critical {near_critical}, moderate {moderate}"
        );
    }

    #[test]
    fn effective_probabilities_mirror_cleanly() {
        let (a_lo, q0_lo, q1_lo) = effective_probabilities(0.3);
        let (a_hi, q0_hi, q1_hi) = effective_probabilities(0.7);
        assert!((a_lo - a_hi).abs() < 1e-12);
        assert!((q0_lo - q1_hi).abs() < 1e-12);
        assert!((q1_lo - q0_hi).abs() < 1e-12);
        assert_eq!(q1_lo, 1.0);
    }

    #[test]
    fn bernstein_smoothing_is_exact_for_linear_functions() {
        let f = |x: f64| 0.25 + 0.5 * x;
        for &x in &[0.1, 0.35, 0.5, 0.8] {
            assert!((bernstein(f, x, 10) - f(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn corrected_grid_is_well_formed_and_differs_from_exact() {
        let s = 10;
        let grid = corrected_grid_cached(s);
        assert_eq!(grid.len(), s + 1);
        let mut total_difference = 0.0;
        for (j, &(alpha, q0, q1)) in grid.iter().enumerate() {
            assert!(
                alpha > 0.0 && alpha <= 1.0,
                "alpha out of range at node {j}"
            );
            assert!((0.0..=1.0).contains(&q0), "q0 out of range at node {j}");
            assert!((0.0..=1.0).contains(&q1), "q1 out of range at node {j}");
            let exact = effective_probabilities(j as f64 / s as f64);
            total_difference +=
                (alpha - exact.0).abs() + (q0 - exact.1).abs() + (q1 - exact.2).abs();
        }
        // The correction has to actually change something to be able to
        // cancel the sampling bias (the cancellation itself is verified at
        // the outcome level in the model tests).
        assert!(
            total_difference > 0.05,
            "correction did nothing: {total_difference}"
        );
    }

    #[test]
    fn corrected_grid_cache_returns_identical_values() {
        let a = corrected_grid_cached(7);
        let b = corrected_grid_cached(7);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn heuristic_matches_exact_at_the_boundaries_only() {
        let h = DecisionProbabilities::heuristic(0.5);
        assert!((h.q - 1.0).abs() < 1e-12);
        let h = DecisionProbabilities::heuristic(0.4);
        let exact = DecisionProbabilities::for_ratio(0.4);
        assert!(
            (h.q - exact.q).abs() > 0.01,
            "heuristic should differ from exact"
        );
    }

    proptest! {
        #[test]
        fn prop_probabilities_in_range(p in 0.001f64..0.999) {
            let d = DecisionProbabilities::for_ratio(p);
            prop_assert!(d.alpha > 0.0 && d.alpha <= 1.0);
            prop_assert!((0.0..=1.0).contains(&d.q));
        }

        #[test]
        fn prop_closed_forms_are_consistent(p in 0.01f64..0.5) {
            // Whatever branch is chosen, plugging the solved probability back
            // into its closed form recovers p.
            let d = DecisionProbabilities::for_ratio(p);
            let recovered = if d.alpha >= 1.0 - 1e-12 {
                p_from_q(d.q)
            } else {
                p_from_alpha(d.alpha)
            };
            prop_assert!((recovered - p).abs() < 1e-6);
        }

        #[test]
        fn prop_corrected_stays_in_range(p in 0.02f64..0.98, s in 1usize..16) {
            let d = DecisionProbabilities::corrected(p, s);
            prop_assert!(d.alpha > 0.0 && d.alpha <= 1.0);
            prop_assert!((0.0..=1.0).contains(&d.q));
        }
    }
}
