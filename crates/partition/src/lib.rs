//! # pgrid-partition
//!
//! Decentralized key space partitioning — the algorithmic core of
//! *"Indexing data-oriented overlay networks"* (VLDB 2005).
//!
//! The problem solved here (Section 3 of the paper): a set of peers holding
//! data keys from a common partition must each decide, through random
//! pairwise interactions only, which half of the partition to become
//! responsible for, such that
//!
//! 1. the *fraction* of peers choosing each half matches the fraction of
//!    data keys in that half (proportional replication), and
//! 2. every peer ends up knowing at least one peer of the other half
//!    (referential integrity), so routing tables can be built.
//!
//! The crate provides:
//!
//! * [`probabilities`] — the adaptive-eager-partitioning (AEP) decision
//!   probabilities `alpha(p)` and `q(p)`, their closed forms, numerical
//!   inversion, the critical ratio `1 - ln 2`, and the sampling-bias
//!   corrected variants (Eqs. 9/10);
//! * [`model`] — the mean-value (fluid) model of the interaction process
//!   (MVA and SAM curves of Figures 4/5);
//! * [`discrete`] — discrete Monte-Carlo simulation of a single bisection
//!   for the eager, autonomous, AEP, corrected-AEP and heuristic strategies;
//! * [`experiment`] — batch sweeps reproducing the Figure 4/5 series.
//!
//! ```
//! use pgrid_partition::prelude::*;
//!
//! // The exact decision probabilities for a 70/30 skewed partition …
//! let probs = DecisionProbabilities::for_ratio(0.3);
//! assert!(probs.alpha < 1.0 && probs.q == 0.0);
//!
//! // … realise the requested ratio in the fluid model.
//! let outcome = fluid_outcome(probs.alpha, probs.q);
//! assert!((outcome.minority_fraction - 0.3).abs() < 1e-3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod discrete;
pub mod experiment;
pub mod model;
pub mod probabilities;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::discrete::{simulate_split, Knowledge, SplitConfig, SplitOutcome, Strategy};
    pub use crate::experiment::{run_sweep, PartitioningRow, SweepConfig};
    pub use crate::model::{fluid_outcome, mva_outcome, sam_outcome, FluidOutcome};
    pub use crate::probabilities::{
        alpha_of_p, alpha_second_derivative, q_of_p, DecisionProbabilities, P_CRITICAL,
    };
}
