//! Discrete Monte-Carlo simulation of a single decentralized bisection.
//!
//! Peers take *discrete* decisions based on the probabilities of
//! [`crate::probabilities`] instead of adding mean-value contributions, which
//! is exactly what the paper's Section 3.3 simulates to validate the Markov
//! model (the AEP / COR / AUT curves of Figures 4 and 5).

use crate::probabilities::{corrected_effective, effective_probabilities, heuristic_effective};
use rand::Rng;

/// Which partitioning strategy a simulation run uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Eager partitioning: only correct for `p = 1/2`; peers always perform
    /// balanced splits and always decide opposite to a decided peer.
    Eager,
    /// Autonomous partitioning: peers pre-decide according to their estimate
    /// of `p` and then search for a reference to the other side.
    Autonomous,
    /// Adaptive eager partitioning with the exact probability functions.
    Aep,
    /// Adaptive eager partitioning with the sampling-bias corrected
    /// probability functions (Eqs. 9/10).
    AepCorrected,
    /// Adaptive eager partitioning with the heuristic probability functions
    /// of the Figure 6d experiment.
    Heuristic,
}

/// How peers learn the load ratio `p`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Knowledge {
    /// Every peer knows the exact ratio.
    Exact,
    /// Every peer estimates the ratio independently from this many Bernoulli
    /// samples of its locally stored keys.
    Sampled(usize),
}

/// Configuration of one bisection simulation.
#[derive(Copy, Clone, Debug)]
pub struct SplitConfig {
    /// Number of peers participating in the bisection.
    pub n_peers: usize,
    /// True fraction of the partition's data keys falling into side `0`.
    pub p: f64,
    /// How peers know `p`.
    pub knowledge: Knowledge,
    /// The strategy to simulate.
    pub strategy: Strategy,
}

/// Result of one bisection simulation.
#[derive(Copy, Clone, Debug, Default)]
pub struct SplitOutcome {
    /// Peers that decided for side `0`.
    pub n0: usize,
    /// Peers that decided for side `1`.
    pub n1: usize,
    /// Total interactions initiated.
    pub interactions: usize,
    /// Interactions that changed nothing (undecided pair without a balanced
    /// split, or an autonomous peer meeting an unhelpful same-side peer).
    pub wasted_interactions: usize,
    /// Whether every peer ended up knowing at least one peer of the other
    /// side (the referential-integrity requirement of Section 3).
    pub referential_integrity: bool,
}

impl SplitOutcome {
    /// Fraction of peers that decided for side `0`.
    pub fn fraction0(&self) -> f64 {
        self.n0 as f64 / (self.n0 + self.n1).max(1) as f64
    }
}

#[derive(Clone, Debug)]
struct SimPeer {
    /// `None` while undecided, otherwise the chosen side.
    side: Option<bool>,
    /// Estimated fraction of keys on side `0`.
    estimate: f64,
    /// Index of a known peer on the opposite side.
    reference: Option<usize>,
}

/// Per-initiator decision probabilities in *absolute* side terms.
#[derive(Copy, Clone, Debug)]
struct SideProbabilities {
    /// Balanced-split probability.
    alpha: f64,
    /// Probability of deciding side `0` when meeting a peer decided for `1`.
    decide0_on_1: f64,
    /// Probability of deciding side `1` when meeting a peer decided for `0`.
    decide1_on_0: f64,
}

fn side_probabilities(strategy: Strategy, estimate: f64, sample_size: usize) -> SideProbabilities {
    let p = estimate.clamp(1e-3, 1.0 - 1e-3);
    match strategy {
        Strategy::Eager => SideProbabilities {
            alpha: 1.0,
            decide0_on_1: 1.0,
            decide1_on_0: 1.0,
        },
        Strategy::Autonomous => SideProbabilities {
            // not used by the autonomous process, provided for completeness
            alpha: 0.0,
            decide0_on_1: p,
            decide1_on_0: 1.0 - p,
        },
        Strategy::Aep | Strategy::AepCorrected | Strategy::Heuristic => {
            let (alpha, q0, q1) = match strategy {
                Strategy::Aep => effective_probabilities(p),
                Strategy::AepCorrected => corrected_effective(
                    p,
                    if sample_size == usize::MAX {
                        1
                    } else {
                        sample_size
                    },
                ),
                Strategy::Heuristic => heuristic_effective(p),
                _ => unreachable!(),
            };
            SideProbabilities {
                alpha,
                decide0_on_1: q0,
                decide1_on_0: q1,
            }
        }
    }
}

/// Runs one bisection simulation.
///
/// # Panics
///
/// Panics if the configuration has fewer than two peers or `p` outside
/// `(0, 1)`.
pub fn simulate_split<R: Rng + ?Sized>(config: &SplitConfig, rng: &mut R) -> SplitOutcome {
    assert!(config.n_peers >= 2, "need at least two peers");
    assert!(config.p > 0.0 && config.p < 1.0, "p must lie in (0, 1)");

    let sample_size = match config.knowledge {
        Knowledge::Exact => usize::MAX,
        Knowledge::Sampled(s) => {
            assert!(s > 0, "sample size must be positive");
            s
        }
    };

    let mut peers: Vec<SimPeer> = (0..config.n_peers)
        .map(|_| SimPeer {
            side: None,
            estimate: match config.knowledge {
                Knowledge::Exact => config.p,
                Knowledge::Sampled(s) => {
                    let hits = (0..s).filter(|_| rng.gen_bool(config.p)).count();
                    hits as f64 / s as f64
                }
            },
            reference: None,
        })
        .collect();

    match config.strategy {
        Strategy::Autonomous => simulate_autonomous(config, sample_size, &mut peers, rng),
        _ => simulate_adaptive(config, sample_size, &mut peers, rng),
    }
}

/// The AEP-style process: undecided peers initiate interactions until every
/// peer has decided (referential integrity holds by construction, but it is
/// still verified and reported).
fn simulate_adaptive<R: Rng + ?Sized>(
    config: &SplitConfig,
    sample_size: usize,
    peers: &mut [SimPeer],
    rng: &mut R,
) -> SplitOutcome {
    let n = peers.len();
    let mut undecided: Vec<usize> = (0..n).collect();
    let mut interactions = 0usize;
    let mut wasted = 0usize;

    while !undecided.is_empty() {
        // Pick a random undecided initiator.
        let ui = rng.gen_range(0..undecided.len());
        let initiator = undecided[ui];
        // Pick a random contact among all other peers.
        let mut target = rng.gen_range(0..n - 1);
        if target >= initiator {
            target += 1;
        }
        interactions += 1;

        let probs = side_probabilities(config.strategy, peers[initiator].estimate, sample_size);

        match peers[target].side {
            None => {
                if target != initiator && rng.gen_bool(probs.alpha.clamp(0.0, 1.0)) {
                    // Balanced split: assign the two sides randomly between
                    // the two peers and let them reference each other.
                    let initiator_takes_0 = rng.gen_bool(0.5);
                    peers[initiator].side = Some(!initiator_takes_0);
                    peers[target].side = Some(initiator_takes_0);
                    peers[initiator].reference = Some(target);
                    peers[target].reference = Some(initiator);
                    // Remove both from the undecided pool.
                    undecided.swap_remove(ui);
                    if let Some(pos) = undecided.iter().position(|&x| x == target) {
                        undecided.swap_remove(pos);
                    }
                } else {
                    wasted += 1;
                }
            }
            Some(target_side) => {
                let decide_opposite_prob = if target_side {
                    // target decided for side 1
                    probs.decide0_on_1
                } else {
                    probs.decide1_on_0
                };
                let takes_opposite = rng.gen_bool(decide_opposite_prob.clamp(0.0, 1.0));
                if takes_opposite {
                    peers[initiator].side = Some(!target_side);
                    peers[initiator].reference = Some(target);
                } else {
                    peers[initiator].side = Some(target_side);
                    // Same side as the target: adopt the target's reference
                    // to the other partition (guaranteed to exist for any
                    // decided peer under the adaptive strategies).
                    peers[initiator].reference = peers[target].reference;
                }
                undecided.swap_remove(ui);
            }
        }
    }

    finish(peers, interactions, wasted)
}

/// The autonomous process: every peer decides in advance according to its
/// estimate and then keeps initiating interactions until it knows a peer of
/// the other side, either directly or through a referral by a same-side peer
/// that already holds such a reference.
fn simulate_autonomous<R: Rng + ?Sized>(
    _config: &SplitConfig,
    _sample_size: usize,
    peers: &mut [SimPeer],
    rng: &mut R,
) -> SplitOutcome {
    let n = peers.len();
    for peer in peers.iter_mut() {
        let p = peer.estimate.clamp(0.0, 1.0);
        peer.side = Some(!rng.gen_bool(p)); // side 0 with probability p
    }
    // Degenerate outcome: everyone picked the same side, references are
    // impossible.  Report it honestly instead of looping forever.
    let n0 = peers.iter().filter(|p| p.side == Some(false)).count();
    if n0 == 0 || n0 == n {
        return finish(peers, 0, 0);
    }

    let mut needing: Vec<usize> = (0..n).collect();
    let mut interactions = 0usize;
    let mut wasted = 0usize;
    while !needing.is_empty() {
        let ui = rng.gen_range(0..needing.len());
        let initiator = needing[ui];
        let mut target = rng.gen_range(0..n - 1);
        if target >= initiator {
            target += 1;
        }
        interactions += 1;
        if peers[target].side != peers[initiator].side {
            // Found a peer of the other side: both learn about each other.
            peers[initiator].reference = Some(target);
            needing.swap_remove(ui);
            if peers[target].reference.is_none() {
                peers[target].reference = Some(initiator);
                if let Some(pos) = needing.iter().position(|&x| x == target) {
                    needing.swap_remove(pos);
                }
            }
        } else if let Some(r) = peers[target].reference {
            // Same side, but the target can refer us to its own reference.
            peers[initiator].reference = Some(r);
            needing.swap_remove(ui);
        } else {
            wasted += 1;
        }
    }

    finish(peers, interactions, wasted)
}

fn finish(peers: &[SimPeer], interactions: usize, wasted: usize) -> SplitOutcome {
    let n0 = peers.iter().filter(|p| p.side == Some(false)).count();
    let n1 = peers.iter().filter(|p| p.side == Some(true)).count();
    let referential_integrity = peers.iter().all(|p| match (p.side, p.reference) {
        (Some(side), Some(r)) => peers[r].side == Some(!side),
        _ => false,
    });
    SplitOutcome {
        n0,
        n1,
        interactions,
        wasted_interactions: wasted,
        referential_integrity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(strategy: Strategy, p: f64, knowledge: Knowledge, seed: u64) -> SplitOutcome {
        let config = SplitConfig {
            n_peers: 1000,
            p,
            knowledge,
            strategy,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        simulate_split(&config, &mut rng)
    }

    fn mean_fraction(strategy: Strategy, p: f64, knowledge: Knowledge, reps: u64) -> f64 {
        (0..reps)
            .map(|s| run(strategy, p, knowledge, s).fraction0())
            .sum::<f64>()
            / reps as f64
    }

    #[test]
    fn eager_splits_evenly() {
        let mean = mean_fraction(Strategy::Eager, 0.5, Knowledge::Exact, 20);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn all_peers_decide_and_hold_references() {
        for strategy in [
            Strategy::Eager,
            Strategy::Aep,
            Strategy::AepCorrected,
            Strategy::Heuristic,
        ] {
            let out = run(strategy, 0.4, Knowledge::Sampled(10), 7);
            assert_eq!(out.n0 + out.n1, 1000, "{strategy:?}");
            assert!(out.referential_integrity, "{strategy:?}");
            assert!(out.interactions >= 500, "{strategy:?}");
        }
    }

    #[test]
    fn aep_matches_target_ratio_with_exact_knowledge() {
        for &p in &[0.1, 0.25, 0.35, 0.45] {
            let mean = mean_fraction(Strategy::Aep, p, Knowledge::Exact, 30);
            assert!((mean - p).abs() < 0.02, "p = {p}, mean = {mean}");
        }
    }

    #[test]
    fn autonomous_matches_target_ratio() {
        for &p in &[0.1, 0.3, 0.5] {
            let mean = mean_fraction(Strategy::Autonomous, p, Knowledge::Sampled(10), 30);
            assert!((mean - p).abs() < 0.02, "p = {p}, mean = {mean}");
        }
    }

    #[test]
    fn autonomous_satisfies_referential_integrity() {
        let out = run(Strategy::Autonomous, 0.3, Knowledge::Sampled(10), 3);
        assert!(out.referential_integrity);
        assert_eq!(out.n0 + out.n1, 1000);
    }

    #[test]
    fn aep_uses_fewer_interactions_than_autonomous_for_moderate_p() {
        let aep: usize = (0..10u64)
            .map(|s| run(Strategy::Aep, 0.4, Knowledge::Sampled(10), s).interactions)
            .sum();
        let aut: usize = (0..10u64)
            .map(|s| run(Strategy::Autonomous, 0.4, Knowledge::Sampled(10), s).interactions)
            .sum();
        assert!(
            aep < aut,
            "AEP ({aep}) should need fewer interactions than AUT ({aut}) at p = 0.4"
        );
    }

    #[test]
    fn aep_interactions_blow_up_for_very_skewed_ratios() {
        let moderate = run(Strategy::Aep, 0.4, Knowledge::Exact, 1).interactions;
        let skewed = run(Strategy::Aep, 0.03, Knowledge::Exact, 1).interactions;
        assert!(
            skewed > 2 * moderate,
            "skewed ({skewed}) should cost much more than moderate ({moderate})"
        );
    }

    #[test]
    fn corrected_strategy_reduces_sampling_bias() {
        // With a small sample the plain AEP strategy systematically deviates
        // from the target ratio; the corrected strategy must deviate less.
        let p = 0.4;
        let reps = 120;
        let aep = mean_fraction(Strategy::Aep, p, Knowledge::Sampled(10), reps);
        let cor = mean_fraction(Strategy::AepCorrected, p, Knowledge::Sampled(10), reps);
        assert!(
            (cor - p).abs() < (aep - p).abs() + 1e-3,
            "corrected bias {} should not exceed uncorrected {}",
            (cor - p).abs(),
            (aep - p).abs()
        );
    }

    #[test]
    fn heuristic_probabilities_distort_the_ratio() {
        // The heuristic functions look plausible but do not realise the
        // requested ratio (the point of the Figure 6d experiment).
        let p = 0.35;
        let heuristic = mean_fraction(Strategy::Heuristic, p, Knowledge::Exact, 30);
        let exact = mean_fraction(Strategy::Aep, p, Knowledge::Exact, 30);
        assert!(
            (heuristic - p).abs() > (exact - p).abs() + 0.02,
            "heuristic {heuristic} should be visibly worse than exact {exact} at p = {p}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_single_peer() {
        let config = SplitConfig {
            n_peers: 1,
            p: 0.5,
            knowledge: Knowledge::Exact,
            strategy: Strategy::Aep,
        };
        let mut rng = StdRng::seed_from_u64(0);
        simulate_split(&config, &mut rng);
    }
}
