//! # pgrid
//!
//! Umbrella crate of the Rust reproduction of *"Indexing data-oriented
//! overlay networks"* (Aberer, Datta, Hauswirth, Schmidt — VLDB 2005).
//!
//! The repository implements the paper's trie-structured, order-preserving
//! overlay network (P-Grid), its decentralized parallel construction via
//! adaptive eager partitioning, and the evaluation apparatus needed to
//! regenerate every figure of the paper.  This crate simply re-exports the
//! individual building blocks so that applications can depend on a single
//! crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `pgrid-core` | keys, paths, routing tables, peer state, search, reference partitioner, balance metric, and the shared split/replicate/refer exchange engine ([`core::exchange`]) both runtimes delegate to |
//! | [`partition`] | `pgrid-partition` | AEP decision probabilities, mean-value models, discrete split simulation |
//! | [`workload`] | `pgrid-workload` | key distributions, synthetic corpus, query workloads |
//! | [`sim`] | `pgrid-sim` | whole-system construction simulator, sequential baseline, query evaluation |
//! | [`transport`] | `pgrid-transport` | pluggable frame transport: batch framing, deterministic loopback, `std::net` TCP |
//! | [`net`] | `pgrid-net` | message-level deployment runtime (generic over the transport, multi-index capable) and the PlanetLab-style experiment |
//! | [`scenario`] | `pgrid-scenario` | the composable experiment API: `Overlay` trait, declarative `Scenario` programs, one executor for every engine |
//! | [`cluster`] | `pgrid-cluster` | multi-process deployment: rendezvous coordinator, sharded peer-hosting workers, merged reports |
//!
//! See the repository-level `examples/` directory for runnable end-to-end
//! scenarios (`cargo run -p pgrid --example quickstart`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use pgrid_cluster as cluster;
pub use pgrid_core as core;
pub use pgrid_net as net;
pub use pgrid_partition as partition;
pub use pgrid_reactor as reactor;
pub use pgrid_scenario as scenario;
pub use pgrid_sim as sim;
pub use pgrid_transport as transport;
pub use pgrid_workload as workload;

/// One-stop prelude re-exporting the preludes of all member crates.
pub mod prelude {
    pub use pgrid_cluster::prelude::*;
    pub use pgrid_core::prelude::*;
    pub use pgrid_net::prelude::*;
    pub use pgrid_partition::prelude::*;
    pub use pgrid_reactor::prelude::*;
    pub use pgrid_scenario::prelude::*;
    pub use pgrid_sim::prelude::*;
    pub use pgrid_transport::prelude::*;
    pub use pgrid_workload::prelude::*;
}
