//! Length-prefixed batch framing.
//!
//! A *frame* is the unit a [`crate::Transport`] carries: one or more opaque
//! payloads (encoded `pgrid-net` messages) batched together with a
//! self-delimiting length prefix, so that a byte stream (TCP) can be cut
//! back into frames without inspecting the payloads.
//!
//! Wire layout, all integers big-endian:
//!
//! ```text
//! [u32 payload_len]                  length of everything after this field
//!   [u32 count]                      number of batched payloads
//!   count × ( [u32 len] [len bytes] )
//! ```
//!
//! The same bytes travel over every backend: the loopback transport hands
//! the frame over verbatim, the TCP backend writes it to the socket and
//! reassembles it on the other side with a [`FrameReader`] (which copes
//! with frames split across arbitrary read boundaries).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Upper bound on the encoded size of one frame (sanity check against
/// corrupted length prefixes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound on the number of payloads batched into one frame.
pub const MAX_BATCH_LEN: usize = 1 << 20;

/// Why a byte sequence could not be parsed as a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or the batch count
    /// exceeds [`MAX_BATCH_LEN`]); the stream is corrupt.
    Oversized(usize),
    /// The frame's internal structure is inconsistent with its length
    /// prefix.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds the size bound"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a batch of payloads into one self-delimiting frame.
///
/// # Panics
///
/// Panics if the batch violates the bounds the receiving side enforces
/// ([`MAX_FRAME_BYTES`] / [`MAX_BATCH_LEN`]) — encoding such a frame would
/// only get it rejected (or, past 4 GiB, silently corrupt the `u32` length
/// prefix) at the other end.  Callers with unbounded batches must split
/// them first, as the deployment runtime does.
pub fn encode_frame(payloads: &[Bytes]) -> Bytes {
    assert!(
        payloads.len() <= MAX_BATCH_LEN,
        "frame batch of {} payloads exceeds MAX_BATCH_LEN",
        payloads.len()
    );
    let body_len: usize = 4 + payloads.iter().map(|p| 4 + p.len()).sum::<usize>();
    assert!(
        body_len <= MAX_FRAME_BYTES,
        "frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
    );
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32(body_len as u32);
    buf.put_u32(payloads.len() as u32);
    for payload in payloads {
        buf.put_u32(payload.len() as u32);
        buf.put_slice(payload.as_slice());
    }
    buf.freeze()
}

/// Decodes one complete frame (as produced by [`encode_frame`]) back into
/// its payloads.
pub fn decode_frame(frame: &Bytes) -> Result<Vec<Bytes>, FrameError> {
    let mut data = frame.clone();
    if data.remaining() < 4 {
        return Err(FrameError::Malformed("missing length prefix"));
    }
    let body_len = data.get_u32() as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(body_len));
    }
    if data.remaining() != body_len {
        return Err(FrameError::Malformed(
            "length prefix disagrees with frame size",
        ));
    }
    if body_len < 4 {
        return Err(FrameError::Malformed("missing batch count"));
    }
    let count = data.get_u32() as usize;
    if count > MAX_BATCH_LEN {
        return Err(FrameError::Oversized(count));
    }
    let mut payloads = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(FrameError::Malformed("truncated payload length"));
        }
        let len = data.get_u32() as usize;
        if data.remaining() < len {
            return Err(FrameError::Malformed("truncated payload"));
        }
        // Zero-copy: the payload is a bounded view into the frame bytes.
        payloads.push(data.split_to(len));
    }
    if data.remaining() != 0 {
        return Err(FrameError::Malformed("trailing bytes after last payload"));
    }
    Ok(payloads)
}

/// Incremental frame reassembly over a byte stream.
///
/// Feed arbitrary chunks with [`FrameReader::extend`]; [`FrameReader::next_frame`]
/// yields each complete frame verbatim (length prefix included, ready for
/// [`decode_frame`]) as soon as all its bytes have arrived.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not yet consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Returns the next complete frame, `None` when more bytes are needed,
    /// or an error when the buffered prefix cannot be a valid frame (the
    /// stream should then be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let body_len =
            u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if body_len > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized(body_len));
        }
        let total = 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        let frame = Bytes::from(std::mem::replace(&mut self.buf, rest));
        Ok(Some(frame))
    }
}

/// Per-frame wire compression scheme.
///
/// Applied *outside* the frame layout: a backend that negotiates
/// compression on a link compresses the fully encoded frame bytes and marks
/// the wire record accordingly; the receiver decompresses back to the exact
/// original frame before it reaches [`decode_frame`].  The frame layout,
/// [`FrameReader`], and every non-negotiating backend are untouched.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Compression {
    /// No compression (the default — frames travel verbatim).
    #[default]
    None,
    /// Byte-wise run-length encoding with LEB128 varint token headers.
    /// Cheap and dependency-free; effective on large replicate batches,
    /// whose payloads repeat key prefixes and zero padding.
    Rle,
}

/// Compression policy of one transport: the scheme plus the threshold
/// below which frames are never worth compressing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FrameCodec {
    /// The scheme offered during link negotiation.
    pub compression: Compression,
    /// Frames smaller than this always travel raw.
    pub min_bytes: usize,
}

impl Default for FrameCodec {
    fn default() -> FrameCodec {
        FrameCodec::disabled()
    }
}

impl FrameCodec {
    /// Default size floor: headers dominate below this, so compression
    /// only burns CPU.
    pub const DEFAULT_MIN_BYTES: usize = 512;

    /// Codec that never compresses (the default everywhere).
    pub fn disabled() -> FrameCodec {
        FrameCodec {
            compression: Compression::None,
            min_bytes: FrameCodec::DEFAULT_MIN_BYTES,
        }
    }

    /// Codec offering RLE compression for frames of at least the default
    /// size floor.
    pub fn rle() -> FrameCodec {
        FrameCodec {
            compression: Compression::Rle,
            min_bytes: FrameCodec::DEFAULT_MIN_BYTES,
        }
    }

    /// Compresses one encoded frame, or `None` when the codec is off, the
    /// frame is below the size floor, or compression would not shrink it —
    /// in every `None` case the caller sends the frame raw.
    pub fn compress(&self, frame: &[u8]) -> Option<Vec<u8>> {
        match self.compression {
            Compression::None => None,
            Compression::Rle => {
                if frame.len() < self.min_bytes {
                    return None;
                }
                let compressed = rle_compress(frame);
                (compressed.len() < frame.len()).then_some(compressed)
            }
        }
    }

    /// Decompresses bytes produced by [`FrameCodec::compress`] back into
    /// the original frame.  Scheme-independent: the wire record says which
    /// scheme was used, and today there is only one.
    pub fn decompress(compressed: &[u8]) -> Result<Vec<u8>, FrameError> {
        rle_decompress(compressed, MAX_FRAME_BYTES + 4)
    }
}

/// Appends `value` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint starting at `*pos`, advancing it.
fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, FrameError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = data
            .get(*pos)
            .ok_or(FrameError::Malformed("truncated varint"))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(FrameError::Malformed("varint overflow"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Minimum run length worth a run token: a run token costs 2–3 bytes
/// (header varint + value), and breaking a literal in two adds another
/// header, so shorter runs are cheaper left inside the literal.
const RLE_MIN_RUN: usize = 4;

/// Token stream: each token is a varint header `h` whose low bit selects
/// the kind — `h & 1 == 1` is a run (`h >> 1` copies of the next byte),
/// `h & 1 == 0` a literal (`h >> 1` verbatim bytes follow).  Lengths are
/// never zero.
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i < data.len() {
        let mut run_end = i + 1;
        while run_end < data.len() && data[run_end] == data[i] {
            run_end += 1;
        }
        let run_len = run_end - i;
        if run_len >= RLE_MIN_RUN {
            if literal_start < i {
                let literal = &data[literal_start..i];
                put_varint(&mut out, (literal.len() as u64) << 1);
                out.extend_from_slice(literal);
            }
            put_varint(&mut out, ((run_len as u64) << 1) | 1);
            out.push(data[i]);
            literal_start = run_end;
        }
        i = run_end;
    }
    if literal_start < data.len() {
        let literal = &data[literal_start..];
        put_varint(&mut out, (literal.len() as u64) << 1);
        out.extend_from_slice(literal);
    }
    out
}

/// Inverse of [`rle_compress`]; `max_len` bounds the decoded size so a
/// corrupt header cannot balloon memory.
fn rle_decompress(data: &[u8], max_len: usize) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(data.len().min(max_len));
    let mut pos = 0usize;
    while pos < data.len() {
        let header = get_varint(data, &mut pos)?;
        let len = (header >> 1) as usize;
        if len == 0 {
            return Err(FrameError::Malformed("zero-length rle token"));
        }
        if out.len() + len > max_len {
            return Err(FrameError::Oversized(out.len() + len));
        }
        if header & 1 == 1 {
            let &value = data
                .get(pos)
                .ok_or(FrameError::Malformed("truncated rle run"))?;
            pos += 1;
            out.resize(out.len() + len, value);
        } else {
            let literal = data
                .get(pos..pos + len)
                .ok_or(FrameError::Malformed("truncated rle literal"))?;
            pos += len;
            out.extend_from_slice(literal);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(sizes: &[usize]) -> Vec<Bytes> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Bytes::from(vec![i as u8; n]))
            .collect()
    }

    #[test]
    fn frames_roundtrip() {
        for sizes in [vec![], vec![0], vec![1, 2, 3], vec![100, 0, 7]] {
            let batch = payloads(&sizes);
            let frame = encode_frame(&batch);
            assert_eq!(decode_frame(&frame).unwrap(), batch);
        }
    }

    #[test]
    fn reader_reassembles_split_frames() {
        let frames: Vec<Bytes> = (1..5)
            .map(|i| encode_frame(&payloads(&vec![i; i])))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(f.as_slice());
        }
        for chunk_size in [1usize, 2, 3, 7, 64, stream.len()] {
            let mut reader = FrameReader::new();
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.extend(chunk);
                while let Some(frame) = reader.next_frame().unwrap() {
                    got.push(frame);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk_size}");
            assert_eq!(reader.buffered(), 0);
        }
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let frame = encode_frame(&payloads(&[10, 20]));
        let mut reader = FrameReader::new();
        reader.extend(&frame.as_slice()[..frame.len() - 1]);
        assert_eq!(reader.next_frame().unwrap(), None);
        reader.extend(&frame.as_slice()[frame.len() - 1..]);
        assert_eq!(reader.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn rle_roundtrips_every_shape() {
        let mut mixed = Vec::new();
        for i in 0..2000u32 {
            mixed.push((i % 251) as u8);
            if i % 7 == 0 {
                mixed.extend(std::iter::repeat(0u8).take((i % 13) as usize));
            }
        }
        for data in [
            Vec::new(),
            vec![0u8; 1],
            vec![7u8; 10_000],
            (0..=255u8).collect::<Vec<u8>>(),
            mixed,
        ] {
            let compressed = rle_compress(&data);
            let back = rle_decompress(&compressed, data.len().max(1)).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn codec_compresses_runs_and_skips_noise() {
        let codec = FrameCodec::rle();
        // A replicate-batch-shaped frame: long zero padding compresses well.
        let padded = encode_frame(&[Bytes::from(vec![0u8; 4096])]);
        let compressed = codec.compress(padded.as_slice()).expect("compressible");
        assert!(compressed.len() < padded.len() / 8);
        assert_eq!(
            FrameCodec::decompress(&compressed).unwrap(),
            padded.as_slice()
        );
        // Incompressible bytes are declined, not inflated.
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let noisy = encode_frame(&[Bytes::from(noise)]);
        assert_eq!(codec.compress(noisy.as_slice()), None);
        // Below the size floor nothing is compressed, however repetitive.
        let small = encode_frame(&[Bytes::from(vec![0u8; 64])]);
        assert_eq!(codec.compress(small.as_slice()), None);
        // And the default codec never compresses at all.
        assert_eq!(FrameCodec::disabled().compress(padded.as_slice()), None);
    }

    #[test]
    fn corrupt_rle_streams_are_rejected() {
        // Zero-length token.
        assert!(rle_decompress(&[0u8], 1024).is_err());
        // Run past the output bound.
        let mut huge = Vec::new();
        put_varint(&mut huge, (1_000_000u64 << 1) | 1);
        huge.push(0xaa);
        assert!(matches!(
            rle_decompress(&huge, 1024),
            Err(FrameError::Oversized(_))
        ));
        // Truncated literal and truncated run value.
        let mut trunc = Vec::new();
        put_varint(&mut trunc, 8u64 << 1);
        trunc.extend_from_slice(&[1, 2, 3]);
        assert!(rle_decompress(&trunc, 1024).is_err());
        let mut run = Vec::new();
        put_varint(&mut run, (4u64 << 1) | 1);
        assert!(rle_decompress(&run, 1024).is_err());
    }

    #[test]
    fn corrupt_prefixes_are_rejected() {
        let mut reader = FrameReader::new();
        reader.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(reader.next_frame(), Err(FrameError::Oversized(_))));
        // decode_frame checks internal consistency too
        let frame = encode_frame(&payloads(&[4]));
        let mut bytes = frame.as_slice().to_vec();
        bytes.pop();
        let short = Bytes::from(bytes);
        assert!(decode_frame(&short).is_err());
    }
}
