//! Length-prefixed batch framing.
//!
//! A *frame* is the unit a [`crate::Transport`] carries: one or more opaque
//! payloads (encoded `pgrid-net` messages) batched together with a
//! self-delimiting length prefix, so that a byte stream (TCP) can be cut
//! back into frames without inspecting the payloads.
//!
//! Wire layout, all integers big-endian:
//!
//! ```text
//! [u32 payload_len]                  length of everything after this field
//!   [u32 count]                      number of batched payloads
//!   count × ( [u32 len] [len bytes] )
//! ```
//!
//! The same bytes travel over every backend: the loopback transport hands
//! the frame over verbatim, the TCP backend writes it to the socket and
//! reassembles it on the other side with a [`FrameReader`] (which copes
//! with frames split across arbitrary read boundaries).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Upper bound on the encoded size of one frame (sanity check against
/// corrupted length prefixes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound on the number of payloads batched into one frame.
pub const MAX_BATCH_LEN: usize = 1 << 20;

/// Why a byte sequence could not be parsed as a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`] (or the batch count
    /// exceeds [`MAX_BATCH_LEN`]); the stream is corrupt.
    Oversized(usize),
    /// The frame's internal structure is inconsistent with its length
    /// prefix.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds the size bound"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a batch of payloads into one self-delimiting frame.
///
/// # Panics
///
/// Panics if the batch violates the bounds the receiving side enforces
/// ([`MAX_FRAME_BYTES`] / [`MAX_BATCH_LEN`]) — encoding such a frame would
/// only get it rejected (or, past 4 GiB, silently corrupt the `u32` length
/// prefix) at the other end.  Callers with unbounded batches must split
/// them first, as the deployment runtime does.
pub fn encode_frame(payloads: &[Bytes]) -> Bytes {
    assert!(
        payloads.len() <= MAX_BATCH_LEN,
        "frame batch of {} payloads exceeds MAX_BATCH_LEN",
        payloads.len()
    );
    let body_len: usize = 4 + payloads.iter().map(|p| 4 + p.len()).sum::<usize>();
    assert!(
        body_len <= MAX_FRAME_BYTES,
        "frame body of {body_len} bytes exceeds MAX_FRAME_BYTES"
    );
    let mut buf = BytesMut::with_capacity(4 + body_len);
    buf.put_u32(body_len as u32);
    buf.put_u32(payloads.len() as u32);
    for payload in payloads {
        buf.put_u32(payload.len() as u32);
        buf.put_slice(payload.as_slice());
    }
    buf.freeze()
}

/// Decodes one complete frame (as produced by [`encode_frame`]) back into
/// its payloads.
pub fn decode_frame(frame: &Bytes) -> Result<Vec<Bytes>, FrameError> {
    let mut data = frame.clone();
    if data.remaining() < 4 {
        return Err(FrameError::Malformed("missing length prefix"));
    }
    let body_len = data.get_u32() as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(body_len));
    }
    if data.remaining() != body_len {
        return Err(FrameError::Malformed(
            "length prefix disagrees with frame size",
        ));
    }
    if body_len < 4 {
        return Err(FrameError::Malformed("missing batch count"));
    }
    let count = data.get_u32() as usize;
    if count > MAX_BATCH_LEN {
        return Err(FrameError::Oversized(count));
    }
    let mut payloads = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(FrameError::Malformed("truncated payload length"));
        }
        let len = data.get_u32() as usize;
        if data.remaining() < len {
            return Err(FrameError::Malformed("truncated payload"));
        }
        // Zero-copy: the payload is a bounded view into the frame bytes.
        payloads.push(data.split_to(len));
    }
    if data.remaining() != 0 {
        return Err(FrameError::Malformed("trailing bytes after last payload"));
    }
    Ok(payloads)
}

/// Incremental frame reassembly over a byte stream.
///
/// Feed arbitrary chunks with [`FrameReader::extend`]; [`FrameReader::next_frame`]
/// yields each complete frame verbatim (length prefix included, ready for
/// [`decode_frame`]) as soon as all its bytes have arrived.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not yet consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Returns the next complete frame, `None` when more bytes are needed,
    /// or an error when the buffered prefix cannot be a valid frame (the
    /// stream should then be dropped).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let body_len =
            u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if body_len > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized(body_len));
        }
        let total = 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        let frame = Bytes::from(std::mem::replace(&mut self.buf, rest));
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(sizes: &[usize]) -> Vec<Bytes> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Bytes::from(vec![i as u8; n]))
            .collect()
    }

    #[test]
    fn frames_roundtrip() {
        for sizes in [vec![], vec![0], vec![1, 2, 3], vec![100, 0, 7]] {
            let batch = payloads(&sizes);
            let frame = encode_frame(&batch);
            assert_eq!(decode_frame(&frame).unwrap(), batch);
        }
    }

    #[test]
    fn reader_reassembles_split_frames() {
        let frames: Vec<Bytes> = (1..5)
            .map(|i| encode_frame(&payloads(&vec![i; i])))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(f.as_slice());
        }
        for chunk_size in [1usize, 2, 3, 7, 64, stream.len()] {
            let mut reader = FrameReader::new();
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.extend(chunk);
                while let Some(frame) = reader.next_frame().unwrap() {
                    got.push(frame);
                }
            }
            assert_eq!(got, frames, "chunk size {chunk_size}");
            assert_eq!(reader.buffered(), 0);
        }
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let frame = encode_frame(&payloads(&[10, 20]));
        let mut reader = FrameReader::new();
        reader.extend(&frame.as_slice()[..frame.len() - 1]);
        assert_eq!(reader.next_frame().unwrap(), None);
        reader.extend(&frame.as_slice()[frame.len() - 1..]);
        assert_eq!(reader.next_frame().unwrap(), Some(frame));
    }

    #[test]
    fn corrupt_prefixes_are_rejected() {
        let mut reader = FrameReader::new();
        reader.extend(&u32::MAX.to_be_bytes());
        assert!(matches!(reader.next_frame(), Err(FrameError::Oversized(_))));
        // decode_frame checks internal consistency too
        let frame = encode_frame(&payloads(&[4]));
        let mut bytes = frame.as_slice().to_vec();
        bytes.pop();
        let short = Bytes::from(bytes);
        assert!(decode_frame(&short).is_err());
    }
}
