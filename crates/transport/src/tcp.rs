//! Real TCP transport over `std::net`, no external dependencies.
//!
//! Every registered peer gets its own listener on `127.0.0.1` (ephemeral
//! port) with an acceptor thread; each accepted connection gets a reader
//! thread that reassembles length-prefixed frames from the byte stream
//! (see [`crate::frame::FrameReader`]) and forwards them to a shared
//! inbox.  Outbound connections are cached per destination, so a
//! construction run opens at most one socket per peer pair and every
//! per-tick batch travels as a single `write`.
//!
//! Frames arrive in **real** time: [`Transport::poll`] simply drains the
//! inbox, [`Transport::is_realtime`] returns `true`, and callers are
//! expected to keep polling while [`Transport::in_flight`] is non-zero
//! before letting their virtual clock race ahead.

use crate::frame::FrameReader;
use crate::{Millis, PeerAddr, SocketTransport, Transport, TransportError, TransportStats};
use bytes::Bytes;
use pgrid_core::routing::PeerId;
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Outbound connect attempts before a send is reported as failed.
///
/// A refused connect is retried with capped exponential backoff plus a
/// little deterministic jitter, so a listener that is still coming up
/// during startup — or restarting while a shard is reassigned — does not
/// make the first send fatal.
const CONNECT_ATTEMPTS: u32 = 3;

/// First backoff delay of [`connect_with_backoff`]; doubles per attempt,
/// capped at [`CONNECT_BACKOFF_CAP_MS`].
const CONNECT_BACKOFF_MS: u64 = 5;

/// Upper bound of the per-attempt backoff delay.
const CONNECT_BACKOFF_CAP_MS: u64 = 40;

/// Default capacity of the shared inbox, in frames.
///
/// The inbox is a bounded channel: when a burst of inbound frames outruns
/// the polling side, reader threads block on the channel instead of
/// buffering without limit, stop draining their sockets, and TCP flow
/// control pushes back on the remote writer.  A slow shard therefore
/// surfaces as wire backpressure, not as unbounded memory growth in the
/// receiving process.  The capacity is generous relative to the per-tick
/// batching (one frame per destination per event) so loopback-style
/// single-process runs never hit it.
pub const DEFAULT_INBOX_CAPACITY: usize = 4096;

/// The threaded `std::net` TCP backend.
pub struct TcpTransport {
    addrs: HashMap<PeerId, SocketAddr>,
    /// Peers hosted by this process (they have a listener here); everything
    /// else in `addrs` was registered via [`TcpTransport::register_remote`].
    local: HashSet<PeerId>,
    outbound: HashMap<PeerId, TcpStream>,
    /// `Some` until shutdown: [`Drop`] takes the receiver out first so
    /// reader threads blocked on a full inbox fail their send and exit.
    inbox: Option<Receiver<(PeerId, Bytes)>>,
    inbox_tx: SyncSender<(PeerId, Bytes)>,
    stop: Arc<AtomicBool>,
    /// Listener addresses of the locally hosted peers: [`Drop`] dials each
    /// one to wake its acceptor out of the blocking `accept`.
    listen_addrs: Vec<SocketAddr>,
    /// Clones of every accepted connection: [`Drop`] shuts them down to
    /// wake reader threads out of their blocking `read`.
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    acceptors: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: TransportStats,
    /// Frames sent to peers hosted by this process — the only ones whose
    /// delivery [`Transport::poll`] will ever observe, and therefore the
    /// base of the [`Transport::in_flight`] estimate.
    local_frames_sent: u64,
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Creates a transport with no peers registered yet and the default
    /// inbox bound.
    pub fn new() -> TcpTransport {
        TcpTransport::with_inbox_capacity(DEFAULT_INBOX_CAPACITY)
    }

    /// Creates a transport whose shared inbox holds at most `capacity`
    /// frames; reader threads block (and stop draining their sockets) when
    /// it is full.
    pub fn with_inbox_capacity(capacity: usize) -> TcpTransport {
        let (inbox_tx, inbox) = sync_channel(capacity.max(1));
        TcpTransport {
            addrs: HashMap::new(),
            local: HashSet::new(),
            outbound: HashMap::new(),
            inbox: Some(inbox),
            inbox_tx,
            stop: Arc::new(AtomicBool::new(false)),
            listen_addrs: Vec::new(),
            accepted: Arc::new(Mutex::new(Vec::new())),
            acceptors: Vec::new(),
            readers: Arc::new(Mutex::new(Vec::new())),
            stats: TransportStats::default(),
            local_frames_sent: 0,
        }
    }

    /// Registers a peer that listens in *another* process at `addr`;
    /// frames can be sent to it but its inbound traffic is handled by that
    /// process's own transport.
    pub fn register_remote(
        &mut self,
        peer: PeerId,
        addr: SocketAddr,
    ) -> Result<PeerAddr, TransportError> {
        if self.addrs.contains_key(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.addrs.insert(peer, addr);
        Ok(PeerAddr::Socket(addr))
    }

    /// Re-points an already known *remote* peer at a new address — it moved
    /// to another process during shard reassignment — and drops the stale
    /// cached connection so the next send dials the new endpoint.
    pub fn update_remote(&mut self, peer: PeerId, addr: SocketAddr) -> Result<(), TransportError> {
        if self.local.contains(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.addrs.insert(peer, addr);
        self.outbound.remove(&peer);
        Ok(())
    }

    /// Takes over hosting of a peer previously registered as remote: binds
    /// a fresh local listener for it and drops any cached connection to the
    /// dead endpoint.  Used by a survivor worker adopting a failed worker's
    /// peers; the returned address is what the coordinator redistributes.
    pub fn register_takeover(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if self.local.contains(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.addrs.remove(&peer);
        self.outbound.remove(&peer);
        self.register(peer)
    }

    /// Blocks up to `timeout` for the first frame, then also drains
    /// whatever else has already arrived — the no-busy-wait receive for
    /// callers (tests, benches) whose only job is to wait for the wire.
    pub fn poll_timeout(&mut self, timeout: Duration) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        let Some(inbox) = self.inbox.as_ref() else {
            return out;
        };
        match inbox.recv_timeout(timeout) {
            Ok(delivery) => out.push(delivery),
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => return out,
        }
        while let Ok(delivery) = inbox.try_recv() {
            out.push(delivery);
        }
        for (peer, frame) in &out {
            self.stats.frames_delivered += 1;
            self.stats.bytes_delivered += frame.len() as u64;
            let link = self.stats.per_peer.entry(peer.0).or_default();
            link.frames_received += 1;
            link.bytes_received += frame.len() as u64;
        }
        out
    }

    fn connect(&mut self, to: PeerId) -> Result<&mut TcpStream, TransportError> {
        let addr = *self.addrs.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        match self.outbound.entry(to) {
            std::collections::hash_map::Entry::Occupied(cached) => Ok(cached.into_mut()),
            std::collections::hash_map::Entry::Vacant(vacant) => {
                let stream = connect_with_backoff(addr, CONNECT_ATTEMPTS)?;
                stream.set_nodelay(true)?;
                Ok(vacant.insert(stream))
            }
        }
    }
}

/// Dials `addr`, retrying refused/reset connects with capped exponential
/// backoff plus deterministic jitter derived from the address and attempt
/// (no RNG state, so nothing observable by parity tests is consumed).
fn connect_with_backoff(addr: SocketAddr, attempts: u32) -> std::io::Result<TcpStream> {
    let mut delay_ms = CONNECT_BACKOFF_MS;
    let mut last_err = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 < attempts {
            let mut j =
                u64::from(addr.port()) ^ ((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9));
            j ^= j << 13;
            j ^= j >> 7;
            j ^= j << 17;
            let jitter = j % (delay_ms / 2 + 1);
            std::thread::sleep(Duration::from_millis(delay_ms + jitter));
            delay_ms = (delay_ms * 2).min(CONNECT_BACKOFF_CAP_MS);
        }
    }
    Err(last_err.expect("at least one attempt"))
}

/// Receives length-prefixed frames for `peer` from one accepted connection
/// until EOF, a framing error, or shutdown.
fn read_connection(
    mut stream: TcpStream,
    peer: PeerId,
    inbox: SyncSender<(PeerId, Bytes)>,
    stop: Arc<AtomicBool>,
) {
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                reader.extend(&buf[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            if inbox.send((peer, frame)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        // Corrupt stream: drop the connection.
                        Err(_) => return,
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Accepts connections for `peer` until shutdown, spawning one reader
/// thread per connection.
///
/// The accept is *blocking* — no polling sleep burning CPU per hosted
/// peer.  Shutdown wakes it by dialling the listener ([`Drop`]); the stop
/// flag is re-checked right after every accept so the wake connection is
/// never handed to a reader.
fn accept_connections(
    listener: TcpListener,
    peer: PeerId,
    inbox: SyncSender<(PeerId, Bytes)>,
    stop: Arc<AtomicBool>,
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    accepted
                        .lock()
                        .expect("accepted registry poisoned")
                        .push(clone);
                }
                let inbox = inbox.clone();
                let stop = stop.clone();
                let handle = std::thread::spawn(move || read_connection(stream, peer, inbox, stop));
                readers
                    .lock()
                    .expect("reader registry poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

impl Transport for TcpTransport {
    fn register(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if self.addrs.contains_key(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        self.addrs.insert(peer, addr);
        self.local.insert(peer);
        self.listen_addrs.push(addr);
        let inbox = self.inbox_tx.clone();
        let stop = self.stop.clone();
        let accepted = self.accepted.clone();
        let readers = self.readers.clone();
        self.acceptors.push(std::thread::spawn(move || {
            accept_connections(listener, peer, inbox, stop, accepted, readers)
        }));
        Ok(PeerAddr::Socket(addr))
    }

    fn send(&mut self, _now: Millis, to: PeerId, frame: Bytes) -> Result<(), TransportError> {
        // Retry once with a fresh connection: the cached stream may have
        // been closed by the other side since the last send.
        let had_connection = self.outbound.contains_key(&to);
        for attempt in 0..2 {
            let result = self
                .connect(to)
                .and_then(|stream| stream.write_all(frame.as_slice()).map_err(Into::into));
            match result {
                Ok(()) => {
                    self.stats.frames_sent += 1;
                    self.stats.bytes_sent += frame.len() as u64;
                    if self.local.contains(&to) {
                        self.local_frames_sent += 1;
                    }
                    let link = self.stats.per_peer.entry(to.0).or_default();
                    link.frames_sent += 1;
                    link.bytes_sent += frame.len() as u64;
                    // A second attempt only counts as a reconnect when a
                    // cached connection was actually dropped and replaced
                    // (same guard as the failure path below).
                    if attempt > 0 && had_connection {
                        link.reconnects += 1;
                    }
                    return Ok(());
                }
                Err(e) => {
                    self.outbound.remove(&to);
                    if attempt == 1 {
                        let link = self.stats.per_peer.entry(to.0).or_default();
                        if had_connection {
                            link.reconnects += 1;
                        }
                        link.send_failures += 1;
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on the second attempt")
    }

    fn poll(&mut self, _now: Millis) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        let Some(inbox) = self.inbox.as_ref() else {
            return out;
        };
        while let Ok(delivery) = inbox.try_recv() {
            self.stats.frames_delivered += 1;
            self.stats.bytes_delivered += delivery.1.len() as u64;
            let link = self.stats.per_peer.entry(delivery.0 .0).or_default();
            link.frames_received += 1;
            link.bytes_received += delivery.1.len() as u64;
            out.push(delivery);
        }
        out
    }

    fn next_due(&self) -> Option<Millis> {
        None
    }

    fn is_realtime(&self) -> bool {
        true
    }

    fn in_flight(&self) -> usize {
        // Only frames addressed to locally hosted peers can ever show up in
        // this process's poll; frames to remote peers are delivered by the
        // process that hosts them and must not stall the local clock.
        // Saturating: with remote peers this transport also receives frames
        // it never sent, so delivered may exceed the local send count.
        self.local_frames_sent
            .saturating_sub(self.stats.frames_delivered) as usize
    }

    fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    fn addr_of(&self, peer: PeerId) -> Option<PeerAddr> {
        self.addrs.get(&peer).copied().map(PeerAddr::Socket)
    }
}

impl SocketTransport for TcpTransport {
    fn register_remote(
        &mut self,
        peer: PeerId,
        addr: SocketAddr,
    ) -> Result<PeerAddr, TransportError> {
        TcpTransport::register_remote(self, peer, addr)
    }

    fn update_remote(&mut self, peer: PeerId, addr: SocketAddr) -> Result<(), TransportError> {
        TcpTransport::update_remote(self, peer, addr)
    }

    fn register_takeover(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        TcpTransport::register_takeover(self, peer)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Dropping the receiver first unblocks reader threads parked on a
        // full (bounded) inbox: their send fails and they exit.
        self.inbox = None;
        // Closing the cached outbound streams unblocks readers on EOF.
        self.outbound.clear();
        // Shutting down the accepted-connection clones wakes the remaining
        // readers out of their blocking reads.
        for stream in self
            .accepted
            .lock()
            .expect("accepted registry poisoned")
            .drain(..)
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Acceptors block in `accept`; one throwaway connection per
        // listener wakes each, and the stop flag (already set) makes it
        // exit instead of spawning a reader.
        for addr in self.listen_addrs.drain(..) {
            let _ = TcpStream::connect(addr);
        }
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader registry poisoned"));
        for handle in readers {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn payload(tag: u8, len: usize) -> Bytes {
        Bytes::from(vec![tag; len])
    }

    /// Polls until `count` frames arrived or a real-time deadline passes.
    fn poll_n(t: &mut TcpTransport, count: usize) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while out.len() < count {
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                break;
            };
            out.extend(t.poll_timeout(remaining));
        }
        out
    }

    #[test]
    fn frames_travel_over_real_sockets() {
        let mut t = TcpTransport::new();
        let a = PeerId(1);
        let b = PeerId(2);
        let addr_a = t.register(a).unwrap();
        assert!(matches!(addr_a, PeerAddr::Socket(_)));
        t.register(b).unwrap();

        let batch = vec![payload(7, 100), payload(8, 0), payload(9, 3000)];
        let frame = encode_frame(&batch);
        t.send(0, b, frame.clone()).unwrap();
        let got = poll_n(&mut t, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, b);
        assert_eq!(decode_frame(&got[0].1).unwrap(), batch);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn many_frames_arrive_in_order_per_connection() {
        let mut t = TcpTransport::new();
        let b = PeerId(5);
        t.register(b).unwrap();
        let frames: Vec<Bytes> = (0..200u8)
            .map(|i| encode_frame(&[payload(i, 64 + i as usize)]))
            .collect();
        for frame in &frames {
            t.send(0, b, frame.clone()).unwrap();
        }
        let got = poll_n(&mut t, frames.len());
        assert_eq!(got.len(), frames.len());
        for (received, sent) in got.iter().zip(&frames) {
            assert_eq!(&received.1, sent, "stream order must be preserved");
        }
    }

    #[test]
    fn bounded_inbox_backpressure_loses_nothing() {
        // Capacity far below the frame count: readers must block (not drop)
        // when the inbox is full, and every frame must still arrive once the
        // polling side catches up.
        let mut t = TcpTransport::with_inbox_capacity(4);
        let b = PeerId(3);
        t.register(b).unwrap();
        let frames: Vec<Bytes> = (0..64u8)
            .map(|i| encode_frame(&[payload(i, 256)]))
            .collect();
        for frame in &frames {
            t.send(0, b, frame.clone()).unwrap();
        }
        let got = poll_n(&mut t, frames.len());
        assert_eq!(got.len(), frames.len());
        for (received, sent) in got.iter().zip(&frames) {
            assert_eq!(&received.1, sent);
        }
    }

    #[test]
    fn per_peer_link_stats_are_tracked() {
        let mut t = TcpTransport::new();
        let b = PeerId(11);
        t.register(b).unwrap();
        let frame = encode_frame(&[payload(1, 100)]);
        t.send(0, b, frame.clone()).unwrap();
        t.send(0, b, frame.clone()).unwrap();
        let got = poll_n(&mut t, 2);
        assert_eq!(got.len(), 2);
        let stats = t.stats();
        let link = stats.per_peer.get(&b.0).expect("link stats for peer 11");
        assert_eq!(link.frames_sent, 2);
        assert_eq!(link.bytes_sent, 2 * frame.len() as u64);
        assert_eq!(link.frames_received, 2);
        assert_eq!(link.bytes_received, 2 * frame.len() as u64);
        assert_eq!(link.send_failures, 0);
        assert_eq!(stats.bytes_delivered, 2 * frame.len() as u64);
    }

    #[test]
    fn remote_sends_do_not_stall_in_flight() {
        // A "remote" peer that is actually hosted by a second transport, as
        // in a multi-process deployment: the sender's in_flight must not
        // count frames whose delivery happens in the other process.
        let mut host = TcpTransport::new();
        let remote = PeerId(7);
        let PeerAddr::Socket(addr) = host.register(remote).unwrap() else {
            panic!("tcp register returns socket addrs");
        };
        let mut sender = TcpTransport::new();
        sender.register_remote(remote, addr).unwrap();
        let frame = encode_frame(&[payload(9, 32)]);
        sender.send(0, remote, frame.clone()).unwrap();
        assert_eq!(sender.in_flight(), 0, "remote frames are not local");
        let got = poll_n(&mut host, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, remote);
        assert_eq!(got[0].1, frame);
    }

    #[test]
    fn takeover_rebinds_a_remote_peer_locally() {
        let peer = PeerId(21);
        let mut dead_host = TcpTransport::new();
        let PeerAddr::Socket(old_addr) = dead_host.register(peer).unwrap() else {
            panic!("tcp register returns socket addrs");
        };
        let mut survivor = TcpTransport::new();
        survivor.register_remote(peer, old_addr).unwrap();
        drop(dead_host); // the hosting process dies
        let PeerAddr::Socket(new_addr) = survivor.register_takeover(peer).unwrap() else {
            panic!("takeover returns socket addrs");
        };
        assert_ne!(old_addr, new_addr);
        // A third process is re-pointed at the survivor and its frames
        // arrive at the adopted peer's new listener.
        let mut other = TcpTransport::new();
        other.register_remote(peer, old_addr).unwrap();
        other.update_remote(peer, new_addr).unwrap();
        let frame = encode_frame(&[payload(5, 48)]);
        other.send(0, peer, frame.clone()).unwrap();
        let got = poll_n(&mut survivor, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, peer);
        assert_eq!(got[0].1, frame);
        // The survivor now hosts the peer; a second takeover is an error.
        assert!(matches!(
            survivor.register_takeover(peer),
            Err(TransportError::AlreadyRegistered(_))
        ));
    }

    #[test]
    fn sending_to_unregistered_peers_fails() {
        let mut t = TcpTransport::new();
        assert!(matches!(
            t.send(0, PeerId(9), encode_frame(&[])),
            Err(TransportError::UnknownPeer(PeerId(9)))
        ));
    }
}
