//! Real TCP transport over `std::net`, no external dependencies.
//!
//! Every registered peer gets its own listener on `127.0.0.1` (ephemeral
//! port) with an acceptor thread; each accepted connection gets a reader
//! thread that reassembles length-prefixed frames from the byte stream
//! (see [`crate::frame::FrameReader`]) and forwards them to a shared
//! inbox.  Outbound connections are cached per destination, so a
//! construction run opens at most one socket per peer pair and every
//! per-tick batch travels as a single `write`.
//!
//! Frames arrive in **real** time: [`Transport::poll`] simply drains the
//! inbox, [`Transport::is_realtime`] returns `true`, and callers are
//! expected to keep polling while [`Transport::in_flight`] is non-zero
//! before letting their virtual clock race ahead.

use crate::frame::FrameReader;
use crate::{Millis, PeerAddr, Transport, TransportError, TransportStats};
use bytes::Bytes;
use pgrid_core::routing::PeerId;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long reader threads block per `read` before re-checking the stop
/// flag.
const READ_TIMEOUT: Duration = Duration::from_millis(50);

/// The threaded `std::net` TCP backend.
pub struct TcpTransport {
    addrs: HashMap<PeerId, SocketAddr>,
    outbound: HashMap<PeerId, TcpStream>,
    inbox: Receiver<(PeerId, Bytes)>,
    inbox_tx: Sender<(PeerId, Bytes)>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: TransportStats,
}

impl Default for TcpTransport {
    fn default() -> TcpTransport {
        TcpTransport::new()
    }
}

impl TcpTransport {
    /// Creates a transport with no peers registered yet.
    pub fn new() -> TcpTransport {
        let (inbox_tx, inbox) = channel();
        TcpTransport {
            addrs: HashMap::new(),
            outbound: HashMap::new(),
            inbox,
            inbox_tx,
            stop: Arc::new(AtomicBool::new(false)),
            acceptors: Vec::new(),
            readers: Arc::new(Mutex::new(Vec::new())),
            stats: TransportStats::default(),
        }
    }

    /// Registers a peer that listens in *another* process at `addr`;
    /// frames can be sent to it but its inbound traffic is handled by that
    /// process's own transport.
    pub fn register_remote(
        &mut self,
        peer: PeerId,
        addr: SocketAddr,
    ) -> Result<PeerAddr, TransportError> {
        if self.addrs.contains_key(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.addrs.insert(peer, addr);
        Ok(PeerAddr::Socket(addr))
    }

    fn connect(&mut self, to: PeerId) -> Result<&mut TcpStream, TransportError> {
        let addr = *self.addrs.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        match self.outbound.entry(to) {
            std::collections::hash_map::Entry::Occupied(cached) => Ok(cached.into_mut()),
            std::collections::hash_map::Entry::Vacant(vacant) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(vacant.insert(stream))
            }
        }
    }
}

/// Receives length-prefixed frames for `peer` from one accepted connection
/// until EOF, a framing error, or shutdown.
fn read_connection(
    mut stream: TcpStream,
    peer: PeerId,
    inbox: Sender<(PeerId, Bytes)>,
    stop: Arc<AtomicBool>,
) {
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                reader.extend(&buf[..n]);
                loop {
                    match reader.next_frame() {
                        Ok(Some(frame)) => {
                            if inbox.send((peer, frame)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        // Corrupt stream: drop the connection.
                        Err(_) => return,
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => break,
        }
    }
}

/// Accepts connections for `peer` until shutdown, spawning one reader
/// thread per connection.
fn accept_connections(
    listener: TcpListener,
    peer: PeerId,
    inbox: Sender<(PeerId, Bytes)>,
    stop: Arc<AtomicBool>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
                let _ = stream.set_nodelay(true);
                let inbox = inbox.clone();
                let stop = stop.clone();
                let handle = std::thread::spawn(move || read_connection(stream, peer, inbox, stop));
                readers
                    .lock()
                    .expect("reader registry poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

impl Transport for TcpTransport {
    fn register(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if self.addrs.contains_key(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        self.addrs.insert(peer, addr);
        let inbox = self.inbox_tx.clone();
        let stop = self.stop.clone();
        let readers = self.readers.clone();
        self.acceptors.push(std::thread::spawn(move || {
            accept_connections(listener, peer, inbox, stop, readers)
        }));
        Ok(PeerAddr::Socket(addr))
    }

    fn send(&mut self, _now: Millis, to: PeerId, frame: Bytes) -> Result<(), TransportError> {
        // Retry once with a fresh connection: the cached stream may have
        // been closed by the other side since the last send.
        for attempt in 0..2 {
            let result = self
                .connect(to)
                .and_then(|stream| stream.write_all(frame.as_slice()).map_err(Into::into));
            match result {
                Ok(()) => {
                    self.stats.frames_sent += 1;
                    self.stats.bytes_sent += frame.len() as u64;
                    return Ok(());
                }
                Err(e) => {
                    self.outbound.remove(&to);
                    if attempt == 1 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on the second attempt")
    }

    fn poll(&mut self, _now: Millis) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        while let Ok(delivery) = self.inbox.try_recv() {
            self.stats.frames_delivered += 1;
            out.push(delivery);
        }
        out
    }

    fn next_due(&self) -> Option<Millis> {
        None
    }

    fn is_realtime(&self) -> bool {
        true
    }

    fn in_flight(&self) -> usize {
        // Saturating: with remote peers (`register_remote`) this transport
        // can receive frames it never sent, so delivered may exceed sent.
        self.stats
            .frames_sent
            .saturating_sub(self.stats.frames_delivered) as usize
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn addr_of(&self, peer: PeerId) -> Option<PeerAddr> {
        self.addrs.get(&peer).copied().map(PeerAddr::Socket)
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Closing the cached outbound streams unblocks readers on EOF.
        self.outbound.clear();
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader registry poisoned"));
        for handle in readers {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, encode_frame};

    fn payload(tag: u8, len: usize) -> Bytes {
        Bytes::from(vec![tag; len])
    }

    /// Polls until `count` frames arrived or a real-time deadline passes.
    fn poll_n(t: &mut TcpTransport, count: usize) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while out.len() < count && std::time::Instant::now() < deadline {
            out.extend(t.poll(0));
            if out.len() < count {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        out
    }

    #[test]
    fn frames_travel_over_real_sockets() {
        let mut t = TcpTransport::new();
        let a = PeerId(1);
        let b = PeerId(2);
        let addr_a = t.register(a).unwrap();
        assert!(matches!(addr_a, PeerAddr::Socket(_)));
        t.register(b).unwrap();

        let batch = vec![payload(7, 100), payload(8, 0), payload(9, 3000)];
        let frame = encode_frame(&batch);
        t.send(0, b, frame.clone()).unwrap();
        let got = poll_n(&mut t, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, b);
        assert_eq!(decode_frame(&got[0].1).unwrap(), batch);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn many_frames_arrive_in_order_per_connection() {
        let mut t = TcpTransport::new();
        let b = PeerId(5);
        t.register(b).unwrap();
        let frames: Vec<Bytes> = (0..200u8)
            .map(|i| encode_frame(&[payload(i, 64 + i as usize)]))
            .collect();
        for frame in &frames {
            t.send(0, b, frame.clone()).unwrap();
        }
        let got = poll_n(&mut t, frames.len());
        assert_eq!(got.len(), frames.len());
        for (received, sent) in got.iter().zip(&frames) {
            assert_eq!(&received.1, sent, "stream order must be preserved");
        }
    }

    #[test]
    fn sending_to_unregistered_peers_fails() {
        let mut t = TcpTransport::new();
        assert!(matches!(
            t.send(0, PeerId(9), encode_frame(&[])),
            Err(TransportError::UnknownPeer(PeerId(9)))
        ));
    }
}
