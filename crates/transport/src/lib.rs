//! # pgrid-transport
//!
//! Pluggable message transport of the P-Grid deployment runtime.
//!
//! The paper distinguishes the simulated construction from the *deployed*
//! one, where peers only interact through messages on a real network.  This
//! crate supplies that wire layer as a small trait with two backends:
//!
//! * [`loopback::LoopbackTransport`] — an in-memory backend that delivers
//!   frames in **virtual time** with deterministic, seeded latency.  Tests
//!   and parity checks run on it: same seed, same delivery order, every
//!   time.
//! * [`tcp::TcpTransport`] — a real `std::net` TCP backend: one listener
//!   and acceptor thread per registered peer, cached outbound connections,
//!   and reader threads that reassemble length-prefixed frames from the
//!   byte stream.  No external dependencies.
//!
//! Both carry the same bytes: frames built by [`frame::encode_frame`],
//! batching any number of encoded protocol messages into one length-prefixed
//! unit (the per-tick batching of exchange messages).  The runtime encodes
//! and decodes messages; the transport never looks inside a payload.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod frame;
pub mod loopback;
pub mod tcp;

use bytes::Bytes;
use pgrid_core::routing::PeerId;

/// Milliseconds of virtual time (the deployment runtime's clock).
pub type Millis = u64;

/// Where a registered peer can be reached.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PeerAddr {
    /// An in-process endpoint of the loopback backend.
    Local(PeerId),
    /// A socket address of the TCP backend.
    Socket(std::net::SocketAddr),
}

impl std::fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerAddr::Local(peer) => write!(f, "local:{}", peer.0),
            PeerAddr::Socket(addr) => write!(f, "{addr}"),
        }
    }
}

/// A fault injected into a transport's link layer.
///
/// Virtual-time backends (loopback) accept these and emulate the fault
/// deterministically; real-time backends ignore them (their faults are
/// real).  [`Transport::inject_fault`] reports whether the fault was
/// accepted.
#[derive(Clone, Debug)]
pub enum LinkFault {
    /// Adds a stable per-directed-link latency offset, drawn once per link
    /// in `0..=max_ms` from a seeded RNG, on top of the base latency model.
    Jitter {
        /// Upper bound of the per-link offset in milliseconds.
        max_ms: u64,
    },
    /// Drops every frame crossing a group boundary while
    /// `from <= now < until`, then heals: the network splits into the
    /// given groups for the window and reunites afterwards.
    Partition {
        /// The peer groups; frames between peers of different groups are
        /// dropped during the window.  Peers in no group are unaffected.
        groups: Vec<Vec<PeerId>>,
        /// Virtual time at which the partition starts.
        from: Millis,
        /// Virtual time at which the partition heals.
        until: Millis,
    },
}

/// Transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The destination peer was never registered.
    UnknownPeer(PeerId),
    /// The peer is already registered.
    AlreadyRegistered(PeerId),
    /// An I/O error of the underlying socket machinery.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(peer) => write!(f, "unknown peer {}", peer.0),
            TransportError::AlreadyRegistered(peer) => {
                write!(f, "peer {} already registered", peer.0)
            }
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

/// Per-peer link counters of a connection-oriented backend.
///
/// The TCP backend keeps one entry per peer it has exchanged frames with:
/// the send side is keyed by the destination peer of the cached outbound
/// connection, the receive side by the local peer a frame was addressed to.
/// Virtual-time backends (loopback) have no connections and leave the map
/// empty.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent to this peer.
    pub frames_sent: u64,
    /// Frame bytes sent to this peer.
    pub bytes_sent: u64,
    /// Frames received for this (locally hosted) peer.
    pub frames_received: u64,
    /// Frame bytes received for this (locally hosted) peer.
    pub bytes_received: u64,
    /// Times the cached outbound connection was dropped and re-established.
    pub reconnects: u64,
    /// Sends that failed even after a reconnect attempt.
    pub send_failures: u64,
}

/// Event-loop gauges of the reactor backend (`pgrid-reactor`).
///
/// Carried inside [`TransportStats`] so the existing report/metrics plumbing
/// (worker `/metrics`, coordinator merge) surfaces them without new wiring.
/// Depth/bytes fields are point-in-time gauges; the rest are counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Peers hosted by this transport (they share the one mux listener).
    pub registered_peers: u64,
    /// File descriptors registered with the event loops (listener,
    /// eventfds, live connections).
    pub registered_fds: u64,
    /// Times an event thread returned from `epoll_wait` with work.
    pub epoll_wakeups: u64,
    /// Frames currently parked in per-link write queues.
    pub write_queue_frames: u64,
    /// Bytes currently parked in per-link write queues.
    pub write_queue_bytes: u64,
    /// Writes that moved only part of the queue front and resumed later.
    pub partial_writes: u64,
    /// Connections re-dialled after an error or peer close.
    pub reconnects: u64,
    /// Frames dropped when a link died with its queue non-empty.
    pub dropped_frames: u64,
}

impl ReactorStats {
    /// Folds another snapshot into this one (sums everything; gauges sum
    /// too, which is what the coordinator wants when it merges workers).
    pub fn merge(&mut self, other: &ReactorStats) {
        self.registered_peers += other.registered_peers;
        self.registered_fds += other.registered_fds;
        self.epoll_wakeups += other.epoll_wakeups;
        self.write_queue_frames += other.write_queue_frames;
        self.write_queue_bytes += other.write_queue_bytes;
        self.partial_writes += other.partial_writes;
        self.reconnects += other.reconnects;
        self.dropped_frames += other.dropped_frames;
    }
}

/// Counters every backend maintains.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames handed to the transport for delivery.
    pub frames_sent: u64,
    /// Frames handed out by [`Transport::poll`].
    pub frames_delivered: u64,
    /// Total frame bytes sent.
    pub bytes_sent: u64,
    /// Total frame bytes handed out by [`Transport::poll`].
    pub bytes_delivered: u64,
    /// Frames that crossed the wire compressed (per-link negotiation).
    pub frames_compressed: u64,
    /// Pre-compression byte total of those frames.
    pub compressed_bytes_raw: u64,
    /// Post-compression (wire) byte total of those frames.
    pub compressed_bytes_wire: u64,
    /// Per-peer connection counters (socket backends only; empty on
    /// loopback).
    pub per_peer: std::collections::BTreeMap<u64, LinkStats>,
    /// Event-loop gauges of the reactor backend; `None` elsewhere.
    pub reactor: Option<ReactorStats>,
}

impl TransportStats {
    /// Populates `registry` with the transport counters (per-peer link
    /// counters as `peer`-labelled series) — the one producer every
    /// renderer and the live scrape endpoint share.
    pub fn to_registry(&self, registry: &mut pgrid_obs::registry::MetricsRegistry) {
        for (name, help, value) in [
            (
                "pgrid_transport_frames_sent_total",
                "Frames handed to the transport for delivery.",
                self.frames_sent,
            ),
            (
                "pgrid_transport_frames_delivered_total",
                "Frames handed out by transport polling.",
                self.frames_delivered,
            ),
            (
                "pgrid_transport_bytes_sent_total",
                "Total frame bytes sent.",
                self.bytes_sent,
            ),
            (
                "pgrid_transport_bytes_delivered_total",
                "Total frame bytes delivered.",
                self.bytes_delivered,
            ),
            (
                "pgrid_transport_frames_compressed_total",
                "Frames that crossed the wire compressed.",
                self.frames_compressed,
            ),
            (
                "pgrid_transport_compressed_bytes_raw_total",
                "Pre-compression byte total of compressed frames.",
                self.compressed_bytes_raw,
            ),
            (
                "pgrid_transport_compressed_bytes_wire_total",
                "Post-compression (wire) byte total of compressed frames.",
                self.compressed_bytes_wire,
            ),
        ] {
            registry.counter(name, help, &[], value);
        }
        if let Some(reactor) = &self.reactor {
            for (name, help, value) in [
                (
                    "pgrid_reactor_epoll_wakeups_total",
                    "Times an event thread returned from epoll_wait with work.",
                    reactor.epoll_wakeups,
                ),
                (
                    "pgrid_reactor_partial_writes_total",
                    "Writes that moved only part of a queue front.",
                    reactor.partial_writes,
                ),
                (
                    "pgrid_reactor_reconnects_total",
                    "Connections re-dialled after an error or peer close.",
                    reactor.reconnects,
                ),
                (
                    "pgrid_reactor_dropped_frames_total",
                    "Frames dropped when a link died with a non-empty queue.",
                    reactor.dropped_frames,
                ),
            ] {
                registry.counter(name, help, &[], value);
            }
            for (name, help, value) in [
                (
                    "pgrid_reactor_registered_peers",
                    "Peers hosted by the reactor transport.",
                    reactor.registered_peers,
                ),
                (
                    "pgrid_reactor_registered_fds",
                    "File descriptors registered with the event loops.",
                    reactor.registered_fds,
                ),
                (
                    "pgrid_reactor_write_queue_frames",
                    "Frames currently parked in per-link write queues.",
                    reactor.write_queue_frames,
                ),
                (
                    "pgrid_reactor_write_queue_bytes",
                    "Bytes currently parked in per-link write queues.",
                    reactor.write_queue_bytes,
                ),
            ] {
                registry.gauge(name, help, &[], value as f64);
            }
        }
        for (name, help, get) in [
            (
                "pgrid_transport_peer_frames_sent_total",
                "Frames sent to this peer.",
                (|l: &LinkStats| l.frames_sent) as fn(&LinkStats) -> u64,
            ),
            (
                "pgrid_transport_peer_bytes_sent_total",
                "Frame bytes sent to this peer.",
                |l| l.bytes_sent,
            ),
            (
                "pgrid_transport_peer_frames_received_total",
                "Frames received for this peer.",
                |l| l.frames_received,
            ),
            (
                "pgrid_transport_peer_bytes_received_total",
                "Frame bytes received for this peer.",
                |l| l.bytes_received,
            ),
            (
                "pgrid_transport_peer_reconnects_total",
                "Times the cached outbound connection was re-established.",
                |l| l.reconnects,
            ),
            (
                "pgrid_transport_peer_send_failures_total",
                "Sends that failed even after a reconnect attempt.",
                |l| l.send_failures,
            ),
        ] {
            for (peer, link) in &self.per_peer {
                registry.counter(name, help, &[("peer", &peer.to_string())], get(link));
            }
        }
    }

    /// Renders the counters in the Prometheus text exposition format
    /// through the shared [`pgrid_obs::registry::MetricsRegistry`]
    /// encoder, so a run's transport state can be dumped somewhere
    /// scrapeable.
    pub fn metrics_text(&self) -> String {
        let mut registry = pgrid_obs::registry::MetricsRegistry::new();
        self.to_registry(&mut registry);
        registry.encode()
    }

    /// Folds another stats snapshot into this one (summing the global
    /// counters and merging the per-peer maps), as the cluster coordinator
    /// does when it combines the reports of several worker processes.
    pub fn merge(&mut self, other: &TransportStats) {
        self.frames_sent += other.frames_sent;
        self.frames_delivered += other.frames_delivered;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
        self.frames_compressed += other.frames_compressed;
        self.compressed_bytes_raw += other.compressed_bytes_raw;
        self.compressed_bytes_wire += other.compressed_bytes_wire;
        if let Some(other_reactor) = &other.reactor {
            self.reactor
                .get_or_insert_with(ReactorStats::default)
                .merge(other_reactor);
        }
        for (&peer, link) in &other.per_peer {
            let entry = self.per_peer.entry(peer).or_default();
            entry.frames_sent += link.frames_sent;
            entry.bytes_sent += link.bytes_sent;
            entry.frames_received += link.frames_received;
            entry.bytes_received += link.bytes_received;
            entry.reconnects += link.reconnects;
            entry.send_failures += link.send_failures;
        }
    }
}

/// A frame carrier between registered peers.
///
/// The caller owns time: virtual-time backends (loopback) stamp deliveries
/// on the virtual clock passed to [`Transport::send`] and release them from
/// [`Transport::poll`] once `now` has caught up; real-time backends (TCP)
/// ignore the virtual clock and deliver whatever the wire has produced.
pub trait Transport {
    /// Registers a peer endpoint and returns its address.
    fn register(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError>;

    /// Sends one frame to a registered peer.  `now` is the sender's current
    /// virtual time (ignored by real-time backends).
    fn send(&mut self, now: Millis, to: PeerId, frame: Bytes) -> Result<(), TransportError>;

    /// [`Transport::send`] with the sending peer identified, so link-level
    /// faults (partitions, per-link jitter) can be applied.  Backends
    /// without link faults ignore `from`.
    fn send_from(
        &mut self,
        now: Millis,
        from: PeerId,
        to: PeerId,
        frame: Bytes,
    ) -> Result<(), TransportError> {
        let _ = from;
        self.send(now, to, frame)
    }

    /// Injects a link-level fault; returns whether the backend emulates it
    /// (real-time backends return `false` and do nothing).
    fn inject_fault(&mut self, fault: LinkFault) -> bool {
        let _ = fault;
        false
    }

    /// Returns the frames that have arrived for delivery by virtual time
    /// `now`, in arrival order, as `(destination, frame)` pairs.
    fn poll(&mut self, now: Millis) -> Vec<(PeerId, Bytes)>;

    /// Virtual time at which the next queued frame becomes deliverable.
    /// `None` for real-time backends (and when nothing is queued).
    fn next_due(&self) -> Option<Millis>;

    /// Whether frames travel in real time (sockets) rather than virtual
    /// time — real-time callers must keep polling while frames are
    /// [`Transport::in_flight`].
    fn is_realtime(&self) -> bool;

    /// Number of frames sent but not yet handed out by [`Transport::poll`].
    fn in_flight(&self) -> usize;

    /// Counters.
    fn stats(&self) -> TransportStats;

    /// Address of a registered peer.
    fn addr_of(&self, peer: PeerId) -> Option<PeerAddr>;
}

/// A socket-addressed backend the cluster worker can drive.
///
/// Beyond plain frame carriage, a multi-process deployment needs to amend
/// the address book mid-run: peers hosted by *other* processes are
/// registered by socket address, re-pointed when a shard moves, and adopted
/// locally when their host dies.  Both the threaded TCP backend and the
/// reactor backend implement this, which is what lets the worker be generic
/// over its transport.
pub trait SocketTransport: Transport {
    /// Registers a peer that listens in *another* process at `addr`;
    /// frames can be sent to it but its inbound traffic is handled by that
    /// process's own transport.
    fn register_remote(
        &mut self,
        peer: PeerId,
        addr: std::net::SocketAddr,
    ) -> Result<PeerAddr, TransportError>;

    /// Re-points an already known *remote* peer at a new address — it moved
    /// to another process during shard reassignment — invalidating any
    /// cached route to the old endpoint.
    fn update_remote(
        &mut self,
        peer: PeerId,
        addr: std::net::SocketAddr,
    ) -> Result<(), TransportError>;

    /// Takes over hosting of a peer previously registered as remote: the
    /// peer becomes locally reachable and the returned address is what the
    /// coordinator redistributes.  Used by a survivor worker adopting a
    /// failed worker's peers.
    fn register_takeover(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError>;
}

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::frame::{decode_frame, encode_frame, Compression, FrameCodec, FrameReader};
    pub use crate::loopback::{LoopbackConfig, LoopbackTransport};
    pub use crate::tcp::TcpTransport;
    pub use crate::{
        LinkFault, LinkStats, PeerAddr, ReactorStats, SocketTransport, Transport, TransportError,
        TransportStats,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let mut stats = TransportStats {
            frames_sent: 10,
            frames_delivered: 9,
            bytes_sent: 1000,
            bytes_delivered: 900,
            ..TransportStats::default()
        };
        stats.reactor = Some(ReactorStats {
            registered_peers: 2,
            epoll_wakeups: 7,
            ..ReactorStats::default()
        });
        stats.per_peer.insert(
            3,
            LinkStats {
                frames_sent: 4,
                bytes_sent: 400,
                frames_received: 5,
                bytes_received: 500,
                reconnects: 1,
                send_failures: 0,
            },
        );
        let text = stats.metrics_text();
        assert!(text.contains("# TYPE pgrid_transport_frames_sent_total counter"));
        assert!(text.contains("pgrid_transport_frames_sent_total 10"));
        assert!(text.contains("pgrid_transport_peer_frames_sent_total{peer=\"3\"} 4"));
        assert!(text.contains("pgrid_transport_peer_reconnects_total{peer=\"3\"} 1"));
        assert!(text.contains("# TYPE pgrid_reactor_registered_peers gauge"));
        assert!(text.contains("pgrid_reactor_epoll_wakeups_total 7"));
        // Every series line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(
                line.split_whitespace().count(),
                2,
                "bad series line: {line}"
            );
        }
    }
}
