//! Deterministic in-memory transport.
//!
//! Frames are queued with a seeded, uniformly drawn latency and released by
//! [`Transport::poll`] once the caller's virtual clock has passed their due
//! time.  With a fixed seed the delivery order is identical across runs,
//! which is what the cross-backend parity tests build on: loopback stands in
//! for the emulated wide-area network of the deployment experiments, while
//! carrying the exact same frame bytes as the TCP backend.

use crate::{Millis, PeerAddr, Transport, TransportError, TransportStats};
use bytes::Bytes;
use pgrid_core::routing::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Latency model and seed of the loopback backend.
#[derive(Copy, Clone, Debug)]
pub struct LoopbackConfig {
    /// Minimum one-way frame latency in milliseconds of virtual time.
    pub latency_min_ms: u64,
    /// Maximum one-way frame latency in milliseconds of virtual time.
    pub latency_max_ms: u64,
    /// Seed of the latency draws.
    pub seed: u64,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        LoopbackConfig {
            latency_min_ms: 20,
            latency_max_ms: 250,
            seed: 0x10C4,
        }
    }
}

struct Queued {
    due: Millis,
    seq: u64,
    to: PeerId,
    frame: Bytes,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// The in-memory virtual-time backend.
pub struct LoopbackTransport {
    config: LoopbackConfig,
    rng: StdRng,
    queue: BinaryHeap<Reverse<Queued>>,
    registered: BTreeSet<PeerId>,
    seq: u64,
    stats: TransportStats,
}

impl LoopbackTransport {
    /// Creates a loopback transport with the given latency model.
    pub fn new(config: LoopbackConfig) -> LoopbackTransport {
        LoopbackTransport {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            queue: BinaryHeap::new(),
            registered: BTreeSet::new(),
            seq: 0,
            stats: TransportStats::default(),
        }
    }

    /// A loopback transport that delivers every frame instantly (zero
    /// latency), useful for throughput benchmarks.
    pub fn instant() -> LoopbackTransport {
        LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: 0,
            latency_max_ms: 0,
            seed: 0,
        })
    }
}

impl Transport for LoopbackTransport {
    fn register(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if !self.registered.insert(peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        Ok(PeerAddr::Local(peer))
    }

    fn send(&mut self, now: Millis, to: PeerId, frame: Bytes) -> Result<(), TransportError> {
        if !self.registered.contains(&to) {
            return Err(TransportError::UnknownPeer(to));
        }
        let latency = self.rng.gen_range(
            self.config.latency_min_ms..=self.config.latency_max_ms.max(self.config.latency_min_ms),
        );
        self.seq += 1;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        self.queue.push(Reverse(Queued {
            due: now + latency,
            seq: self.seq,
            to,
            frame,
        }));
        Ok(())
    }

    fn poll(&mut self, now: Millis) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.due > now {
                break;
            }
            let Reverse(queued) = self.queue.pop().expect("peeked above");
            self.stats.frames_delivered += 1;
            self.stats.bytes_delivered += queued.frame.len() as u64;
            out.push((queued.to, queued.frame));
        }
        out
    }

    fn next_due(&self) -> Option<Millis> {
        self.queue.peek().map(|Reverse(q)| q.due)
    }

    fn is_realtime(&self) -> bool {
        false
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    fn addr_of(&self, peer: PeerId) -> Option<PeerAddr> {
        self.registered
            .contains(&peer)
            .then_some(PeerAddr::Local(peer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Bytes {
        crate::frame::encode_frame(&[Bytes::from(vec![tag; 4])])
    }

    #[test]
    fn frames_are_released_in_due_order() {
        let mut t = LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: 10,
            latency_max_ms: 100,
            seed: 1,
        });
        let a = PeerId(0);
        t.register(a).unwrap();
        for i in 0..20 {
            t.send(0, a, frame(i)).unwrap();
        }
        assert_eq!(t.in_flight(), 20);
        assert!(t.poll(9).is_empty());
        let due = t.next_due().unwrap();
        assert!((10..=100).contains(&due));
        let delivered = t.poll(100);
        assert_eq!(delivered.len(), 20);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.stats().frames_delivered, 20);
    }

    #[test]
    fn delivery_order_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = LoopbackTransport::new(LoopbackConfig {
                latency_min_ms: 5,
                latency_max_ms: 500,
                seed,
            });
            t.register(PeerId(0)).unwrap();
            for i in 0..32 {
                t.send(0, PeerId(0), frame(i)).unwrap();
            }
            t.poll(1_000)
                .into_iter()
                .map(|(_, f)| f.as_slice().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mut t = LoopbackTransport::instant();
        assert!(matches!(
            t.send(0, PeerId(3), frame(0)),
            Err(TransportError::UnknownPeer(PeerId(3)))
        ));
        t.register(PeerId(3)).unwrap();
        assert!(matches!(
            t.register(PeerId(3)),
            Err(TransportError::AlreadyRegistered(PeerId(3)))
        ));
        assert_eq!(t.addr_of(PeerId(3)), Some(PeerAddr::Local(PeerId(3))));
        assert_eq!(t.addr_of(PeerId(4)), None);
    }
}
