//! Deterministic in-memory transport.
//!
//! Frames are queued with a seeded, uniformly drawn latency and released by
//! [`Transport::poll`] once the caller's virtual clock has passed their due
//! time.  With a fixed seed the delivery order is identical across runs,
//! which is what the cross-backend parity tests build on: loopback stands in
//! for the emulated wide-area network of the deployment experiments, while
//! carrying the exact same frame bytes as the TCP backend.

use crate::{LinkFault, Millis, PeerAddr, Transport, TransportError, TransportStats};
use bytes::Bytes;
use pgrid_core::routing::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Seed salt of the per-link jitter RNG, so enabling jitter never perturbs
/// the base latency stream (which parity tests pin bit-exactly).
const JITTER_SEED_SALT: u64 = 0x4A17;

/// Latency model and seed of the loopback backend.
#[derive(Copy, Clone, Debug)]
pub struct LoopbackConfig {
    /// Minimum one-way frame latency in milliseconds of virtual time.
    pub latency_min_ms: u64,
    /// Maximum one-way frame latency in milliseconds of virtual time.
    pub latency_max_ms: u64,
    /// Seed of the latency draws.
    pub seed: u64,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        LoopbackConfig {
            latency_min_ms: 20,
            latency_max_ms: 250,
            seed: 0x10C4,
        }
    }
}

struct Queued {
    due: Millis,
    seq: u64,
    to: PeerId,
    frame: Bytes,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// A window-scoped network split: frames between different groups are
/// dropped while the window is open, then the network heals.
struct Partition {
    group_of: BTreeMap<PeerId, usize>,
    from: Millis,
    until: Millis,
}

/// The in-memory virtual-time backend.
pub struct LoopbackTransport {
    config: LoopbackConfig,
    rng: StdRng,
    queue: BinaryHeap<Reverse<Queued>>,
    registered: BTreeSet<PeerId>,
    seq: u64,
    stats: TransportStats,
    /// Injected faults.  All empty/zero by default, in which case the
    /// fault paths draw nothing from any RNG and the delivery schedule is
    /// bit-identical to a fault-free transport.
    jitter_max_ms: u64,
    jitter_rng: StdRng,
    link_jitter: HashMap<(PeerId, PeerId), u64>,
    partitions: Vec<Partition>,
    /// Frames dropped by an active partition window.
    frames_dropped: u64,
}

impl LoopbackTransport {
    /// Creates a loopback transport with the given latency model.
    pub fn new(config: LoopbackConfig) -> LoopbackTransport {
        LoopbackTransport {
            rng: StdRng::seed_from_u64(config.seed),
            jitter_rng: StdRng::seed_from_u64(config.seed ^ JITTER_SEED_SALT),
            config,
            queue: BinaryHeap::new(),
            registered: BTreeSet::new(),
            seq: 0,
            stats: TransportStats::default(),
            jitter_max_ms: 0,
            link_jitter: HashMap::new(),
            partitions: Vec::new(),
            frames_dropped: 0,
        }
    }

    /// Frames dropped so far by partition windows.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Whether an active partition window separates `from` and `to` at
    /// virtual time `now`.
    fn partitioned(&self, now: Millis, from: PeerId, to: PeerId) -> bool {
        self.partitions.iter().any(|p| {
            now >= p.from
                && now < p.until
                && matches!(
                    (p.group_of.get(&from), p.group_of.get(&to)),
                    (Some(a), Some(b)) if a != b
                )
        })
    }

    /// Stable per-directed-link latency offset, drawn lazily on first use.
    fn link_jitter_for(&mut self, from: PeerId, to: PeerId) -> u64 {
        if self.jitter_max_ms == 0 {
            return 0;
        }
        match self.link_jitter.entry((from, to)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let draw = self.jitter_rng.gen_range(0..=self.jitter_max_ms);
                *v.insert(draw)
            }
        }
    }

    fn enqueue(&mut self, now: Millis, to: PeerId, extra_latency: Millis, frame: Bytes) {
        let latency = self.rng.gen_range(
            self.config.latency_min_ms..=self.config.latency_max_ms.max(self.config.latency_min_ms),
        );
        self.seq += 1;
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        self.queue.push(Reverse(Queued {
            due: now + latency + extra_latency,
            seq: self.seq,
            to,
            frame,
        }));
    }

    /// A loopback transport that delivers every frame instantly (zero
    /// latency), useful for throughput benchmarks.
    pub fn instant() -> LoopbackTransport {
        LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: 0,
            latency_max_ms: 0,
            seed: 0,
        })
    }
}

impl Transport for LoopbackTransport {
    fn register(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if !self.registered.insert(peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        Ok(PeerAddr::Local(peer))
    }

    fn send(&mut self, now: Millis, to: PeerId, frame: Bytes) -> Result<(), TransportError> {
        if !self.registered.contains(&to) {
            return Err(TransportError::UnknownPeer(to));
        }
        self.enqueue(now, to, 0, frame);
        Ok(())
    }

    fn send_from(
        &mut self,
        now: Millis,
        from: PeerId,
        to: PeerId,
        frame: Bytes,
    ) -> Result<(), TransportError> {
        if !self.registered.contains(&to) {
            return Err(TransportError::UnknownPeer(to));
        }
        if self.partitioned(now, from, to) {
            // Partitioned frames vanish on the wire (like loss); the
            // sender sees no error, queries time out and retry.
            self.frames_dropped += 1;
            return Ok(());
        }
        let extra = self.link_jitter_for(from, to);
        self.enqueue(now, to, extra, frame);
        Ok(())
    }

    fn inject_fault(&mut self, fault: LinkFault) -> bool {
        match fault {
            LinkFault::Jitter { max_ms } => self.jitter_max_ms = max_ms,
            LinkFault::Partition {
                groups,
                from,
                until,
            } => {
                let mut group_of = BTreeMap::new();
                for (group, members) in groups.iter().enumerate() {
                    for &peer in members {
                        group_of.insert(peer, group);
                    }
                }
                self.partitions.push(Partition {
                    group_of,
                    from,
                    until,
                });
            }
        }
        true
    }

    fn poll(&mut self, now: Millis) -> Vec<(PeerId, Bytes)> {
        let mut out = Vec::new();
        while let Some(Reverse(next)) = self.queue.peek() {
            if next.due > now {
                break;
            }
            let Reverse(queued) = self.queue.pop().expect("peeked above");
            self.stats.frames_delivered += 1;
            self.stats.bytes_delivered += queued.frame.len() as u64;
            out.push((queued.to, queued.frame));
        }
        out
    }

    fn next_due(&self) -> Option<Millis> {
        self.queue.peek().map(|Reverse(q)| q.due)
    }

    fn is_realtime(&self) -> bool {
        false
    }

    fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> TransportStats {
        self.stats.clone()
    }

    fn addr_of(&self, peer: PeerId) -> Option<PeerAddr> {
        self.registered
            .contains(&peer)
            .then_some(PeerAddr::Local(peer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(tag: u8) -> Bytes {
        crate::frame::encode_frame(&[Bytes::from(vec![tag; 4])])
    }

    #[test]
    fn frames_are_released_in_due_order() {
        let mut t = LoopbackTransport::new(LoopbackConfig {
            latency_min_ms: 10,
            latency_max_ms: 100,
            seed: 1,
        });
        let a = PeerId(0);
        t.register(a).unwrap();
        for i in 0..20 {
            t.send(0, a, frame(i)).unwrap();
        }
        assert_eq!(t.in_flight(), 20);
        assert!(t.poll(9).is_empty());
        let due = t.next_due().unwrap();
        assert!((10..=100).contains(&due));
        let delivered = t.poll(100);
        assert_eq!(delivered.len(), 20);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.stats().frames_delivered, 20);
    }

    #[test]
    fn delivery_order_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = LoopbackTransport::new(LoopbackConfig {
                latency_min_ms: 5,
                latency_max_ms: 500,
                seed,
            });
            t.register(PeerId(0)).unwrap();
            for i in 0..32 {
                t.send(0, PeerId(0), frame(i)).unwrap();
            }
            t.poll(1_000)
                .into_iter()
                .map(|(_, f)| f.as_slice().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn send_from_without_faults_matches_send_exactly() {
        let config = LoopbackConfig {
            latency_min_ms: 5,
            latency_max_ms: 500,
            seed: 42,
        };
        let run = |use_from: bool| {
            let mut t = LoopbackTransport::new(config);
            t.register(PeerId(0)).unwrap();
            t.register(PeerId(1)).unwrap();
            for i in 0..32 {
                if use_from {
                    t.send_from(0, PeerId(0), PeerId(1), frame(i)).unwrap();
                } else {
                    t.send(0, PeerId(1), frame(i)).unwrap();
                }
            }
            t.poll(10_000)
                .into_iter()
                .map(|(_, f)| f.as_slice().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn partition_window_drops_cross_group_frames_then_heals() {
        let mut t = LoopbackTransport::instant();
        let (a, b) = (PeerId(0), PeerId(1));
        t.register(a).unwrap();
        t.register(b).unwrap();
        assert!(t.inject_fault(LinkFault::Partition {
            groups: vec![vec![a], vec![b]],
            from: 100,
            until: 200,
        }));
        // Before the window: delivered.
        t.send_from(50, a, b, frame(1)).unwrap();
        assert_eq!(t.poll(60).len(), 1);
        // Inside the window: cross-group dropped, same-group unaffected.
        t.send_from(150, a, b, frame(2)).unwrap();
        t.send_from(150, b, a, frame(3)).unwrap();
        t.send_from(150, a, a, frame(4)).unwrap();
        assert_eq!(t.poll(160).len(), 1);
        assert_eq!(t.frames_dropped(), 2);
        // After the window: healed.
        t.send_from(200, a, b, frame(5)).unwrap();
        assert_eq!(t.poll(210).len(), 1);
    }

    #[test]
    fn per_link_jitter_is_stable_and_seeded() {
        let due_times = |seed| {
            let mut t = LoopbackTransport::new(LoopbackConfig {
                latency_min_ms: 10,
                latency_max_ms: 10,
                seed,
            });
            t.register(PeerId(0)).unwrap();
            t.register(PeerId(1)).unwrap();
            assert!(t.inject_fault(LinkFault::Jitter { max_ms: 500 }));
            t.send_from(0, PeerId(0), PeerId(1), frame(1)).unwrap();
            t.send_from(0, PeerId(0), PeerId(1), frame(2)).unwrap();
            t.send_from(0, PeerId(1), PeerId(0), frame(3)).unwrap();
            let mut dues = Vec::new();
            while let Some(due) = t.next_due() {
                dues.push(due);
                t.poll(due);
            }
            dues
        };
        let dues = due_times(7);
        // Same link, same offset: both frames share a due time.
        assert_eq!(dues.len(), 2, "two distinct link offsets: {dues:?}");
        assert_eq!(due_times(7), due_times(7));
        assert_ne!(due_times(7), due_times(8));
    }

    #[test]
    fn unknown_peers_are_rejected() {
        let mut t = LoopbackTransport::instant();
        assert!(matches!(
            t.send(0, PeerId(3), frame(0)),
            Err(TransportError::UnknownPeer(PeerId(3)))
        ));
        t.register(PeerId(3)).unwrap();
        assert!(matches!(
            t.register(PeerId(3)),
            Err(TransportError::AlreadyRegistered(PeerId(3)))
        ));
        assert_eq!(t.addr_of(PeerId(3)), Some(PeerAddr::Local(PeerId(3))));
        assert_eq!(t.addr_of(PeerId(4)), None);
    }
}
