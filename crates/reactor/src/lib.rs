//! # pgrid-reactor
//!
//! Poll-driven multiplexed transport: tens of thousands of P-Grid peers
//! per process on a handful of file descriptors.
//!
//! The threaded TCP backend (`pgrid_transport::tcp`) spawns one listener +
//! acceptor thread per hosted peer and one reader thread per connection,
//! which caps a `pgrid-cluster` worker at a few hundred peers.  This crate
//! replaces that with a hand-rolled **epoll** (Linux) event loop — no
//! external dependencies, raw FFI against the C library `std` already
//! links:
//!
//! * **one** listening socket serves *all* locally hosted peers; each wire
//!   record carries its destination peer id (see [`mux`]),
//! * **one** connection per remote process, shared by every peer pair
//!   crossing it, with a bounded per-link write queue, edge-triggered
//!   readiness, and partial-write resume,
//! * a fixed pool of `n_event_threads` event threads multiplexes every
//!   socket; reconnects use the same capped backoff + deterministic jitter
//!   as the threaded backend,
//! * per-link compression negotiation (RLE/varint, off by default) via the
//!   connection hello — the frame-compression hook the threaded wire
//!   format never had room for.
//!
//! [`ReactorTransport`] implements `Transport` *and* `SocketTransport`, so
//! `net::Runtime<T>`, the scenario executor, and the cluster worker adopt
//! it with zero call-site changes.  On non-Linux platforms the type exists
//! but refuses to start ([`supported`] returns `false`); `pgrid-cluster`
//! falls back to the threaded backend with a warning.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mux;

#[cfg(target_os = "linux")]
mod event;
#[cfg(target_os = "linux")]
mod linux;
#[cfg(target_os = "linux")]
pub mod sys;

#[cfg(target_os = "linux")]
pub use linux::ReactorTransport;

#[cfg(not(target_os = "linux"))]
mod stub;
#[cfg(not(target_os = "linux"))]
pub use stub::ReactorTransport;

use pgrid_transport::frame::FrameCodec;
use std::time::Duration;

/// Whether this platform can run the reactor (epoll is Linux-only).
///
/// Callers offering `--transport reactor` should fall back to the threaded
/// backend — with a warning, not an error — when this is `false`.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// Reactor tuning knobs.
#[derive(Copy, Clone, Debug)]
pub struct ReactorConfig {
    /// Event threads multiplexing all sockets; `0` means one per available
    /// core.
    pub n_event_threads: usize,
    /// Wire-side inbox bound in frames: event threads pause reading (TCP
    /// flow control pushes back on the remote) rather than buffer past it.
    /// Mirrors the threaded backend's bounded inbox.
    pub inbox_capacity: usize,
    /// Per-link write queue bound in bytes; a full queue makes `send` wait
    /// up to [`ReactorConfig::send_timeout`] before reporting failure.
    pub write_queue_bytes: usize,
    /// How long a send may wait for write-queue space before it errors
    /// (feeding the runtime's Suspect/Dead link life-cycle).
    pub send_timeout: Duration,
    /// Frame compression offered during link negotiation (off by default;
    /// both ends must opt in for compressed records to flow).
    pub codec: FrameCodec,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            n_event_threads: 0,
            inbox_capacity: 4096,
            write_queue_bytes: 8 << 20,
            send_timeout: Duration::from_secs(2),
            codec: FrameCodec::disabled(),
        }
    }
}

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::{supported, ReactorConfig, ReactorTransport};
}
