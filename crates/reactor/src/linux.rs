//! The Linux reactor transport: caller-facing half.
//!
//! [`ReactorTransport`] owns the address book and the per-link bounded
//! write queues; a small fixed pool of event threads (see
//! [`crate::event`]) owns every socket.  The two halves meet at three
//! points, none of which ever blocks an event thread:
//!
//! * **write queues** — `send` parks the frame in the destination link's
//!   bounded queue and rings the owning event thread's eventfd; a full
//!   queue makes the *caller* wait (bounded, surfacing as a send error on
//!   timeout, which feeds the runtime's Suspect/Dead link life-cycle).
//! * **the shared inbox** — event threads push fully reassembled frames;
//!   when the inbox is at capacity they *pause reading* that connection
//!   instead of blocking, so TCP flow control pushes back on the remote
//!   writer exactly as the threaded backend's bounded inbox does.
//! * **commands** — new links and accepted connections are handed to the
//!   owning event thread through a tiny mailbox plus eventfd ring.
//!
//! Frames between two *locally hosted* peers never touch a socket: they go
//! straight into the inbox, which is what lets one worker host 50k+ peers
//! through a construction timeline without 50k listening sockets — the
//! whole transport uses one listener, one eventfd per event thread, and
//! one connection per remote process.

use crate::event::EventLoop;
use crate::sys::EventFd;
use crate::ReactorConfig;
use bytes::Bytes;
use pgrid_core::routing::PeerId;
use pgrid_transport::{
    Millis, PeerAddr, ReactorStats, SocketTransport, Transport, TransportError, TransportStats,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{IntoRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// State shared between the caller and every event thread.
pub(crate) struct Shared {
    /// Reassembled frames awaiting [`Transport::poll`], as
    /// `(destination peer, frame)`.
    pub inbox: Mutex<VecDeque<(u64, Bytes)>>,
    /// Wire-side inbox bound: event threads pause reading a connection
    /// rather than push past this.  Local deliveries are exempt (the
    /// caller pushing is also the only drainer — blocking it would
    /// deadlock).
    pub inbox_capacity: usize,
    pub stop: AtomicBool,
    pub epoll_wakeups: AtomicU64,
    pub partial_writes: AtomicU64,
    pub reconnects: AtomicU64,
    pub dropped_frames: AtomicU64,
    pub registered_fds: AtomicU64,
    pub frames_compressed: AtomicU64,
    pub compressed_bytes_raw: AtomicU64,
    pub compressed_bytes_wire: AtomicU64,
}

impl Shared {
    fn new(inbox_capacity: usize) -> Shared {
        Shared {
            inbox: Mutex::new(VecDeque::new()),
            inbox_capacity: inbox_capacity.max(1),
            stop: AtomicBool::new(false),
            epoll_wakeups: AtomicU64::new(0),
            partial_writes: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            dropped_frames: AtomicU64::new(0),
            registered_fds: AtomicU64::new(0),
            frames_compressed: AtomicU64::new(0),
            compressed_bytes_raw: AtomicU64::new(0),
            compressed_bytes_wire: AtomicU64::new(0),
        }
    }
}

/// The mutable interior of one link's write queue.
pub(crate) struct LinkQueue {
    /// Whole frames waiting to be written, with their destination peer
    /// (several peers share one link when they live in the same process).
    pub frames: VecDeque<(u64, Bytes)>,
    pub bytes: usize,
    /// Set by the event thread when the link died with its reconnect
    /// budget exhausted; the next `send` consumes it as an error.
    pub failed: bool,
    /// Set at shutdown so nothing ever waits on a dead transport.
    pub closed: bool,
}

/// One outbound link: the bounded write queue feeding a remote process.
pub(crate) struct Link {
    pub addr: SocketAddr,
    pub queue: Mutex<LinkQueue>,
    pub space: Condvar,
    /// Whether an event thread currently owns (or is dialling) this link's
    /// connection; cleared when it gives up so a later send re-dials.
    pub active: AtomicBool,
    pub capacity_bytes: usize,
}

impl Link {
    fn new(addr: SocketAddr, capacity_bytes: usize) -> Link {
        Link {
            addr,
            queue: Mutex::new(LinkQueue {
                frames: VecDeque::new(),
                bytes: 0,
                failed: false,
                closed: false,
            }),
            space: Condvar::new(),
            active: AtomicBool::new(false),
            capacity_bytes: capacity_bytes.max(1),
        }
    }
}

/// Work handed from the caller (or a sibling thread) to an event thread.
pub(crate) enum Command {
    /// Open (or re-own) the connection for this link.
    Dial(Arc<Link>),
    /// Adopt an accepted inbound connection.
    Inbound(RawFd),
}

/// The caller-visible half of one event thread.
pub(crate) struct ThreadShared {
    pub commands: Mutex<Vec<Command>>,
    pub waker: EventFd,
}

/// The poll-driven multiplexed transport (Linux).
///
/// See the crate docs for the architecture; the short version: all local
/// peers share one listening socket, all sockets live on `n_event_threads`
/// epoll loops, and the caller talks to them through bounded queues.
pub struct ReactorTransport {
    config: ReactorConfig,
    addrs: HashMap<PeerId, SocketAddr>,
    local: HashSet<PeerId>,
    listen_addr: Option<SocketAddr>,
    links: HashMap<SocketAddr, Arc<Link>>,
    threads: Vec<JoinHandle<()>>,
    thread_shared: Arc<Vec<Arc<ThreadShared>>>,
    shared: Arc<Shared>,
    stats: TransportStats,
    local_frames_sent: u64,
}

impl Default for ReactorTransport {
    fn default() -> ReactorTransport {
        ReactorTransport::new()
    }
}

impl ReactorTransport {
    /// Creates a transport with the default configuration.  Event threads
    /// and the listener start lazily on the first registration or remote
    /// send.
    pub fn new() -> ReactorTransport {
        ReactorTransport::with_config(ReactorConfig::default())
    }

    /// Creates a transport with an explicit configuration.
    pub fn with_config(config: ReactorConfig) -> ReactorTransport {
        let shared = Arc::new(Shared::new(config.inbox_capacity));
        ReactorTransport {
            config,
            addrs: HashMap::new(),
            local: HashSet::new(),
            listen_addr: None,
            links: HashMap::new(),
            threads: Vec::new(),
            thread_shared: Arc::new(Vec::new()),
            shared,
            stats: TransportStats::default(),
            local_frames_sent: 0,
        }
    }

    /// The shared mux listener address (every local peer's address), once
    /// started.
    pub fn listen_addr(&self) -> Option<SocketAddr> {
        self.listen_addr
    }

    fn ensure_started(&mut self) -> Result<(), TransportError> {
        if self.listen_addr.is_some() {
            return Ok(());
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let listener_fd = listener.into_raw_fd();
        let n_threads = if self.config.n_event_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.n_event_threads
        };
        let mut thread_shared = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            thread_shared.push(Arc::new(ThreadShared {
                commands: Mutex::new(Vec::new()),
                waker: EventFd::new()?,
            }));
        }
        let thread_shared = Arc::new(thread_shared);
        let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(n_threads);
        for index in 0..n_threads {
            let event_loop = EventLoop::new(
                index,
                self.shared.clone(),
                thread_shared.clone(),
                (index == 0).then_some(listener_fd),
                self.config.codec,
            );
            let Ok(event_loop) = event_loop else {
                // Unwind the half-started pool before reporting.  Thread 0
                // owns the listener once it is running; only close it here
                // when it never started.
                let close_listener = threads.is_empty();
                self.shared.stop.store(true, Ordering::SeqCst);
                for ts in thread_shared.iter() {
                    ts.waker.ring();
                }
                for handle in threads {
                    let _ = handle.join();
                }
                self.shared.stop.store(false, Ordering::SeqCst);
                if close_listener {
                    crate::sys::close_fd(listener_fd);
                }
                return Err(TransportError::Io(io::Error::other(
                    "reactor event loop setup failed",
                )));
            };
            threads.push(std::thread::spawn(move || event_loop.run()));
        }
        self.listen_addr = Some(addr);
        self.thread_shared = thread_shared;
        self.threads = threads;
        Ok(())
    }

    fn thread_for(&self, addr: SocketAddr) -> usize {
        let mut hasher = DefaultHasher::new();
        addr.hash(&mut hasher);
        (hasher.finish() as usize) % self.thread_shared.len().max(1)
    }

    fn send_remote(
        &mut self,
        to: PeerId,
        addr: SocketAddr,
        frame: Bytes,
    ) -> Result<(), TransportError> {
        self.ensure_started()?;
        let link = self
            .links
            .entry(addr)
            .or_insert_with(|| Arc::new(Link::new(addr, self.config.write_queue_bytes)))
            .clone();
        let frame_len = frame.len();
        let enqueue_error: Option<io::Error> = {
            let mut queue = link.queue.lock().expect("link queue poisoned");
            let deadline = Instant::now() + self.config.send_timeout;
            let mut timed_out = false;
            while !queue.failed
                && !queue.closed
                && !queue.frames.is_empty()
                && queue.bytes + frame_len > link.capacity_bytes
            {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    timed_out = true;
                    break;
                };
                let (guard, wait) = link
                    .space
                    .wait_timeout(queue, remaining)
                    .expect("link queue poisoned");
                queue = guard;
                if wait.timed_out() {
                    timed_out = true;
                    break;
                }
            }
            if queue.failed {
                // The event thread gave up on this link; this send reports
                // the failure (resetting the flag so a later send re-dials),
                // exactly as a threaded-backend send reports its reconnect
                // failure synchronously.
                queue.failed = false;
                Some(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "reactor link failed after reconnect attempts",
                ))
            } else if timed_out {
                Some(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "reactor write queue full",
                ))
            } else if queue.closed {
                Some(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "reactor transport shut down",
                ))
            } else {
                queue.frames.push_back((to.0, frame));
                queue.bytes += frame_len;
                None
            }
        };
        if let Some(error) = enqueue_error {
            let peer_link = self.stats.per_peer.entry(to.0).or_default();
            peer_link.send_failures += 1;
            return Err(TransportError::Io(error));
        }
        let thread = self.thread_for(addr);
        if !link.active.swap(true, Ordering::SeqCst) {
            self.thread_shared[thread]
                .commands
                .lock()
                .expect("command mailbox poisoned")
                .push(Command::Dial(link.clone()));
        }
        self.thread_shared[thread].waker.ring();
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame_len as u64;
        let peer_link = self.stats.per_peer.entry(to.0).or_default();
        peer_link.frames_sent += 1;
        peer_link.bytes_sent += frame_len as u64;
        Ok(())
    }

    fn account_deliveries(&mut self, drained: &[(u64, Bytes)]) {
        for (dest, frame) in drained {
            self.stats.frames_delivered += 1;
            self.stats.bytes_delivered += frame.len() as u64;
            let link = self.stats.per_peer.entry(*dest).or_default();
            link.frames_received += 1;
            link.bytes_received += frame.len() as u64;
        }
    }
}

impl Transport for ReactorTransport {
    fn register(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if self.local.contains(&peer) || self.addrs.contains_key(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.ensure_started()?;
        self.local.insert(peer);
        Ok(PeerAddr::Socket(self.listen_addr.expect("started")))
    }

    fn send(&mut self, _now: Millis, to: PeerId, frame: Bytes) -> Result<(), TransportError> {
        if self.local.contains(&to) {
            // Local delivery: straight into the inbox, no socket, no
            // capacity wait (the caller is the drainer).
            let frame_len = frame.len() as u64;
            self.shared
                .inbox
                .lock()
                .expect("inbox poisoned")
                .push_back((to.0, frame));
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += frame_len;
            self.local_frames_sent += 1;
            let link = self.stats.per_peer.entry(to.0).or_default();
            link.frames_sent += 1;
            link.bytes_sent += frame_len;
            return Ok(());
        }
        let addr = *self.addrs.get(&to).ok_or(TransportError::UnknownPeer(to))?;
        self.send_remote(to, addr, frame)
    }

    fn poll(&mut self, _now: Millis) -> Vec<(PeerId, Bytes)> {
        let (drained, was_full) = {
            let mut inbox = self.shared.inbox.lock().expect("inbox poisoned");
            let was_full = inbox.len() >= self.shared.inbox_capacity;
            (inbox.drain(..).collect::<Vec<_>>(), was_full)
        };
        if was_full {
            // Event threads paused reading while the inbox was full; tell
            // them space opened up rather than waiting for their retry tick.
            for ts in self.thread_shared.iter() {
                ts.waker.ring();
            }
        }
        self.account_deliveries(&drained);
        drained
            .into_iter()
            .map(|(dest, frame)| (PeerId(dest), frame))
            .collect()
    }

    fn next_due(&self) -> Option<Millis> {
        None
    }

    fn is_realtime(&self) -> bool {
        true
    }

    fn in_flight(&self) -> usize {
        // Same estimate as the threaded backend: only frames addressed to
        // locally hosted peers can ever show up in this process's poll.
        self.local_frames_sent
            .saturating_sub(self.stats.frames_delivered) as usize
    }

    fn stats(&self) -> TransportStats {
        let mut stats = self.stats.clone();
        stats.frames_compressed = self.shared.frames_compressed.load(Ordering::Relaxed);
        stats.compressed_bytes_raw = self.shared.compressed_bytes_raw.load(Ordering::Relaxed);
        stats.compressed_bytes_wire = self.shared.compressed_bytes_wire.load(Ordering::Relaxed);
        let mut queue_frames = 0u64;
        let mut queue_bytes = 0u64;
        for link in self.links.values() {
            let queue = link.queue.lock().expect("link queue poisoned");
            queue_frames += queue.frames.len() as u64;
            queue_bytes += queue.bytes as u64;
        }
        stats.reactor = Some(ReactorStats {
            registered_peers: self.local.len() as u64,
            registered_fds: self.shared.registered_fds.load(Ordering::Relaxed),
            epoll_wakeups: self.shared.epoll_wakeups.load(Ordering::Relaxed),
            write_queue_frames: queue_frames,
            write_queue_bytes: queue_bytes,
            partial_writes: self.shared.partial_writes.load(Ordering::Relaxed),
            reconnects: self.shared.reconnects.load(Ordering::Relaxed),
            dropped_frames: self.shared.dropped_frames.load(Ordering::Relaxed),
        });
        stats
    }

    fn addr_of(&self, peer: PeerId) -> Option<PeerAddr> {
        if self.local.contains(&peer) {
            return self.listen_addr.map(PeerAddr::Socket);
        }
        self.addrs.get(&peer).copied().map(PeerAddr::Socket)
    }
}

impl SocketTransport for ReactorTransport {
    fn register_remote(
        &mut self,
        peer: PeerId,
        addr: SocketAddr,
    ) -> Result<PeerAddr, TransportError> {
        if self.local.contains(&peer) || self.addrs.contains_key(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.addrs.insert(peer, addr);
        Ok(PeerAddr::Socket(addr))
    }

    fn update_remote(&mut self, peer: PeerId, addr: SocketAddr) -> Result<(), TransportError> {
        if self.local.contains(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        // Links are keyed by address, so re-pointing the peer is just a map
        // update: the next send dials (or reuses) the new endpoint's link.
        self.addrs.insert(peer, addr);
        Ok(())
    }

    fn register_takeover(&mut self, peer: PeerId) -> Result<PeerAddr, TransportError> {
        if self.local.contains(&peer) {
            return Err(TransportError::AlreadyRegistered(peer));
        }
        self.ensure_started()?;
        // Adopting a peer costs no file descriptor: it joins the local set
        // behind the shared listener.
        self.addrs.remove(&peer);
        self.local.insert(peer);
        Ok(PeerAddr::Socket(self.listen_addr.expect("started")))
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for link in self.links.values() {
            let mut queue = link.queue.lock().expect("link queue poisoned");
            queue.closed = true;
            link.space.notify_all();
        }
        for ts in self.thread_shared.iter() {
            ts.waker.ring();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}
