//! Multiplexed wire records.
//!
//! The reactor hosts *all* local peers behind **one** listening socket, so
//! the stream between two processes carries frames for many destination
//! peers.  Each frame travels as one record:
//!
//! ```text
//! [u8 kind] [u64 dest_peer] [u32 len] [len bytes]     (big-endian)
//! ```
//!
//! `kind` 0 is a raw frame exactly as [`pgrid_transport::frame::encode_frame`]
//! produced it; `kind` 1 is the same frame RLE-compressed (see
//! [`pgrid_transport::frame::FrameCodec`]) — only sent after the peer's
//! hello advertised that it accepts compressed records.
//!
//! Every connection opens with a 6-byte hello in each direction:
//!
//! ```text
//! [b"PGRX"] [u8 version] [u8 flags]      flags bit 0: accepts RLE records
//! ```
//!
//! The hello is the negotiation channel the threaded TCP backend never had:
//! compression is strictly opt-in per link, and a reactor with compression
//! off interoperates with one that has it on (frames simply travel raw).

use bytes::Bytes;
use pgrid_transport::frame::MAX_FRAME_BYTES;

/// First four bytes of every connection, both directions.
pub const MUX_MAGIC: [u8; 4] = *b"PGRX";

/// Mux wire version.
pub const MUX_VERSION: u8 = 1;

/// Hello length in bytes.
pub const HELLO_LEN: usize = 6;

/// Hello flag: the sender accepts RLE-compressed records.
pub const FLAG_ACCEPT_RLE: u8 = 1;

/// Record kind: raw frame bytes.
pub const KIND_RAW: u8 = 0;

/// Record kind: RLE-compressed frame bytes.
pub const KIND_RLE: u8 = 1;

/// Fixed record header length (`kind + dest + len`).
pub const RECORD_HEADER: usize = 1 + 8 + 4;

/// Why a byte stream could not be parsed as mux records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MuxError {
    /// The hello did not start with [`MUX_MAGIC`].
    BadMagic,
    /// The hello carried an unknown [`MUX_VERSION`].
    BadVersion(u8),
    /// A record declared an unknown kind byte.
    BadKind(u8),
    /// A record length exceeds the frame size bound; the stream is corrupt.
    Oversized(usize),
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxError::BadMagic => write!(f, "mux hello magic mismatch"),
            MuxError::BadVersion(v) => write!(f, "unsupported mux version {v}"),
            MuxError::BadKind(k) => write!(f, "unknown mux record kind {k}"),
            MuxError::Oversized(n) => write!(f, "mux record of {n} bytes exceeds the bound"),
        }
    }
}

impl std::error::Error for MuxError {}

/// Builds the connection-opening hello.
pub fn hello(accept_rle: bool) -> [u8; HELLO_LEN] {
    let flags = if accept_rle { FLAG_ACCEPT_RLE } else { 0 };
    [
        MUX_MAGIC[0],
        MUX_MAGIC[1],
        MUX_MAGIC[2],
        MUX_MAGIC[3],
        MUX_VERSION,
        flags,
    ]
}

/// Validates a received hello, returning its flags byte.
pub fn parse_hello(bytes: &[u8]) -> Result<u8, MuxError> {
    debug_assert_eq!(bytes.len(), HELLO_LEN);
    if bytes[..4] != MUX_MAGIC {
        return Err(MuxError::BadMagic);
    }
    if bytes[4] != MUX_VERSION {
        return Err(MuxError::BadVersion(bytes[4]));
    }
    Ok(bytes[5])
}

/// Appends one record to `out`.
pub fn encode_record(out: &mut Vec<u8>, kind: u8, dest: u64, payload: &[u8]) {
    out.reserve(RECORD_HEADER + payload.len());
    out.push(kind);
    out.extend_from_slice(&dest.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// One parsed record: kind, destination peer, payload bytes.
pub type Record = (u8, u64, Bytes);

/// Incremental record reassembly over a byte stream, including the hello.
///
/// Feed received chunks with [`MuxReader::extend`]; call
/// [`MuxReader::take_hello`] until it yields the peer's flags, then
/// [`MuxReader::next_record`] for each complete record.
#[derive(Debug, Default)]
pub struct MuxReader {
    buf: Vec<u8>,
}

impl MuxReader {
    /// Creates an empty reader.
    pub fn new() -> MuxReader {
        MuxReader::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered, not yet consumed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the peer hello once its 6 bytes are buffered, returning the
    /// flags byte; `None` while incomplete.
    pub fn take_hello(&mut self) -> Result<Option<u8>, MuxError> {
        if self.buf.len() < HELLO_LEN {
            return Ok(None);
        }
        let flags = parse_hello(&self.buf[..HELLO_LEN])?;
        self.buf.drain(..HELLO_LEN);
        Ok(Some(flags))
    }

    /// Returns the next complete record, `None` when more bytes are needed.
    pub fn next_record(&mut self) -> Result<Option<Record>, MuxError> {
        if self.buf.len() < RECORD_HEADER {
            return Ok(None);
        }
        let kind = self.buf[0];
        if kind != KIND_RAW && kind != KIND_RLE {
            return Err(MuxError::BadKind(kind));
        }
        let dest = u64::from_be_bytes(self.buf[1..9].try_into().expect("8 bytes"));
        let len = u32::from_be_bytes(self.buf[9..13].try_into().expect("4 bytes")) as usize;
        // A compressed payload is never larger than raw (the codec declines
        // otherwise), so one bound covers both kinds.
        if len > MAX_FRAME_BYTES + 4 {
            return Err(MuxError::Oversized(len));
        }
        let total = RECORD_HEADER + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        let mut record = std::mem::replace(&mut self.buf, rest);
        record.drain(..RECORD_HEADER);
        Ok(Some((kind, dest, Bytes::from(record))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips_and_rejects_garbage() {
        for accept in [false, true] {
            let h = hello(accept);
            let flags = parse_hello(&h).unwrap();
            assert_eq!(flags & FLAG_ACCEPT_RLE != 0, accept);
        }
        assert_eq!(parse_hello(b"PGRY\x01\x00"), Err(MuxError::BadMagic));
        assert_eq!(
            parse_hello(b"PGRX\x63\x00"),
            Err(MuxError::BadVersion(0x63))
        );
    }

    #[test]
    fn records_reassemble_at_every_chunk_size() {
        let payloads: Vec<(u8, u64, Vec<u8>)> = vec![
            (KIND_RAW, 0, vec![]),
            (KIND_RAW, 42, vec![7u8; 300]),
            (KIND_RLE, u64::MAX, (0..=255u8).collect()),
        ];
        let mut stream: Vec<u8> = hello(true).to_vec();
        for (kind, dest, payload) in &payloads {
            encode_record(&mut stream, *kind, *dest, payload);
        }
        for chunk_size in [1usize, 2, 5, 13, 64, stream.len()] {
            let mut reader = MuxReader::new();
            let mut hello_flags = None;
            let mut got = Vec::new();
            for chunk in stream.chunks(chunk_size) {
                reader.extend(chunk);
                if hello_flags.is_none() {
                    hello_flags = reader.take_hello().unwrap();
                    if hello_flags.is_none() {
                        continue;
                    }
                }
                while let Some(record) = reader.next_record().unwrap() {
                    got.push(record);
                }
            }
            assert_eq!(hello_flags, Some(FLAG_ACCEPT_RLE), "chunks of {chunk_size}");
            assert_eq!(got.len(), payloads.len());
            for ((kind, dest, payload), (got_kind, got_dest, got_payload)) in
                payloads.iter().zip(&got)
            {
                assert_eq!(kind, got_kind);
                assert_eq!(dest, got_dest);
                assert_eq!(payload.as_slice(), got_payload.as_slice());
            }
            assert_eq!(reader.buffered(), 0);
        }
    }

    #[test]
    fn corrupt_records_are_rejected() {
        let mut reader = MuxReader::new();
        reader.extend(&[9u8; RECORD_HEADER]);
        assert!(matches!(reader.next_record(), Err(MuxError::BadKind(9))));
        let mut reader = MuxReader::new();
        let mut huge = vec![KIND_RAW];
        huge.extend_from_slice(&0u64.to_be_bytes());
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        reader.extend(&huge);
        assert!(matches!(reader.next_record(), Err(MuxError::Oversized(_))));
    }
}
