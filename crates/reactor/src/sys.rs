//! Hand-rolled Linux epoll / socket FFI — no `libc` crate.
//!
//! The workspace builds without registry access, so the raw syscall wrappers
//! the event loop needs are declared directly against the C library `std`
//! already links.  Everything here is Linux-only (`lib.rs` gates the module)
//! and deliberately minimal: epoll, eventfd, non-blocking connect/accept,
//! and plain `read`/`write` on raw descriptors.

use std::io;
use std::net::SocketAddr;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};

// Values from the Linux UAPI headers (x86-64 and aarch64 agree on all of
// these except the epoll_event packing, handled below).

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the descriptor.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered mode.
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0o4000;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_ERROR: c_int = 4;
const IPPROTO_TCP: c_int = 6;
const TCP_NODELAY: c_int = 1;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;

/// One epoll readiness event.  Packed on x86-64 (the kernel ABI there has
/// no padding between `events` and `data`); naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Copy, Clone)]
pub struct EpollEvent {
    /// Readiness bits (`EPOLL*`).
    pub events: u32,
    /// Caller token identifying the descriptor.
    pub data: u64,
}

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(fd: c_int, addr: *const SockAddrIn, len: c_uint) -> c_int;
    fn accept4(fd: c_int, addr: *mut c_void, len: *mut c_uint, flags: c_int) -> c_int;
    fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut c_uint,
    ) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: c_uint,
    ) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Closes a raw descriptor, ignoring errors (shutdown path).
pub fn close_fd(fd: RawFd) {
    unsafe {
        let _ = close(fd);
    }
}

/// Reads into `buf`; `WouldBlock` when the socket is drained.
pub fn read_fd(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Writes from `buf`; `WouldBlock` when the socket buffer is full.
pub fn write_fd(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
    let n = unsafe { write(fd, buf.as_ptr().cast(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

/// Disables Nagle on a connected socket (frame batches must not wait).
pub fn set_nodelay(fd: RawFd) {
    let one: c_int = 1;
    unsafe {
        let _ = setsockopt(
            fd,
            IPPROTO_TCP,
            TCP_NODELAY,
            (&one as *const c_int).cast(),
            std::mem::size_of::<c_int>() as c_uint,
        );
    }
}

/// Reads and clears the socket's pending error — the result of a
/// non-blocking connect once `EPOLLOUT` fires.
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    let mut err: c_int = 0;
    let mut len = std::mem::size_of::<c_int>() as c_uint;
    unsafe {
        check(getsockopt(
            fd,
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut c_int).cast(),
            &mut len,
        ))?;
    }
    if err == 0 {
        Ok(())
    } else {
        Err(io::Error::from_raw_os_error(err))
    }
}

/// Starts a non-blocking IPv4 connect; returns the socket and whether it
/// connected synchronously (loopback usually does not even need the
/// `EPOLLOUT` round-trip).  IPv6 targets are dialled through `std` and
/// flipped to non-blocking after the fact — the cluster only ever speaks
/// `127.0.0.1`, so this path is a compatibility fallback.
pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<(RawFd, bool)> {
    let v4 = match addr {
        SocketAddr::V4(v4) => v4,
        SocketAddr::V6(_) => {
            use std::os::fd::IntoRawFd;
            let stream = std::net::TcpStream::connect(addr)?;
            stream.set_nonblocking(true)?;
            return Ok((stream.into_raw_fd(), true));
        }
    };
    let fd = unsafe {
        check(socket(
            AF_INET,
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
        ))?
    };
    let sockaddr = SockAddrIn {
        sin_family: AF_INET as u16,
        sin_port: v4.port().to_be(),
        sin_addr: u32::from_ne_bytes(v4.ip().octets()),
        sin_zero: [0; 8],
    };
    let ret = unsafe { connect(fd, &sockaddr, std::mem::size_of::<SockAddrIn>() as c_uint) };
    if ret == 0 {
        return Ok((fd, true));
    }
    let err = io::Error::last_os_error();
    match err.raw_os_error() {
        Some(EINPROGRESS) | Some(EINTR) => Ok((fd, false)),
        _ => {
            close_fd(fd);
            Err(err)
        }
    }
}

/// Accepts one pending connection on a non-blocking listener; `Ok(None)`
/// when the backlog is drained.
pub fn accept_nonblocking(listener: RawFd) -> io::Result<Option<RawFd>> {
    let ret = unsafe {
        accept4(
            listener,
            std::ptr::null_mut(),
            std::ptr::null_mut(),
            SOCK_NONBLOCK | SOCK_CLOEXEC,
        )
    };
    if ret >= 0 {
        return Ok(Some(ret));
    }
    let err = io::Error::last_os_error();
    match err.kind() {
        io::ErrorKind::WouldBlock => Ok(None),
        io::ErrorKind::Interrupted => Ok(None),
        _ => Err(err),
    }
}

/// An epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates the instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { check(epoll_create1(EPOLL_CLOEXEC))? };
        Ok(Epoll { fd })
    }

    /// Registers `fd` for `events`, tagging readiness with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        unsafe { check(epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut event)).map(|_| ()) }
    }

    /// Deregisters `fd`.
    pub fn del(&self, fd: RawFd) {
        unsafe {
            let _ = epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, std::ptr::null_mut());
        }
    }

    /// Waits up to `timeout_ms` (`-1` blocks) and fills `events`; EINTR
    /// reports as zero events.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let ret = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as c_int,
                timeout_ms,
            )
        };
        if ret >= 0 {
            return Ok(ret as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            Ok(0)
        } else {
            Err(err)
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// An eventfd used to wake an event thread out of `epoll_wait`.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Creates a non-blocking eventfd.
    pub fn new() -> io::Result<EventFd> {
        let fd = unsafe { check(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK))? };
        Ok(EventFd { fd })
    }

    /// The raw descriptor (for epoll registration).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the owner; coalesces with pending wakes.
    pub fn ring(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = write_fd(self.fd, &one);
    }

    /// Clears pending wakes after the owner woke up.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = read_fd(self.fd, &mut buf);
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}
