//! The reactor event threads.
//!
//! Each thread owns one epoll instance plus every socket sharded onto it:
//! thread 0 additionally owns the shared listener, outbound connections
//! land on `hash(remote addr) % n_threads`, and accepted inbound
//! connections are dealt round-robin.  Everything is edge-triggered
//! (`EPOLLET`): readiness is latched into per-connection `readable` /
//! `writable` flags and serviced until `EAGAIN`, with partial writes
//! resuming from a per-connection cursor when `EPOLLOUT` fires again.
//!
//! The loop never blocks on anything but `epoll_wait`: a full inbox pauses
//! reading (retried on a short tick or when the caller's poll rings the
//! waker), write queues are drained frame-by-frame under a briefly held
//! lock, and reconnects are driven by a timer list with the same capped
//! backoff + deterministic jitter as the threaded backend's
//! `connect_with_backoff`.

use crate::linux::{Command, Link, Shared, ThreadShared};
use crate::mux::{encode_record, MuxReader, FLAG_ACCEPT_RLE, KIND_RAW, KIND_RLE};
use crate::sys::{
    accept_nonblocking, close_fd, connect_nonblocking, read_fd, set_nodelay, take_socket_error,
    write_fd, Epoll, EpollEvent, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use bytes::Bytes;
use pgrid_transport::frame::{Compression, FrameCodec};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::SocketAddr;
use std::os::fd::RawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Dial attempts before a link is declared failed (parity with the
/// threaded backend's `CONNECT_ATTEMPTS`).
const CONNECT_ATTEMPTS: u32 = 3;

/// First reconnect backoff in milliseconds; doubles per attempt.
const CONNECT_BACKOFF_MS: u64 = 5;

/// Backoff cap in milliseconds.
const CONNECT_BACKOFF_CAP_MS: u64 = 40;

/// Idle `epoll_wait` bound: shutdown and command delivery are eventfd
/// driven, so this only caps how stale the timer scan can get.
const IDLE_TIMEOUT_MS: i32 = 500;

/// Retry tick while any connection is paused on a full inbox.
const INBOX_RETRY_MS: i32 = 5;

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// Deterministic jitter on the reconnect backoff, derived from the address
/// and attempt exactly like the threaded backend (no RNG state consumed).
fn backoff_delay(addr: SocketAddr, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let delay_ms = (CONNECT_BACKOFF_MS << exp).min(CONNECT_BACKOFF_CAP_MS);
    let mut j = u64::from(addr.port()) ^ ((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9));
    j ^= j << 13;
    j ^= j >> 7;
    j ^= j << 17;
    Duration::from_millis(delay_ms + j % (delay_ms / 2 + 1))
}

/// One connection owned by an event thread.
struct Conn {
    fd: RawFd,
    /// `Some` for outbound connections: the write queue this socket
    /// drains.  Inbound connections only read.
    link: Option<Arc<Link>>,
    /// Non-blocking connect still in flight (awaiting `EPOLLOUT`).
    connecting: bool,
    /// Peer hello received; resets the reconnect budget and enables
    /// compression if the peer advertised it.
    established: bool,
    peer_flags: u8,
    reader: MuxReader,
    out_buf: Vec<u8>,
    out_pos: usize,
    writable: bool,
    readable: bool,
    /// Parsing stopped because the inbox was full; bytes wait in `reader`.
    paused_on_inbox: bool,
    /// Dial attempt this connection represents (outbound, pre-hello).
    attempt: u32,
}

impl Conn {
    fn new(fd: RawFd, link: Option<Arc<Link>>, connecting: bool, attempt: u32) -> Conn {
        Conn {
            fd,
            link,
            connecting,
            established: false,
            peer_flags: 0,
            reader: MuxReader::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            writable: false,
            readable: false,
            paused_on_inbox: false,
            attempt,
        }
    }
}

/// One event thread's whole world.
pub(crate) struct EventLoop {
    index: usize,
    epoll: Epoll,
    shared: Arc<Shared>,
    threads: Arc<Vec<Arc<ThreadShared>>>,
    listener: Option<RawFd>,
    codec: FrameCodec,
    accept_rle: bool,
    conns: HashMap<u64, Conn>,
    by_addr: HashMap<SocketAddr, u64>,
    next_token: u64,
    /// Scheduled redials: `(due, link, attempt)`.
    timers: Vec<(Instant, Arc<Link>, u32)>,
    /// Round-robin target for accepted connections (thread 0 only).
    next_inbound: usize,
}

impl EventLoop {
    pub(crate) fn new(
        index: usize,
        shared: Arc<Shared>,
        threads: Arc<Vec<Arc<ThreadShared>>>,
        listener: Option<RawFd>,
        codec: FrameCodec,
    ) -> std::io::Result<EventLoop> {
        let epoll = Epoll::new()?;
        epoll.add(threads[index].waker.fd(), EPOLLIN, TOKEN_WAKER)?;
        shared.registered_fds.fetch_add(1, Ordering::Relaxed);
        if let Some(fd) = listener {
            epoll.add(fd, EPOLLIN, TOKEN_LISTENER)?;
            shared.registered_fds.fetch_add(1, Ordering::Relaxed);
        }
        let accept_rle = codec.compression != Compression::None;
        Ok(EventLoop {
            index,
            epoll,
            shared,
            threads,
            listener,
            codec,
            accept_rle,
            conns: HashMap::new(),
            by_addr: HashMap::new(),
            next_token: TOKEN_BASE,
            timers: Vec::new(),
            next_inbound: 0,
        })
    }

    pub(crate) fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; 64];
        loop {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let timeout = self.compute_timeout();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(_) => break,
            };
            if n > 0 {
                self.shared.epoll_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            for event in events.iter().take(n) {
                let token = event.data;
                let bits = event.events;
                match token {
                    TOKEN_WAKER => self.threads[self.index].waker.drain(),
                    TOKEN_LISTENER => self.accept_all(),
                    _ => self.note_readiness(token, bits),
                }
            }
            self.drain_commands();
            self.fire_timers();
            self.service_all();
        }
        self.shutdown();
    }

    fn compute_timeout(&self) -> i32 {
        let mut timeout = IDLE_TIMEOUT_MS;
        if self.conns.values().any(|c| c.paused_on_inbox) {
            timeout = INBOX_RETRY_MS;
        }
        if let Some(due) = self.timers.iter().map(|(due, _, _)| *due).min() {
            let until = due
                .saturating_duration_since(Instant::now())
                .as_millis()
                .min(i32::MAX as u128) as i32;
            timeout = timeout.min(until.max(0));
        }
        timeout
    }

    /// Latches epoll readiness bits into the connection's flags; actual I/O
    /// happens in [`EventLoop::service_all`].
    fn note_readiness(&mut self, token: u64, bits: u32) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.connecting && bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
            match take_socket_error(conn.fd) {
                Ok(()) => {
                    conn.connecting = false;
                    conn.writable = true;
                    set_nodelay(conn.fd);
                    conn.out_buf = crate::mux::hello(self.accept_rle).to_vec();
                    conn.out_pos = 0;
                }
                Err(_) => {
                    self.close_conn(token, true);
                }
            }
            return;
        }
        if bits & EPOLLOUT != 0 {
            conn.writable = true;
        }
        if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
            conn.readable = true;
        }
    }

    fn accept_all(&mut self) {
        let Some(listener) = self.listener else {
            return;
        };
        loop {
            match accept_nonblocking(listener) {
                Ok(Some(fd)) => {
                    let target = self.next_inbound % self.threads.len();
                    self.next_inbound = self.next_inbound.wrapping_add(1);
                    if target == self.index {
                        self.adopt_inbound(fd);
                    } else {
                        self.threads[target]
                            .commands
                            .lock()
                            .expect("command mailbox poisoned")
                            .push(Command::Inbound(fd));
                        self.threads[target].waker.ring();
                    }
                }
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    fn adopt_inbound(&mut self, fd: RawFd) {
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(fd, EPOLLIN | EPOLLOUT | EPOLLET, token)
            .is_err()
        {
            close_fd(fd);
            return;
        }
        set_nodelay(fd);
        self.shared.registered_fds.fetch_add(1, Ordering::Relaxed);
        let mut conn = Conn::new(fd, None, false, 0);
        conn.writable = true;
        conn.out_buf = crate::mux::hello(self.accept_rle).to_vec();
        self.conns.insert(token, conn);
    }

    fn drain_commands(&mut self) {
        let commands = std::mem::take(
            &mut *self.threads[self.index]
                .commands
                .lock()
                .expect("command mailbox poisoned"),
        );
        for command in commands {
            match command {
                Command::Dial(link) => {
                    if !self.by_addr.contains_key(&link.addr) {
                        self.dial(link, 0);
                    }
                }
                Command::Inbound(fd) => self.adopt_inbound(fd),
            }
        }
    }

    fn dial(&mut self, link: Arc<Link>, attempt: u32) {
        if self.shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match connect_nonblocking(link.addr) {
            Ok((fd, connected)) => {
                let token = self.next_token;
                self.next_token += 1;
                if self
                    .epoll
                    .add(fd, EPOLLIN | EPOLLOUT | EPOLLET, token)
                    .is_err()
                {
                    close_fd(fd);
                    self.redial_later(link, attempt);
                    return;
                }
                self.shared.registered_fds.fetch_add(1, Ordering::Relaxed);
                let addr = link.addr;
                let mut conn = Conn::new(fd, Some(link), !connected, attempt);
                if connected {
                    set_nodelay(fd);
                    conn.writable = true;
                    conn.out_buf = crate::mux::hello(self.accept_rle).to_vec();
                }
                self.conns.insert(token, conn);
                self.by_addr.insert(addr, token);
            }
            Err(_) => self.redial_later(link, attempt),
        }
    }

    /// Runs the reconnect policy after attempt `attempt` failed.
    fn redial_later(&mut self, link: Arc<Link>, attempt: u32) {
        let next = attempt + 1;
        if next >= CONNECT_ATTEMPTS {
            self.fail_link(&link);
            return;
        }
        self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
        self.timers
            .push((Instant::now() + backoff_delay(link.addr, next), link, next));
    }

    /// Declares a link dead: drops whatever is queued (the protocol
    /// tolerates loss; the runtime's link life-cycle sees the failure on
    /// the caller's next send) and releases ownership so that send can
    /// re-dial.
    fn fail_link(&mut self, link: &Arc<Link>) {
        let dropped = {
            let mut queue = link.queue.lock().expect("link queue poisoned");
            queue.failed = true;
            let dropped = queue.frames.len() as u64;
            queue.frames.clear();
            queue.bytes = 0;
            dropped
        };
        if dropped > 0 {
            self.shared
                .dropped_frames
                .fetch_add(dropped, Ordering::Relaxed);
        }
        link.active.store(false, Ordering::SeqCst);
        link.space.notify_all();
        pgrid_obs::warn!(
            "reactor",
            "link to {} failed after {} connect attempts ({} queued frames dropped)",
            link.addr,
            CONNECT_ATTEMPTS,
            dropped
        );
    }

    fn fire_timers(&mut self) {
        if self.timers.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut due = Vec::new();
        self.timers.retain(|(at, link, attempt)| {
            if *at <= now {
                due.push((link.clone(), *attempt));
                false
            } else {
                true
            }
        });
        for (link, attempt) in due {
            let closed = link.queue.lock().expect("link queue poisoned").closed;
            if !closed && !self.by_addr.contains_key(&link.addr) {
                self.dial(link, attempt);
            }
        }
    }

    fn service_all(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if self.service_read(token) {
                let _ = self.service_write(token);
            }
        }
    }

    /// Reads and parses as much as the socket and the inbox allow.
    /// Returns `false` when the connection was closed.
    fn service_read(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            // Parse buffered bytes first: hello, then records.
            if !conn.established {
                match conn.reader.take_hello() {
                    Ok(Some(flags)) => {
                        conn.peer_flags = flags;
                        conn.established = true;
                        conn.attempt = 0;
                    }
                    Ok(None) => {}
                    Err(_) => {
                        self.close_conn(token, true);
                        return false;
                    }
                }
            }
            if self.conns.get(&token).map(|c| c.established) == Some(true) {
                match self.parse_records(token) {
                    Ok(()) => {}
                    Err(()) => {
                        self.close_conn(token, true);
                        return false;
                    }
                }
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.paused_on_inbox || !conn.readable {
                return true;
            }
            let mut buf = [0u8; 64 * 1024];
            match read_fd(conn.fd, &mut buf) {
                Ok(0) => {
                    self.close_conn(token, true);
                    return false;
                }
                Ok(n) => conn.reader.extend(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conn.readable = false;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token, true);
                    return false;
                }
            }
        }
    }

    /// Parses complete records into the inbox, pausing on a full inbox.
    fn parse_records(&mut self, token: u64) -> Result<(), ()> {
        loop {
            let capacity = self.shared.inbox_capacity;
            {
                let inbox = self.shared.inbox.lock().expect("inbox poisoned");
                if inbox.len() >= capacity {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.paused_on_inbox = conn.reader.buffered() > 0;
                        if conn.paused_on_inbox {
                            return Ok(());
                        }
                    }
                    return Ok(());
                }
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                return Err(());
            };
            conn.paused_on_inbox = false;
            let record = match conn.reader.next_record() {
                Ok(Some(record)) => record,
                Ok(None) => return Ok(()),
                Err(_) => return Err(()),
            };
            let (kind, dest, payload) = record;
            let frame = match kind {
                KIND_RAW => payload,
                KIND_RLE => match FrameCodec::decompress(payload.as_slice()) {
                    Ok(raw) => Bytes::from(raw),
                    Err(_) => return Err(()),
                },
                _ => return Err(()),
            };
            self.shared
                .inbox
                .lock()
                .expect("inbox poisoned")
                .push_back((dest, frame));
        }
    }

    /// Flushes the out-buffer and refills it from the link's write queue.
    /// Returns `false` when the connection was closed.
    fn service_write(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            if conn.connecting || !conn.writable {
                return true;
            }
            if conn.out_pos == conn.out_buf.len() && !self.refill_out_buf(token) {
                return true;
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                return false;
            };
            let remaining = conn.out_buf.len() - conn.out_pos;
            match write_fd(conn.fd, &conn.out_buf[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(token, true);
                    return false;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    if n < remaining {
                        self.shared.partial_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conn.writable = false;
                    return true;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token, true);
                    return false;
                }
            }
        }
    }

    /// Encodes the next queued frame into the out-buffer.  Returns whether
    /// there is anything to write.
    fn refill_out_buf(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        let Some(link) = conn.link.clone() else {
            // Inbound connections only ever write their hello.
            return false;
        };
        let next = {
            let mut queue = link.queue.lock().expect("link queue poisoned");
            match queue.frames.pop_front() {
                Some((dest, frame)) => {
                    queue.bytes -= frame.len();
                    Some((dest, frame))
                }
                None => None,
            }
        };
        let Some((dest, frame)) = next else {
            conn.out_buf.clear();
            conn.out_pos = 0;
            return false;
        };
        link.space.notify_all();
        conn.out_buf.clear();
        conn.out_pos = 0;
        let compress = conn.established && conn.peer_flags & FLAG_ACCEPT_RLE != 0;
        let compressed = if compress {
            self.codec.compress(frame.as_slice())
        } else {
            None
        };
        match compressed {
            Some(wire) => {
                self.shared
                    .frames_compressed
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .compressed_bytes_raw
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                self.shared
                    .compressed_bytes_wire
                    .fetch_add(wire.len() as u64, Ordering::Relaxed);
                encode_record(&mut conn.out_buf, KIND_RLE, dest, &wire);
            }
            None => encode_record(&mut conn.out_buf, KIND_RAW, dest, frame.as_slice()),
        }
        true
    }

    /// Closes a connection; when it carried a link, runs the reconnect
    /// policy (`errored` distinguishes failure from shutdown).
    fn close_conn(&mut self, token: u64, errored: bool) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        self.epoll.del(conn.fd);
        close_fd(conn.fd);
        self.shared.registered_fds.fetch_sub(1, Ordering::Relaxed);
        let Some(link) = conn.link else {
            return;
        };
        self.by_addr.remove(&link.addr);
        // A record half-written when the connection died is gone for good
        // (the remote drops the truncated tail); frames still queued get
        // another chance after the redial.
        if conn.out_pos > 0 && conn.out_pos < conn.out_buf.len() && conn.established {
            self.shared.dropped_frames.fetch_add(1, Ordering::Relaxed);
        }
        if !errored {
            return;
        }
        if conn.established {
            // A previously healthy connection died: immediate redial with a
            // fresh budget.
            self.shared.reconnects.fetch_add(1, Ordering::Relaxed);
            self.dial(link, 0);
        } else {
            self.redial_later(link, conn.attempt);
        }
    }

    fn shutdown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token, false);
        }
        if let Some(fd) = self.listener.take() {
            self.epoll.del(fd);
            close_fd(fd);
            self.shared.registered_fds.fetch_sub(1, Ordering::Relaxed);
        }
        self.shared.registered_fds.fetch_sub(1, Ordering::Relaxed); // waker
    }
}
