//! Non-Linux stand-in: the type exists so callers compile everywhere, but
//! every operation that would need epoll reports `Unsupported`.  Callers
//! check [`crate::supported`] and fall back to the threaded backend.

use crate::ReactorConfig;
use bytes::Bytes;
use pgrid_core::routing::PeerId;
use pgrid_transport::{
    Millis, PeerAddr, SocketTransport, Transport, TransportError, TransportStats,
};
use std::net::SocketAddr;

/// The poll-driven multiplexed transport (unavailable on this platform).
pub struct ReactorTransport;

impl Default for ReactorTransport {
    fn default() -> ReactorTransport {
        ReactorTransport::new()
    }
}

impl ReactorTransport {
    /// Creates the stub; any registration or send will fail.
    pub fn new() -> ReactorTransport {
        ReactorTransport
    }

    /// Creates the stub; the configuration is ignored.
    pub fn with_config(_config: ReactorConfig) -> ReactorTransport {
        ReactorTransport
    }

    /// Always `None` on this platform.
    pub fn listen_addr(&self) -> Option<SocketAddr> {
        None
    }
}

fn unsupported() -> TransportError {
    TransportError::Io(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the reactor transport requires Linux epoll",
    ))
}

impl Transport for ReactorTransport {
    fn register(&mut self, _peer: PeerId) -> Result<PeerAddr, TransportError> {
        Err(unsupported())
    }

    fn send(&mut self, _now: Millis, _to: PeerId, _frame: Bytes) -> Result<(), TransportError> {
        Err(unsupported())
    }

    fn poll(&mut self, _now: Millis) -> Vec<(PeerId, Bytes)> {
        Vec::new()
    }

    fn next_due(&self) -> Option<Millis> {
        None
    }

    fn is_realtime(&self) -> bool {
        true
    }

    fn in_flight(&self) -> usize {
        0
    }

    fn stats(&self) -> TransportStats {
        TransportStats::default()
    }

    fn addr_of(&self, _peer: PeerId) -> Option<PeerAddr> {
        None
    }
}

impl SocketTransport for ReactorTransport {
    fn register_remote(
        &mut self,
        _peer: PeerId,
        _addr: SocketAddr,
    ) -> Result<PeerAddr, TransportError> {
        Err(unsupported())
    }

    fn update_remote(&mut self, _peer: PeerId, _addr: SocketAddr) -> Result<(), TransportError> {
        Err(unsupported())
    }

    fn register_takeover(&mut self, _peer: PeerId) -> Result<PeerAddr, TransportError> {
        Err(unsupported())
    }
}
