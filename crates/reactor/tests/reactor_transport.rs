//! End-to-end tests of the reactor transport over real sockets.
//!
//! Everything here is Linux-only (epoll); the suite is a no-op elsewhere.

#![cfg(target_os = "linux")]

use bytes::Bytes;
use pgrid_core::routing::PeerId;
use pgrid_reactor::{ReactorConfig, ReactorTransport};
use pgrid_transport::frame::{decode_frame, encode_frame, FrameCodec};
use pgrid_transport::{PeerAddr, SocketTransport, Transport, TransportError};
use std::time::{Duration, Instant};

fn payload(tag: u8, len: usize) -> Bytes {
    Bytes::from(vec![tag; len])
}

/// Polls until `count` frames arrived or a real-time deadline passes.
fn poll_n(t: &mut ReactorTransport, count: usize) -> Vec<(PeerId, Bytes)> {
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while out.len() < count && Instant::now() < deadline {
        out.extend(t.poll(0));
        if out.len() < count {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    out
}

fn socket_addr(addr: PeerAddr) -> std::net::SocketAddr {
    match addr {
        PeerAddr::Socket(addr) => addr,
        PeerAddr::Local(_) => panic!("reactor registers socket addrs"),
    }
}

#[test]
fn local_peers_share_one_listener_and_frames_flow() {
    let mut t = ReactorTransport::new();
    let a = socket_addr(t.register(PeerId(1)).unwrap());
    let b = socket_addr(t.register(PeerId(2)).unwrap());
    assert_eq!(a, b, "all local peers share the mux listener");
    let batch = vec![payload(7, 100), payload(8, 0), payload(9, 3000)];
    let frame = encode_frame(&batch);
    t.send(0, PeerId(2), frame.clone()).unwrap();
    let got = poll_n(&mut t, 1);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, PeerId(2));
    assert_eq!(decode_frame(&got[0].1).unwrap(), batch);
    assert_eq!(t.in_flight(), 0);
    let stats = t.stats();
    let reactor = stats.reactor.expect("reactor stats present");
    assert_eq!(reactor.registered_peers, 2);
    assert!(reactor.registered_fds >= 1);
}

#[test]
fn frames_cross_processes_in_order_over_one_connection() {
    // Two transports = two "processes".  Many peers on each side, one
    // socket pair between them.
    let mut host = ReactorTransport::new();
    let mut sender = ReactorTransport::new();
    let n_peers = 50u64;
    for peer in 0..n_peers {
        let addr = socket_addr(host.register(PeerId(peer)).unwrap());
        sender.register_remote(PeerId(peer), addr).unwrap();
    }
    let frames: Vec<(PeerId, Bytes)> = (0..200u64)
        .map(|i| {
            (
                PeerId(i % n_peers),
                encode_frame(&[payload(i as u8, 64 + (i as usize % 91))]),
            )
        })
        .collect();
    for (to, frame) in &frames {
        sender.send(0, *to, frame.clone()).unwrap();
    }
    assert_eq!(sender.in_flight(), 0, "remote frames are not local");
    let got = poll_n(&mut host, frames.len());
    assert_eq!(got.len(), frames.len());
    // One connection, one stream: global send order is preserved.
    for (received, sent) in got.iter().zip(&frames) {
        assert_eq!(received.0, sent.0);
        assert_eq!(received.1, sent.1);
    }
    let reactor = host.stats().reactor.expect("reactor stats");
    assert!(reactor.epoll_wakeups > 0, "wire traffic wakes the loop");
}

#[test]
fn compression_is_negotiated_and_counted() {
    let config = ReactorConfig {
        codec: FrameCodec::rle(),
        ..ReactorConfig::default()
    };
    let mut host = ReactorTransport::with_config(config);
    let mut sender = ReactorTransport::with_config(config);
    let addr = socket_addr(host.register(PeerId(5)).unwrap());
    sender.register_remote(PeerId(5), addr).unwrap();
    // Highly compressible replicate-batch-shaped frame.  Frames queued
    // before the hello handshake completes travel raw, so keep sending
    // until a post-handshake frame takes the compressed path.
    let frame = encode_frame(&[payload(0, 64 * 1024)]);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut sent = 0usize;
    let mut received = 0usize;
    loop {
        sender.send(0, PeerId(5), frame.clone()).unwrap();
        sent += 1;
        let got = poll_n(&mut host, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, frame, "decompression is bit-exact");
        received += 1;
        let stats = sender.stats();
        if stats.frames_compressed >= 1 {
            assert_eq!(
                stats.compressed_bytes_raw,
                stats.frames_compressed * frame.len() as u64
            );
            assert!(stats.compressed_bytes_wire < stats.compressed_bytes_raw / 8);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "compression counters never moved"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(sent, received);
}

#[test]
fn uncompressed_sender_interoperates_with_compressing_receiver() {
    let mut host = ReactorTransport::with_config(ReactorConfig {
        codec: FrameCodec::rle(),
        ..ReactorConfig::default()
    });
    let mut sender = ReactorTransport::new(); // compression off
    let addr = socket_addr(host.register(PeerId(9)).unwrap());
    sender.register_remote(PeerId(9), addr).unwrap();
    let frame = encode_frame(&[payload(3, 8192)]);
    sender.send(0, PeerId(9), frame.clone()).unwrap();
    let got = poll_n(&mut host, 1);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].1, frame);
    assert_eq!(sender.stats().frames_compressed, 0);
}

#[test]
fn takeover_adopts_a_remote_peer_without_new_sockets() {
    let peer = PeerId(21);
    let mut dead_host = ReactorTransport::new();
    let old_addr = socket_addr(dead_host.register(peer).unwrap());
    let mut survivor = ReactorTransport::new();
    survivor.register(PeerId(99)).unwrap(); // the survivor's own shard
    survivor.register_remote(peer, old_addr).unwrap();
    drop(dead_host); // the hosting process dies
    let new_addr = socket_addr(survivor.register_takeover(peer).unwrap());
    assert_eq!(
        Some(new_addr),
        survivor.listen_addr(),
        "adopted peers join the shared listener"
    );
    // A third process is re-pointed at the survivor.
    let mut other = ReactorTransport::new();
    other.register_remote(peer, old_addr).unwrap();
    other.update_remote(peer, new_addr).unwrap();
    let frame = encode_frame(&[payload(5, 48)]);
    other.send(0, peer, frame.clone()).unwrap();
    let got = poll_n(&mut survivor, 1);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, peer);
    assert_eq!(got[0].1, frame);
    assert!(matches!(
        survivor.register_takeover(peer),
        Err(TransportError::AlreadyRegistered(_))
    ));
}

#[test]
fn bounded_inbox_backpressure_loses_nothing() {
    // Wire-side inbox far below the frame count: the reactor must pause
    // reading (not drop) and every frame must still arrive.
    let mut host = ReactorTransport::with_config(ReactorConfig {
        inbox_capacity: 4,
        ..ReactorConfig::default()
    });
    let mut sender = ReactorTransport::new();
    let addr = socket_addr(host.register(PeerId(3)).unwrap());
    sender.register_remote(PeerId(3), addr).unwrap();
    let frames: Vec<Bytes> = (0..64u8)
        .map(|i| encode_frame(&[payload(i, 256)]))
        .collect();
    for frame in &frames {
        sender.send(0, PeerId(3), frame.clone()).unwrap();
    }
    let got = poll_n(&mut host, frames.len());
    assert_eq!(got.len(), frames.len());
    for (received, sent) in got.iter().zip(&frames) {
        assert_eq!(&received.1, sent);
    }
}

#[test]
fn dead_endpoints_surface_as_send_errors_not_hangs() {
    let mut t = ReactorTransport::with_config(ReactorConfig {
        send_timeout: Duration::from_millis(4000),
        ..ReactorConfig::default()
    });
    // An address nobody listens on: reserve a port, then close it.
    let doomed = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = doomed.local_addr().unwrap();
    drop(doomed);
    t.register_remote(PeerId(7), addr).unwrap();
    let frame = encode_frame(&[payload(1, 32)]);
    // First send enqueues fine (failure is asynchronous)...
    t.send(0, PeerId(7), frame.clone()).unwrap();
    // ...and once the reconnect budget is burned, a send reports it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(20));
        match t.send(0, PeerId(7), frame.clone()) {
            Err(TransportError::Io(_)) => break,
            Ok(()) => assert!(Instant::now() < deadline, "link failure never surfaced"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    let stats = t.stats();
    assert!(stats.reactor.unwrap().dropped_frames > 0);
    let link = stats.per_peer.get(&7).expect("per-peer stats");
    assert!(link.send_failures >= 1);
    // The link recovers when a listener appears at the address.
    let revived = std::net::TcpListener::bind(addr);
    if let Ok(listener) = revived {
        let mut host = ReactorTransport::new();
        // Adopt the reserved address as the host's listener? Not possible —
        // instead point the peer at the host's real listener.
        drop(listener);
        let new_addr = socket_addr(host.register(PeerId(7)).unwrap());
        t.update_remote(PeerId(7), new_addr).unwrap();
        // The failed flag was consumed; the next send re-dials.
        let mut sent = false;
        for _ in 0..50 {
            if t.send(0, PeerId(7), frame.clone()).is_ok() {
                sent = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(sent, "link never recovered after update_remote");
        let got = poll_n(&mut host, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, frame);
    }
}

#[test]
fn sending_to_unregistered_peers_fails() {
    let mut t = ReactorTransport::new();
    assert!(matches!(
        t.send(0, PeerId(9), encode_frame(&[])),
        Err(TransportError::UnknownPeer(PeerId(9)))
    ));
}

#[test]
fn fifty_thousand_peers_register_on_a_handful_of_fds() {
    let mut t = ReactorTransport::with_config(ReactorConfig {
        n_event_threads: 1,
        ..ReactorConfig::default()
    });
    for peer in 0..50_000u64 {
        t.register(PeerId(peer)).unwrap();
    }
    let reactor = t.stats().reactor.expect("reactor stats");
    assert_eq!(reactor.registered_peers, 50_000);
    assert!(
        reactor.registered_fds < 16,
        "hosting must not scale fds with peers (got {})",
        reactor.registered_fds
    );
    // And the whole population exchanges frames without sockets.
    let frame = encode_frame(&[payload(1, 64)]);
    for peer in (0..50_000u64).step_by(499) {
        t.send(0, PeerId(peer), frame.clone()).unwrap();
    }
    let expected = (0..50_000u64).step_by(499).count();
    let got = poll_n(&mut t, expected);
    assert_eq!(got.len(), expected);
}
