//! Property tests for the mux wire codec: the reactor write path emits
//! `hello + records`, the kernel is free to split that stream at any byte
//! boundary (partial writes / short reads), and the reader must reassemble
//! bit-identical frames regardless of where the cuts land.

use pgrid_reactor::mux::{encode_record, hello, parse_hello, MuxReader, KIND_RAW, KIND_RLE};
use pgrid_transport::frame::FrameCodec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a batch of (dest, frame) pairs mixing noise (stays raw) with
/// run-heavy payloads (large enough to trigger the RLE path).
fn arbitrary_frames(rng: &mut StdRng, max: usize) -> Vec<(u64, Vec<u8>)> {
    let count = rng.gen_range(1..=max);
    (0..count)
        .map(|_| {
            let dest: u64 = rng.gen();
            let frame = if rng.gen_bool(0.5) {
                let len = rng.gen_range(0..300);
                (0..len).map(|_| rng.gen()).collect()
            } else {
                vec![rng.gen::<u8>(); rng.gen_range(513..2048)]
            };
            (dest, frame)
        })
        .collect()
}

/// Encodes a full sender-side stream exactly as the event loop would:
/// a hello followed by one record per frame, compressing when the codec
/// and the negotiated flag both allow it.
fn encode_stream(frames: &[(u64, Vec<u8>)], compress: bool) -> Vec<u8> {
    let codec = if compress {
        FrameCodec::rle()
    } else {
        FrameCodec::disabled()
    };
    let mut stream = Vec::new();
    stream.extend_from_slice(&hello(compress));
    for (dest, frame) in frames {
        match codec.compress(frame) {
            Some(compressed) => encode_record(&mut stream, KIND_RLE, *dest, &compressed),
            None => encode_record(&mut stream, KIND_RAW, *dest, frame),
        }
    }
    stream
}

/// Feeds `stream` into a reader in chunks cut at `splits`, returning every
/// decoded record (after decompression) in order.
fn decode_split(stream: &[u8], splits: &[usize]) -> Vec<(u64, Vec<u8>)> {
    let mut reader = MuxReader::new();
    let mut out = Vec::new();
    let mut cuts: Vec<usize> = splits.iter().map(|s| s % (stream.len() + 1)).collect();
    cuts.push(stream.len());
    cuts.sort_unstable();
    let mut start = 0;
    let mut saw_hello = false;
    for cut in cuts {
        if cut > start {
            reader.extend(&stream[start..cut]);
            start = cut;
        }
        if !saw_hello {
            match reader.take_hello().expect("hello must parse") {
                Some(_flags) => saw_hello = true,
                None => continue,
            }
        }
        while let Some((kind, dest, payload)) = reader.next_record().expect("records must parse") {
            let frame = if kind == KIND_RLE {
                FrameCodec::decompress(payload.as_slice()).expect("valid rle")
            } else {
                payload.as_slice().to_vec()
            };
            out.push((dest, frame));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Arbitrary split positions, raw and compressed, reassemble the exact
    // frames in the exact order.
    #[test]
    fn partial_writes_reassemble_identical_frames(
        seed in any::<u64>(),
        splits in proptest::collection::vec(any::<usize>(), 0..24),
        compress in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = arbitrary_frames(&mut rng, 12);
        let stream = encode_stream(&frames, compress);
        let decoded = decode_split(&stream, &splits);
        prop_assert_eq!(decoded, frames);
    }

    // Byte-at-a-time delivery — the worst partial write the kernel can
    // inflict — still yields identical frames.
    #[test]
    fn single_byte_trickle_reassembles(
        seed in any::<u64>(),
        compress in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames = arbitrary_frames(&mut rng, 4);
        let stream = encode_stream(&frames, compress);
        let every_byte: Vec<usize> = (0..stream.len()).collect();
        let decoded = decode_split(&stream, &every_byte);
        prop_assert_eq!(decoded, frames);
    }

    // The hello round-trips whichever flag byte is negotiated.
    #[test]
    fn hello_roundtrips(accept_rle in any::<bool>()) {
        let bytes = hello(accept_rle);
        let flags = parse_hello(&bytes).expect("self-encoded hello parses");
        prop_assert_eq!(flags & pgrid_reactor::mux::FLAG_ACCEPT_RLE != 0, accept_rle);
    }

    // Corrupting the magic or version is rejected, never mis-parsed.
    #[test]
    fn corrupt_hellos_are_rejected(pos in 0usize..5, delta in 1u8..=255) {
        let mut bytes = hello(true);
        bytes[pos] = bytes[pos].wrapping_add(delta);
        let mut reader = MuxReader::new();
        reader.extend(&bytes);
        prop_assert!(reader.take_hello().is_err());
    }
}
