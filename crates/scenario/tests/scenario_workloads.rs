//! The two ROADMAP workloads opened by the scenario API, end-to-end on
//! both transports:
//!
//! * **churn-heavy construction** — joins and leaves interleaved with
//!   partitioning: churn windows overlap the construction phase instead of
//!   following it;
//! * **multi-index overlay** — two key distributions share one peer
//!   population through the `IndexId` dimension: each index builds its own
//!   trie over the same peers, transport and liveness.

use pgrid_core::index::IndexId;
use pgrid_net::runtime::{NetConfig, Runtime};
use pgrid_scenario::prelude::*;
use pgrid_transport::tcp::TcpTransport;
use pgrid_workload::distributions::Distribution;

const MINUTE: u64 = 60_000;

fn config(n_peers: usize, seed: u64) -> NetConfig {
    NetConfig {
        n_peers,
        keys_per_peer: 10,
        n_min: 5,
        distribution: Distribution::Uniform,
        seed,
        ..NetConfig::default()
    }
}

/// Churn-heavy construction: peers start leaving while the trie is still
/// being partitioned.
fn churn_heavy_scenario(seed: u64) -> Scenario {
    Scenario::builder(seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .start_construction(IndexId::PRIMARY)
        // Churn *during* construction: every peer repeatedly drops for
        // 1–2 minutes with 2–4 minute gaps while partitioning runs.
        .churn(
            20,
            3 * MINUTE,
            (MINUTE, 2 * MINUTE),
            (2 * MINUTE, 4 * MINUTE),
            None,
        )
        .snapshot("churned-construction")
        // Re-arm tick chains that died while their peer was offline (the
        // churn window kills chains whose tick fires during a downtime),
        // then let the survivors finish partitioning.
        .start_construction(IndexId::PRIMARY)
        .run_until(23)
        .snapshot("recovered")
        .query_load(IndexId::PRIMARY, 27)
        .drain()
        .build()
}

fn assert_churn_heavy(report: &ScenarioReport, n_peers: usize) {
    let churned = report.snapshot("churned-construction").unwrap();
    assert!(
        churned.online < n_peers,
        "churn must have peers offline mid-construction ({} online)",
        churned.online
    );
    // Re-engaging construction after the churn window must not lose depth.
    let recovered = report.snapshot("recovered").unwrap();
    assert!(
        recovered.index(IndexId::PRIMARY).unwrap().mean_path_length
            >= churned.index(IndexId::PRIMARY).unwrap().mean_path_length,
        "re-engaged construction went backwards"
    );
    let fin = report.final_snapshot().index(IndexId::PRIMARY).unwrap();
    assert!(
        fin.mean_path_length >= 1.5,
        "the trie must partition despite churn (mean depth {:.2})",
        fin.mean_path_length
    );
    assert!(
        fin.balance_deviation < 1.5,
        "balance deviation {:.3}",
        fin.balance_deviation
    );
    assert!(fin.queries_issued > 0);
    assert!(
        fin.query_success_rate() > 0.6,
        "query success rate {:.2} under churn-heavy construction",
        fin.query_success_rate()
    );
}

#[test]
fn churn_heavy_construction_on_loopback() {
    let config = config(48, 71);
    let mut overlay = Runtime::new(config.clone());
    let report = pgrid_scenario::run(&mut overlay, &churn_heavy_scenario(config.seed));
    assert_churn_heavy(&report, config.n_peers);
}

#[test]
fn churn_heavy_construction_on_tcp() {
    let config = config(16, 71);
    let mut overlay =
        Runtime::with_transport(config.clone(), TcpTransport::new()).expect("register");
    let report = pgrid_scenario::run(&mut overlay, &churn_heavy_scenario(config.seed));
    let fin = report.final_snapshot().index(IndexId::PRIMARY).unwrap();
    assert!(fin.mean_path_length >= 1.0, "{:.2}", fin.mean_path_length);
    assert!(fin.queries_issued > 0);
    assert!(
        fin.query_success_rate() > 0.5,
        "{:.2}",
        fin.query_success_rate()
    );
}

/// Mixed lookup + range load after construction: every issued range must
/// resolve with full interval coverage of its `[lo, hi]` bounds.
fn range_load_scenario(seed: u64) -> Scenario {
    Scenario::builder(seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .start_construction(IndexId::PRIMARY)
        .run_until(22)
        .snapshot("constructed")
        .query_load(IndexId::PRIMARY, 24)
        .range_load(IndexId::PRIMARY, 26, 8, 0.2)
        .drain()
        .build()
}

fn assert_range_load(report: &ScenarioReport) {
    let fin = report.final_snapshot().index(IndexId::PRIMARY).unwrap();
    assert!(fin.queries_issued > 0);
    assert!(fin.ranges_issued > 0, "range phase issued nothing");
    assert_eq!(
        fin.ranges_complete, fin.ranges_issued,
        "{}/{} ranges resolved with complete coverage",
        fin.ranges_complete, fin.ranges_issued
    );
}

#[test]
fn range_load_completes_on_loopback() {
    let config = config(48, 73);
    let mut overlay = Runtime::new(config.clone());
    let report = pgrid_scenario::run(&mut overlay, &range_load_scenario(config.seed));
    assert_range_load(&report);
    let fin = report.final_snapshot().index(IndexId::PRIMARY).unwrap();
    assert!(
        fin.latency_p50_ms.is_some() && fin.latency_p999_ms.is_some(),
        "query load must fill the latency histogram"
    );
}

#[test]
fn range_load_completes_on_tcp() {
    let config = config(16, 73);
    let mut overlay =
        Runtime::with_transport(config.clone(), TcpTransport::new()).expect("register");
    let report = pgrid_scenario::run(&mut overlay, &range_load_scenario(config.seed));
    assert_range_load(&report);
}

/// Two indexes over one peer population: uniform keys on the primary,
/// Pareto keys on the secondary.
fn multi_index_scenario(seed: u64) -> Scenario {
    let secondary = IndexId(1);
    Scenario::builder(seed)
        .join_wave(3, 6)
        .replicate(IndexId::PRIMARY, 5)
        .replicate(secondary, 7)
        .start_construction(IndexId::PRIMARY)
        .start_construction(secondary)
        .run_until(22)
        .snapshot("constructed")
        .query_load(IndexId::PRIMARY, 25)
        .query_load_from(secondary, 28, 0)
        .drain()
        .build()
}

fn assert_multi_index(report: &ScenarioReport) {
    let fin = report.final_snapshot();
    let primary = fin.index(IndexId::PRIMARY).unwrap();
    let secondary = fin.index(IndexId(1)).unwrap();
    for (name, idx) in [("primary", primary), ("secondary", secondary)] {
        assert!(
            idx.mean_path_length >= 1.5,
            "{name} index must build a trie (mean depth {:.2})",
            idx.mean_path_length
        );
        assert!(idx.queries_issued > 0, "{name} index saw no queries");
        assert!(
            idx.query_success_rate() > 0.6,
            "{name} index success rate {:.2}",
            idx.query_success_rate()
        );
    }
    // The two indexes partition *differently* (different distributions),
    // while sharing the population.
    assert_ne!(
        (primary.mean_path_length * 1000.0) as i64,
        (secondary.mean_path_length * 1000.0) as i64,
        "independent distributions should not produce identical tries"
    );
}

#[test]
fn multi_index_overlay_on_loopback() {
    let config = config(48, 23);
    let mut overlay = Runtime::new(config.clone());
    overlay.register_index(IndexId(1), &Distribution::Pareto { shape: 1.0 });
    let report = pgrid_scenario::run(&mut overlay, &multi_index_scenario(config.seed));
    assert_multi_index(&report);
}

#[test]
fn multi_index_overlay_on_tcp() {
    let config = config(16, 23);
    let mut overlay =
        Runtime::with_transport(config.clone(), TcpTransport::new()).expect("register");
    overlay.register_index(IndexId(1), &Distribution::Pareto { shape: 1.0 });
    let report = pgrid_scenario::run(&mut overlay, &multi_index_scenario(config.seed));
    let fin = report.final_snapshot();
    for index in [IndexId::PRIMARY, IndexId(1)] {
        let idx = fin.index(index).unwrap();
        assert!(
            idx.mean_path_length >= 1.0,
            "{index}: {:.2}",
            idx.mean_path_length
        );
        assert!(idx.queries_issued > 0, "{index} saw no queries");
    }
}

#[test]
fn dead_tick_chains_rearm_and_quiescence_is_reachable_after_churn() {
    // Churn during construction kills the tick chain of any peer whose
    // tick fires while it is offline (matching the paper's reference run,
    // where returning peers do not restart maintenance by themselves).  A
    // second `start_construction` re-arms the dead chains, and the overlay
    // must then actually reach quiescence — dead chains and backed-off
    // peers must not wedge `ConstructUntilQuiescent`.
    let config = config(32, 5);
    let mut overlay = Runtime::new(config.clone());
    let scenario = Scenario::builder(config.seed)
        .join_wave(2, 6)
        .replicate(IndexId::PRIMARY, 4)
        .start_construction(IndexId::PRIMARY)
        .churn(
            15,
            2 * MINUTE,
            (MINUTE, 2 * MINUTE),
            (MINUTE, 2 * MINUTE),
            None,
        )
        .snapshot("after-churn")
        .start_construction(IndexId::PRIMARY)
        .construct_until_quiescent(1, 60)
        .build();
    let report = pgrid_scenario::run(&mut overlay, &scenario);
    assert!(
        Overlay::quiescent(&overlay),
        "construction must settle after the churn window"
    );
    let after_churn = report.snapshot("after-churn").unwrap();
    let fin = report.final_snapshot();
    assert!(
        fin.index(IndexId::PRIMARY).unwrap().mean_path_length
            >= after_churn
                .index(IndexId::PRIMARY)
                .unwrap()
                .mean_path_length,
        "re-armed construction lost progress"
    );
}

#[test]
fn secondary_index_does_not_perturb_the_primary_trajectory() {
    // Registering (but never exercising) a secondary index must leave the
    // primary index's deployment byte-identical: the assignment comes from
    // a dedicated RNG stream and secondary traffic only exists once the
    // scenario references the index.
    let config = config(32, 9);
    let timeline = pgrid_net::experiment::Timeline::default();
    let plain = pgrid_scenario::deployment::run_deployment(&config, &timeline);

    let mut overlay = Runtime::new(config.clone());
    overlay.register_index(IndexId(1), &Distribution::Pareto { shape: 1.0 });
    let scenario = Scenario::from_timeline(config.seed, &timeline);
    let _ = pgrid_scenario::run(&mut overlay, &scenario);
    let with_idle_index = pgrid_net::experiment::assemble_report(
        &pgrid_net::experiment::ReportInputs::from_runtime(&overlay),
        &timeline,
    );
    assert_eq!(plain, with_idle_index);
}

#[test]
fn store_captures_are_copy_on_write_and_opt_in() {
    let config = config(16, 21);
    let base = Scenario::builder(config.seed)
        .join_wave(2, 6)
        .replicate(IndexId::PRIMARY, 4)
        .start_construction(IndexId::PRIMARY)
        .run_until(12)
        .snapshot("constructed");

    // Default: snapshots are metric-only, no store captures at all.
    let mut overlay = Runtime::new(config.clone());
    let plain = pgrid_scenario::run(&mut overlay, &base.clone().build());
    assert!(
        plain.store_captures.is_empty(),
        "captures must be strictly opt-in"
    );

    // Opted in: one capture per Snapshot phase, each store an O(1)
    // copy-on-write handle still sharing storage with the live peer.
    let mut overlay = Runtime::new(config);
    let report = pgrid_scenario::run(&mut overlay, &base.capture_stores().build());
    let capture = report.store_capture("constructed").expect("captured");
    assert_eq!(capture.stores.len(), 16);
    let mut entries = 0;
    for (peer, store) in &capture.stores {
        let live = &overlay.peer_state(IndexId::PRIMARY, *peer).store;
        assert!(
            store.shares_storage_with(live) || store != live,
            "an unchanged capture must still share the live peer's storage"
        );
        entries += store.len();
    }
    assert!(entries > 0, "captured stores must hold the corpus");
    // At least one peer was untouched between the snapshot minute and the
    // end of the run — its capture still aliases the live set.
    assert!(
        capture.stores.iter().any(|(peer, store)| store
            .shares_storage_with(&overlay.peer_state(IndexId::PRIMARY, *peer).store)),
        "COW handles must alias live storage until a mutation"
    );
}
