//! Pins the API redesign's core guarantee: the Section-5 timeline driven
//! through the `Scenario` executor reproduces the historical direct driver
//! **byte for byte** — same seed, equal `DeploymentReport` (every minute
//! sample, every summary statistic, every transport counter), and the
//! scenario-driven simulator construction equals the monolithic
//! constructor state for state.

use pgrid_net::experiment::Timeline;
use pgrid_net::runtime::NetConfig;
use pgrid_sim::config::SimConfig;
use pgrid_sim::construction::construct;
use pgrid_workload::distributions::Distribution;

#[test]
fn timeline_as_scenario_reproduces_the_direct_deployment_report() {
    for (n_peers, seed) in [(48, 11), (64, 4)] {
        let config = NetConfig {
            n_peers,
            seed,
            ..NetConfig::default()
        };
        let timeline = Timeline::default();
        let direct = pgrid_net::experiment::run_deployment(&config, &timeline);
        let scenario = pgrid_scenario::deployment::run_deployment(&config, &timeline);
        assert_eq!(
            direct, scenario,
            "scenario-driven deployment diverged from the direct driver \
             (n_peers={n_peers}, seed={seed})"
        );
    }
}

#[test]
fn scenario_deployment_is_reproducible() {
    let config = NetConfig {
        n_peers: 32,
        seed: 5,
        ..NetConfig::default()
    };
    let timeline = Timeline::default();
    let a = pgrid_scenario::deployment::run_deployment(&config, &timeline);
    let b = pgrid_scenario::deployment::run_deployment(&config, &timeline);
    assert_eq!(a, b);
}

#[test]
fn scenario_construction_reproduces_the_monolithic_constructor() {
    for distribution in [Distribution::Uniform, Distribution::Pareto { shape: 1.0 }] {
        let config = SimConfig {
            n_peers: 96,
            seed: 13,
            distribution,
            ..SimConfig::default()
        };
        let direct = construct(&config);
        let scenario = pgrid_scenario::sweeps::construct_scenario(&config);
        assert_eq!(
            direct.peer_paths(),
            scenario.peer_paths(),
            "{distribution}: peer placement diverged"
        );
        assert_eq!(direct.metrics, scenario.metrics, "{distribution}");
        assert_eq!(direct.original_entries, scenario.original_entries);
        for (a, b) in direct.peers.iter().zip(&scenario.peers) {
            assert_eq!(a.store.len(), b.store.len());
            assert_eq!(a.replicas, b.replicas);
        }
    }
}
