//! Scenario-executor unit tests: event ordering under identical virtual
//! timestamps, phase-boundary bookkeeping, and determinism.

use pgrid_core::index::IndexId;
use pgrid_net::runtime::{NetConfig, Runtime};
use pgrid_scenario::prelude::*;
use pgrid_scenario::ChurnEvent;

fn runtime(n_peers: usize, seed: u64) -> Runtime {
    Runtime::new(NetConfig {
        n_peers,
        seed,
        loss_probability: 0.0,
        ..NetConfig::default()
    })
}

#[test]
fn identical_timestamps_resolve_in_schedule_order() {
    // Two liveness flips of the same peer collide at t = 3000ms: the
    // GoOnline of the first interval was scheduled before the GoOffline of
    // the second, so FIFO order at the identical timestamp means the peer
    // must end up *offline* after the collision and online again only when
    // the second interval ends at t = 4000ms.
    let mut overlay = runtime(8, 3);
    for peer in 0..8 {
        overlay.join(peer, 3);
    }
    let scenario = Scenario::builder(3)
        .churn_schedule(
            1,
            vec![
                ChurnEvent {
                    peer: 0,
                    at: 1_000,
                    downtime: 2_000, // back online at 3000
                },
                ChurnEvent {
                    peer: 0,
                    at: 3_000, // goes offline again at the same instant
                    downtime: 1_000,
                },
            ],
            None,
        )
        .build();

    // Drive manually to observe the intermediate states.
    let mut probe = runtime(8, 3);
    for peer in 0..8 {
        probe.join(peer, 3);
    }
    probe.schedule_churn(0, 1_000, 2_000);
    probe.schedule_churn(0, 3_000, 1_000);
    probe.run_until(3_500);
    assert_eq!(probe.online_count(), 7, "peer 0 must be offline at 3500ms");
    probe.run_until(4_001);
    assert_eq!(probe.online_count(), 8, "peer 0 must be back at 4001ms");

    // The executor-driven run ends with everyone online again.
    let report = pgrid_scenario::run(&mut overlay, &scenario);
    assert_eq!(report.final_snapshot().online, 8);
}

#[test]
fn runs_are_deterministic_and_phase_order_is_declaration_order() {
    let scenario = Scenario::builder(21)
        .join_wave(2, 4)
        .replicate(IndexId::PRIMARY, 3)
        .snapshot("replicated")
        .start_construction(IndexId::PRIMARY)
        .run_until(10)
        .snapshot("constructed")
        .query_load(IndexId::PRIMARY, 12)
        .drain()
        .build();

    let run = |seed| {
        let mut overlay = runtime(24, seed);
        pgrid_scenario::run(&mut overlay, &scenario)
    };
    let a = run(21);
    let b = run(21);
    assert_eq!(a, b, "same seed, same report");

    // Snapshots appear in declaration order with the boundary minutes the
    // phases established.
    assert_eq!(a.snapshots.len(), 3);
    assert_eq!(a.snapshots[0].label, "replicated");
    assert_eq!(a.snapshots[0].at_min, 3);
    assert_eq!(a.snapshots[1].label, "constructed");
    assert_eq!(a.snapshots[1].at_min, 10);
    assert_eq!(a.snapshots[2].label, "final");
    assert!(a.snapshots[2].at_min >= 12);

    // Construction happened between the two snapshots.
    let before = a.snapshots[0].index(IndexId::PRIMARY).unwrap();
    let after = a.snapshots[1].index(IndexId::PRIMARY).unwrap();
    assert!(after.mean_path_length > before.mean_path_length);
    // Queries were issued and (mostly) answered.
    let fin = a.snapshots[2].index(IndexId::PRIMARY).unwrap();
    assert!(fin.queries_issued > 0);
    assert!(fin.query_success_rate() > 0.5);

    let c = run(22);
    assert_ne!(
        a.final_snapshot(),
        c.final_snapshot(),
        "different seeds must diverge"
    );
}

#[test]
fn hooks_observe_every_phase_in_order() {
    struct Recorder(Vec<usize>);
    impl<O: Overlay + ?Sized> ScenarioHooks<O> for Recorder {
        type Error = std::convert::Infallible;
        fn after_phase(
            &mut self,
            _: &mut O,
            phase_index: usize,
            _: &Phase,
        ) -> Result<(), Self::Error> {
            self.0.push(phase_index);
            Ok(())
        }
    }
    let scenario = Scenario::builder(1)
        .join_wave(1, 3)
        .run_until(2)
        .drain()
        .build();
    let mut overlay = runtime(8, 1);
    let mut recorder = Recorder(Vec::new());
    pgrid_scenario::run_with_hooks(&mut overlay, &scenario, &mut recorder).unwrap();
    assert_eq!(recorder.0, vec![0, 1, 2]);
}
