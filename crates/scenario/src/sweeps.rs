//! The Figure-6 simulation sweeps, driven through the scenario executor.
//!
//! Aggregation (repetition seeds, means, deviations) stays in
//! [`pgrid_sim::runner`]; this module substitutes the scenario-driven
//! constructor for the direct one, so every sweep cell is one
//! [`Scenario::construction`] run over a [`SimOverlay`].

use crate::exec;
use crate::scenario::Scenario;
use crate::sim::SimOverlay;
use pgrid_sim::config::{ConstructionStrategy, SimConfig};
use pgrid_sim::construction::ConstructedOverlay;
use pgrid_sim::runner::{self, ConstructionResult};

/// One construction run through the scenario executor (the scenario-driven
/// equivalent of [`pgrid_sim::construction::construct`], bit-identical to
/// it for every configuration).
pub fn construct_scenario(config: &SimConfig) -> ConstructedOverlay {
    let mut overlay = SimOverlay::new(config);
    let scenario = Scenario::construction(config.max_rounds);
    let _ = exec::run(&mut overlay, &scenario);
    overlay.into_overlay()
}

/// Scenario-driven [`pgrid_sim::runner::run_repeated`].
pub fn run_repeated(config: &SimConfig, repetitions: usize) -> ConstructionResult {
    runner::run_repeated_with(config, repetitions, &construct_scenario)
}

/// Scenario-driven [`pgrid_sim::runner::population_sweep`].
pub fn population_sweep(
    populations: &[usize],
    n_min: usize,
    repetitions: usize,
    strategy: ConstructionStrategy,
    seed: u64,
) -> Vec<ConstructionResult> {
    runner::population_sweep_with(
        populations,
        n_min,
        repetitions,
        strategy,
        seed,
        &construct_scenario,
    )
}

/// Scenario-driven [`pgrid_sim::runner::replication_sweep`].
pub fn replication_sweep(
    n_peers: usize,
    n_mins: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<ConstructionResult> {
    runner::replication_sweep_with(n_peers, n_mins, repetitions, seed, &construct_scenario)
}

/// Scenario-driven [`pgrid_sim::runner::sample_size_sweep`].
pub fn sample_size_sweep(
    n_peers: usize,
    n_min: usize,
    delta_multipliers: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<ConstructionResult> {
    runner::sample_size_sweep_with(
        n_peers,
        n_min,
        delta_multipliers,
        repetitions,
        seed,
        &construct_scenario,
    )
}

/// Scenario-driven [`pgrid_sim::runner::theory_vs_heuristics`].
pub fn theory_vs_heuristics(
    n_peers: usize,
    n_mins: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<(ConstructionResult, ConstructionResult)> {
    runner::theory_vs_heuristics_with(n_peers, n_mins, repetitions, seed, &construct_scenario)
}
