//! [`Overlay`] for the whole-system simulator.
//!
//! The simulator is round-based: [`SimOverlay`] maps virtual time onto
//! rounds (one construction round per minute of virtual time) so the same
//! scenario programs drive it.  Queries are evaluated synchronously over
//! the current network state (the simulator has no wire), and churn is
//! modelled on the initiating side: an offline peer stops initiating
//! interactions and re-engages when it returns.  Only the primary index is
//! hosted — multi-index scenarios run on the message-level engines.

use crate::overlay::{IndexSnapshot, Millis, Overlay, OverlaySnapshot, MINUTE_MS};
use pgrid_core::balance::compare_to_reference;
use pgrid_core::index::IndexId;
use pgrid_core::key::Key;
use pgrid_core::reference::ReferencePartitioning;
use pgrid_core::routing::PeerId;
use pgrid_core::search::{lookup, range_query, LookupStatus};
use pgrid_sim::config::SimConfig;
use pgrid_sim::construction::{ConstructedOverlay, SimNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The simulator wrapped as a scenario-drivable overlay.
pub struct SimOverlay {
    network: SimNetwork,
    now: Millis,
    constructing: bool,
    /// Scheduled liveness flips: `(at, seq, peer, online)`, applied in
    /// `(at, seq)` order so identical timestamps resolve deterministically
    /// by insertion order.
    liveness: BinaryHeap<Reverse<(Millis, u64, usize, bool)>>,
    liveness_seq: u64,
    rng: StdRng,
    queries_issued: usize,
    queries_succeeded: usize,
    ranges_issued: usize,
    ranges_complete: usize,
}

impl SimOverlay {
    /// Wraps a fresh [`SimNetwork`] built from `config`.
    pub fn new(config: &SimConfig) -> SimOverlay {
        SimOverlay {
            network: SimNetwork::new(config),
            now: 0,
            constructing: false,
            liveness: BinaryHeap::new(),
            liveness_seq: 0,
            rng: StdRng::seed_from_u64(config.seed ^ 0x51A7),
            queries_issued: 0,
            queries_succeeded: 0,
            ranges_issued: 0,
            ranges_complete: 0,
        }
    }

    /// Read access to the wrapped network.
    pub fn network(&self) -> &SimNetwork {
        &self.network
    }

    /// Finishes the run, yielding the constructed overlay.
    pub fn into_overlay(self) -> ConstructedOverlay {
        self.network.into_overlay()
    }

    fn apply_due_liveness(&mut self) {
        while let Some(&Reverse((at, _, peer, online))) = self.liveness.peek() {
            if at > self.now {
                break;
            }
            self.liveness.pop();
            self.network.set_online(peer, online);
        }
    }
}

impl Overlay for SimOverlay {
    fn n_peers(&self) -> usize {
        self.network.config().n_peers
    }

    fn now(&self) -> Millis {
        self.now
    }

    fn advance_to(&mut self, until: Millis) {
        // One construction round per crossed minute boundary; liveness
        // flips apply as their timestamps are reached.
        while self.now < until {
            let next_minute = (self.now / MINUTE_MS + 1) * MINUTE_MS;
            let next = next_minute.min(until);
            self.now = next;
            self.apply_due_liveness();
            if self.now == next_minute && self.constructing {
                self.network.run_round();
            }
        }
    }

    fn join(&mut self, peer: usize, _fanout: usize) {
        // The simulator's population is wired up front; joining (re-)enables
        // the peer.
        self.network.set_online(peer, true);
    }

    fn join_with_neighbours(&mut self, peer: usize, _neighbours: Vec<PeerId>) {
        self.network.set_online(peer, true);
    }

    fn schedule_leave(&mut self, peer: usize, at: Millis, downtime: Millis) {
        self.liveness_seq += 1;
        self.liveness
            .push(Reverse((at, self.liveness_seq, peer, false)));
        self.liveness_seq += 1;
        self.liveness
            .push(Reverse((at + downtime, self.liveness_seq, peer, true)));
    }

    fn begin_replication(&mut self, index: IndexId) {
        assert!(
            index.is_primary(),
            "the simulator hosts only the primary index"
        );
        self.network.replicate();
    }

    fn begin_construction(&mut self, index: IndexId) {
        assert!(
            index.is_primary(),
            "the simulator hosts only the primary index"
        );
        self.constructing = true;
        self.network.activate_all();
    }

    fn quiescent(&self) -> bool {
        self.network.quiescent()
    }

    fn has_index(&self, index: IndexId) -> bool {
        index.is_primary()
    }

    fn insert(&mut self, index: IndexId, peer: usize, keys: Vec<Key>) {
        assert!(
            index.is_primary(),
            "the simulator hosts only the primary index"
        );
        self.network.insert_entries(peer, keys);
    }

    fn issue_query(&mut self, index: IndexId, key: Key) {
        assert!(
            index.is_primary(),
            "the simulator hosts only the primary index"
        );
        let online: Vec<usize> = self
            .network
            .peers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.online)
            .map(|(i, _)| i)
            .collect();
        if online.is_empty() {
            return;
        }
        let origin = PeerId(online[self.rng.gen_range(0..online.len())] as u64);
        let result = lookup(&self.network, origin, key, &mut self.rng);
        self.queries_issued += 1;
        if matches!(result.status, LookupStatus::Found { .. }) && !result.entries.is_empty() {
            self.queries_succeeded += 1;
        }
    }

    fn issue_range_query(&mut self, index: IndexId, lo: Key, hi: Key) {
        assert!(
            index.is_primary(),
            "the simulator hosts only the primary index"
        );
        let online: Vec<usize> = self
            .network
            .peers
            .iter()
            .enumerate()
            .filter(|(_, p)| p.online)
            .map(|(i, _)| i)
            .collect();
        if online.is_empty() {
            return;
        }
        let origin = PeerId(online[self.rng.gen_range(0..online.len())] as u64);
        self.ranges_issued += 1;
        if lo > hi {
            self.ranges_complete += 1;
            return;
        }
        let result = range_query(&self.network, origin, lo, hi, &mut self.rng);
        if result.complete {
            self.ranges_complete += 1;
        }
    }

    fn query_keys(&self, index: IndexId) -> Vec<Key> {
        assert!(
            index.is_primary(),
            "the simulator hosts only the primary index"
        );
        self.network
            .original_entries
            .iter()
            .map(|e| e.key)
            .collect()
    }

    fn query_timeout_ms(&self) -> Millis {
        // Queries resolve synchronously; draining is a no-op.
        0
    }

    fn snapshot(&self, label: &str) -> OverlaySnapshot {
        let paths: Vec<_> = self.network.peers.iter().map(|p| p.path).collect();
        let keys: Vec<Key> = self
            .network
            .original_entries
            .iter()
            .map(|e| e.key)
            .collect();
        let reference =
            ReferencePartitioning::compute(&keys, self.n_peers(), self.network.params());
        let balance = compare_to_reference(&reference, &paths);
        let mean_path_length =
            paths.iter().map(|p| p.len() as f64).sum::<f64>() / paths.len().max(1) as f64;
        let replication = pgrid_core::trie::peer_count_trie(paths.iter());
        let mean_replication = if replication.is_empty() {
            0.0
        } else {
            replication.iter().map(|(_, &n)| n as f64).sum::<f64>() / replication.len() as f64
        };
        OverlaySnapshot {
            label: label.to_string(),
            at_min: self.now / MINUTE_MS,
            online: self.network.peers.iter().filter(|p| p.online).count(),
            indexes: vec![IndexSnapshot {
                index: IndexId::PRIMARY,
                mean_path_length,
                balance_deviation: balance.deviation,
                mean_replication,
                queries_issued: self.queries_issued,
                queries_succeeded: self.queries_succeeded,
                ranges_issued: self.ranges_issued,
                ranges_complete: self.ranges_complete,
                latency_p50_ms: None,
                latency_p99_ms: None,
                latency_p999_ms: None,
            }],
        }
    }
}
